//! Offline stand-in for `serde_json`: renders [`serde::Value`] trees to JSON
//! text and parses JSON text back, bridging to the workspace's `Serialize` /
//! `Deserialize` traits via [`to_string`] and [`from_str`].

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_str(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value_str(text: &str) -> Result<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let text = v.to_string();
                out.push_str(&text);
                // Keep floats distinguishable from integers in the output.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, keyword: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    let is_float = text.contains(['.', 'e', 'E']);
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"he said \"hi\"\n").unwrap(),
            "\"he said \\\"hi\\\"\\n\""
        );
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&text).unwrap(), v);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.25").unwrap(), Some(2.25));

        let pairs = vec![(1u32, 2.5f64), (3, 4.5)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(u32, f64)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn floats_keep_precision() {
        for &x in &[0.1, 1e-300, 123_456_789.123_456_79, -2.5e17, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn big_u64_survives() {
        let x = u64::MAX;
        let text = to_string(&x).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), x);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u32>("[1] junk").is_err());
        assert!(from_str::<u32>("\"text\"").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
    }
}

//! Offline stand-in for the `criterion` benchmark harness. Implements the
//! API surface the workspace benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` — measuring wall-clock
//! time with `std::time::Instant` and printing a one-line summary per bench.
//!
//! Statistics are deliberately simple (median over samples); the value of the
//! harness here is comparability between runs on one machine, not
//! publication-grade confidence intervals.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
    }
}

/// A named benchmark group with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (criterion accepts strings or ids).
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: aim for ~2 ms per sample so fast routines get stable
        // numbers without making slow routines crawl.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let samples = self.samples.capacity();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}

//! Causal request tracing: W3C trace context, spans, and the sampled
//! span store.
//!
//! A **trace** is the causal story of one request: a tree of [`Span`]s
//! sharing one [`TraceId`], each span naming a stage (`gateway.parse`,
//! `queue.wait`, `solve`, `store.persist`, …) with a monotonic start and
//! duration and typed [`AttrValue`] attributes. Trace identity crosses the
//! process boundary as a W3C `traceparent` header ([`TraceContext`]), so a
//! caller can hand the stack its own trace id and correlate the span tree
//! with its upstream telemetry — or receive the id the gateway minted.
//!
//! The layer is built to cost nothing when it is off and almost nothing
//! when a trace is not kept:
//!
//! * Spans accumulate in a per-trace buffer ([`ActiveTrace`], a cheap
//!   `Arc`); nothing touches shared state until the trace **completes**
//!   (last handle dropped — which may be on the store writer thread, after
//!   the persist span retires).
//! * At completion the [`Tracer`] decides once: keep the whole trace if it
//!   was **head-sampled** (caller's `traceparent` sampled flag, or every
//!   Nth locally-started trace) or qualifies for **tail sampling** (root
//!   duration over the slow threshold, or any span errored — so slow and
//!   failing requests are *always* kept). Kept traces go to the
//!   [`SpanStore`]; dropped ones only bump a counter.
//! * The [`SpanStore`] is a bounded ring: admission claims a slot with one
//!   atomic `fetch_add` (no admission lock, writers never contend with each
//!   other except on slot reuse) and each slot swap is a short per-slot
//!   mutex hold, so scrapes (`GET /v1/debug/traces`) never block recording
//!   for more than one slot copy.
//!
//! Sampling accounting rides the shared [`Registry`]:
//! `crowdtune_spans_started_total`, `crowdtune_spans_sampled_total`,
//! `crowdtune_spans_dropped_total`.

use crate::metric::Counter;
use crate::registry::Registry;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier (W3C `trace-id`); never all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

/// A 64-bit span identifier (W3C `parent-id`); never all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Renders the id as 32 lowercase hex characters (the wire form).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses 32 lowercase hex characters; rejects the all-zero id.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !is_lower_hex(s) {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        if v == 0 {
            return None;
        }
        Some(TraceId(v))
    }
}

impl SpanId {
    /// Renders the id as 16 lowercase hex characters (the wire form).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses 16 lowercase hex characters; rejects the all-zero id.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !is_lower_hex(s) {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        if v == 0 {
            return None;
        }
        Some(SpanId(v))
    }
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Process-wide random seed for id generation. `RandomState` is seeded from
/// the OS per process, which is the only entropy source std exposes; ids
/// must be unpredictable enough to avoid cross-process collisions, not
/// cryptographically strong.
fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        use std::hash::{BuildHasher, Hasher};
        let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
        hasher.write_u64(0x005ca1ab_1ec0ffee);
        hasher.finish() | 1
    })
}

/// SplitMix64 finalizer: a well-mixed 64-bit value per counter step.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn next_id_word() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let step = COUNTER.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
    mix(process_seed().wrapping_add(step))
}

/// Mints a fresh non-zero trace id.
pub fn random_trace_id() -> TraceId {
    loop {
        let v = ((next_id_word() as u128) << 64) | next_id_word() as u128;
        if v != 0 {
            return TraceId(v);
        }
    }
}

/// Mints a fresh non-zero span id.
pub fn random_span_id() -> SpanId {
    loop {
        let v = next_id_word();
        if v != 0 {
            return SpanId(v);
        }
    }
}

// ---------------------------------------------------------------------------
// W3C trace context (`traceparent`)
// ---------------------------------------------------------------------------

/// Propagated trace identity: the payload of a W3C `traceparent` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span joins.
    pub trace_id: TraceId,
    /// The caller's span id — the parent of the next span created here.
    pub parent: SpanId,
    /// The caller's sampled flag (`01` bit). An incoming sampled context is
    /// honored as a head-sampling decision: the trace is always kept.
    pub sampled: bool,
}

impl TraceContext {
    /// Parses a W3C `traceparent` header value
    /// (`{version}-{trace-id}-{parent-id}-{flags}`).
    ///
    /// Never panics. Returns `None` for anything malformed: wrong field
    /// count or width, uppercase or non-hex digits, all-zero ids, or the
    /// forbidden version `ff`. Per the spec, versions other than `00` are
    /// accepted as long as the first four fields parse (later fields are
    /// ignored), except that a version-`00` header must have exactly four.
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
            return None;
        }
        let trace_id = TraceId::from_hex(parts.next()?)?;
        let parent = SpanId::from_hex(parts.next()?)?;
        let flags = parts.next()?;
        if flags.len() != 2 || !is_lower_hex(flags) {
            return None;
        }
        if version == "00" && parts.next().is_some() {
            return None;
        }
        let flags = u8::from_str_radix(flags, 16).ok()?;
        Some(TraceContext {
            trace_id,
            parent,
            sampled: flags & 0x01 != 0,
        })
    }

    /// Renders the context as a version-`00` `traceparent` header value.
    pub fn render_traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id.0,
            self.parent.0,
            u8::from(self.sampled)
        )
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Terminal status of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// The stage completed normally.
    Ok,
    /// The stage failed (error response, panic, denied decision).
    Error,
}

impl SpanStatus {
    /// `"ok"` or `"error"` — the wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
        }
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An unsigned integer attribute (counts, ids, nanoseconds).
    U64(u64),
    /// A float attribute (ratios, objectives).
    F64(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl AttrValue {
    /// Renders the value as plain text (the debug-endpoint wire form).
    pub fn render(&self) -> String {
        match self {
            AttrValue::Str(s) => s.clone(),
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Bool(v) => v.to_string(),
        }
    }
}

/// One completed stage of a trace: a name, a parent link, a monotonic
/// start/duration (nanoseconds from the owning [`Tracer`]'s epoch), a
/// status, and typed attributes.
///
/// Spans are recorded **retroactively**: the emitting layer takes its
/// ordinary clock stamps and materializes the span only when the stage is
/// over, so instrumented code pays clock reads it was already paying, not
/// span bookkeeping.
#[derive(Debug, Clone)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Parent span id; `None` only for the root.
    pub parent: Option<SpanId>,
    /// Stage name (see the span taxonomy in the crate docs/README).
    pub name: &'static str,
    /// Start, in nanoseconds from the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Terminal status.
    pub status: SpanStatus,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Why a completed trace was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// Head-sampled: the caller's sampled flag, or the every-Nth local
    /// sampling decision made at trace start.
    Head,
    /// Tail-sampled because the root duration exceeded the slow threshold.
    TailSlow,
    /// Tail-sampled because some span (or the whole trace) errored.
    TailError,
}

impl SampleReason {
    /// `"head"`, `"tail_slow"` or `"tail_error"` — the wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleReason::Head => "head",
            SampleReason::TailSlow => "tail_slow",
            SampleReason::TailError => "tail_error",
        }
    }
}

/// A kept trace: the summary row of `GET /v1/debug/traces` plus the full
/// span tree served at `GET /v1/debug/traces/{trace_id}`.
#[derive(Debug)]
pub struct StoredTrace {
    /// The trace id (the caller's, if one was propagated in).
    pub trace_id: TraceId,
    /// Root span name (e.g. `http.request`, `job`).
    pub name: &'static str,
    /// Submitting tenant (empty when unknown).
    pub tenant: String,
    /// Market name (empty when unknown).
    pub market: String,
    /// Paper scenario (`"EA"`/`"RA"`/`"HA"`, empty when unknown).
    pub scenario: &'static str,
    /// Root status: `"ok"` or `"error"`.
    pub status: SpanStatus,
    /// Root start (ns from the tracer epoch).
    pub start_ns: u64,
    /// Root duration (ns).
    pub duration_ns: u64,
    /// Why the trace was kept.
    pub reason: SampleReason,
    /// Every span of the trace, root first, then recording order.
    pub spans: Vec<Span>,
}

// ---------------------------------------------------------------------------
// Span store: lock-free-admission bounded ring of kept traces
// ---------------------------------------------------------------------------

/// A bounded ring of the most recently kept traces.
///
/// Admission claims a slot with a single atomic `fetch_add`; the only lock
/// is per-slot, held for one `Arc` swap (record) or one `Arc` clone
/// (scrape), so concurrent recorders don't serialize and a scrape can never
/// observe a torn trace — slots hold whole `Arc<StoredTrace>`s.
#[derive(Debug)]
pub struct SpanStore {
    slots: Vec<Mutex<Option<Arc<StoredTrace>>>>,
    head: AtomicUsize,
}

impl SpanStore {
    /// A store keeping the `capacity` most recent traces (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SpanStore {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// How many traces the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records a kept trace, evicting the oldest once full.
    pub fn record(&self, trace: Arc<StoredTrace>) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock().expect("span store slot poisoned") = Some(trace);
    }

    /// Looks a trace up by id (newest wins if an id repeats).
    pub fn get(&self, trace_id: TraceId) -> Option<Arc<StoredTrace>> {
        let mut found: Option<(u64, Arc<StoredTrace>)> = None;
        for slot in &self.slots {
            let held = slot.lock().expect("span store slot poisoned").clone();
            if let Some(trace) = held {
                if trace.trace_id == trace_id {
                    let newer = found
                        .as_ref()
                        .is_none_or(|(start, _)| trace.start_ns >= *start);
                    if newer {
                        found = Some((trace.start_ns, trace));
                    }
                }
            }
        }
        found.map(|(_, trace)| trace)
    }

    /// All held traces, newest (largest root start) first.
    pub fn snapshot(&self) -> Vec<Arc<StoredTrace>> {
        let mut traces: Vec<Arc<StoredTrace>> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("span store slot poisoned").clone())
            .collect();
        traces.sort_by_key(|t| std::cmp::Reverse(t.start_ns));
        traces
    }
}

// ---------------------------------------------------------------------------
// Tracer: clock, sampling policy, counters
// ---------------------------------------------------------------------------

/// Sampling and capacity policy for a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Keep every Nth locally-started trace regardless of outcome
    /// (0 disables local head sampling; an incoming sampled `traceparent`
    /// is always honored).
    pub head_sample_every: u64,
    /// Always keep traces whose root duration is at least this (tail
    /// sampling for slow requests).
    pub slow_threshold_ns: u64,
    /// Ring capacity of the backing [`SpanStore`].
    pub capacity: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            head_sample_every: 64,
            slow_threshold_ns: 25_000_000, // 25ms: ~10x a cold solve
            capacity: 256,
        }
    }
}

/// The per-process tracing engine: one monotonic epoch, the sampling
/// policy, the [`SpanStore`], and the span accounting counters.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    epoch_unix_ns: u64,
    config: TracerConfig,
    store: SpanStore,
    head_counter: AtomicU64,
    started: Counter,
    sampled: Counter,
    dropped: Counter,
}

impl Tracer {
    /// Creates a tracer and registers its counters
    /// (`crowdtune_spans_{started,sampled,dropped}_total`) in `registry`.
    pub fn new(registry: &Registry, config: TracerConfig) -> Arc<Tracer> {
        let started = registry.counter(
            "crowdtune_spans_started_total",
            "Spans recorded into active trace buffers.",
            &[],
        );
        let sampled = registry.counter(
            "crowdtune_spans_sampled_total",
            "Spans of traces kept by head or tail sampling.",
            &[],
        );
        let dropped = registry.counter(
            "crowdtune_spans_dropped_total",
            "Spans of completed traces discarded by sampling.",
            &[],
        );
        Arc::new(Tracer {
            epoch: Instant::now(),
            epoch_unix_ns: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            config,
            store: SpanStore::new(config.capacity),
            head_counter: AtomicU64::new(0),
            started,
            sampled,
            dropped,
        })
    }

    /// Nanoseconds since the tracer epoch (the span clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Unix time (ns) of the tracer epoch: anchors span stamps to wall
    /// clock for display.
    pub fn epoch_unix_ns(&self) -> u64 {
        self.epoch_unix_ns
    }

    /// The sampling policy in force.
    pub fn config(&self) -> TracerConfig {
        self.config
    }

    /// The ring of kept traces.
    pub fn store(&self) -> &SpanStore {
        &self.store
    }

    /// Starts a trace. With an incoming context the caller's trace id and
    /// parent are adopted (and its sampled flag forces head sampling);
    /// otherwise fresh ids are minted and the every-Nth local head-sampling
    /// decision is taken here, once, for the whole trace.
    pub fn start_trace(
        self: &Arc<Self>,
        name: &'static str,
        context: Option<TraceContext>,
    ) -> ActiveTrace {
        let start_ns = self.now_ns();
        let (trace_id, parent, head_sampled) = match context {
            Some(ctx) => (ctx.trace_id, Some(ctx.parent), ctx.sampled),
            None => {
                let every = self.config.head_sample_every;
                let sampled = every != 0
                    && self
                        .head_counter
                        .fetch_add(1, Ordering::Relaxed)
                        .is_multiple_of(every);
                (random_trace_id(), None, sampled)
            }
        };
        self.started.inc();
        ActiveTrace {
            inner: Arc::new(TraceShared {
                tracer: self.clone(),
                trace_id,
                root_span: random_span_id(),
                root_parent: parent,
                name,
                start_ns,
                head_sampled,
                error: AtomicBool::new(false),
                state: Mutex::new(TraceState {
                    spans: Vec::new(),
                    tenant: String::new(),
                    market: String::new(),
                    scenario: "",
                    root_end_ns: 0,
                    root_attrs: Vec::new(),
                }),
            }),
        }
    }
}

struct TraceState {
    spans: Vec<Span>,
    tenant: String,
    market: String,
    scenario: &'static str,
    /// Explicit root end stamp; 0 means "not finished explicitly" and the
    /// completion time (last handle drop) is used instead.
    root_end_ns: u64,
    root_attrs: Vec<(&'static str, AttrValue)>,
}

struct TraceShared {
    tracer: Arc<Tracer>,
    trace_id: TraceId,
    root_span: SpanId,
    root_parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    head_sampled: bool,
    error: AtomicBool,
    state: Mutex<TraceState>,
}

/// A live trace being accumulated: a cheaply clonable handle shared by
/// every layer that emits spans for the request. The keep/drop sampling
/// decision and the [`SpanStore`] hand-off happen when the **last** handle
/// drops — which is what lets an async stage (the store writer retiring the
/// persist record) extend the trace past the HTTP response.
#[derive(Clone)]
pub struct ActiveTrace {
    inner: Arc<TraceShared>,
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("trace_id", &self.inner.trace_id)
            .field("root_span", &self.inner.root_span)
            .field("head_sampled", &self.inner.head_sampled)
            .finish()
    }
}

impl ActiveTrace {
    /// The trace id every span joins.
    pub fn trace_id(&self) -> TraceId {
        self.inner.trace_id
    }

    /// The root span's id — the default parent for top-level stage spans.
    pub fn root_span_id(&self) -> SpanId {
        self.inner.root_span
    }

    /// Whether the trace was head-sampled at start (callers may use this to
    /// skip expensive attribute rendering; tail sampling can still keep the
    /// trace).
    pub fn head_sampled(&self) -> bool {
        self.inner.head_sampled
    }

    /// The context to propagate downstream (e.g. echo as a response
    /// `traceparent`): this trace, parented at `parent`.
    pub fn context(&self, parent: SpanId) -> TraceContext {
        TraceContext {
            trace_id: self.inner.trace_id,
            parent,
            sampled: self.inner.head_sampled,
        }
    }

    /// The tracer clock (ns since epoch), for stamping span boundaries.
    pub fn now_ns(&self) -> u64 {
        self.inner.tracer.now_ns()
    }

    /// Marks the whole trace errored: it will be tail-sampled regardless of
    /// duration.
    pub fn mark_error(&self) {
        self.inner.error.store(true, Ordering::Relaxed);
    }

    /// Sets the summary labels shown in the trace list.
    pub fn annotate(&self, tenant: &str, market: &str, scenario: &'static str) {
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        if !tenant.is_empty() {
            state.tenant.clear();
            state.tenant.push_str(tenant);
        }
        if !market.is_empty() {
            state.market.clear();
            state.market.push_str(market);
        }
        if !scenario.is_empty() {
            state.scenario = scenario;
        }
    }

    /// Records a completed `Ok` span with no attributes. Returns its id so
    /// later spans can parent under it.
    pub fn span(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        self.span_with(name, parent, start_ns, end_ns, SpanStatus::Ok, Vec::new())
    }

    /// Records a completed span with an explicit status and attributes.
    /// `parent` defaults to the root span when `None`.
    pub fn span_with(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        status: SpanStatus,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let span_id = random_span_id();
        if status == SpanStatus::Error {
            self.inner.error.store(true, Ordering::Relaxed);
        }
        self.inner.tracer.started.inc();
        let span = Span {
            trace_id: self.inner.trace_id,
            span_id,
            parent: Some(parent.unwrap_or(self.inner.root_span)),
            name,
            start_ns,
            duration_ns: end_ns.saturating_sub(start_ns),
            status,
            attrs,
        };
        self.inner
            .state
            .lock()
            .expect("trace state poisoned")
            .spans
            .push(span);
        span_id
    }

    /// Stamps the root span's end and attributes explicitly (otherwise the
    /// root runs until the last handle drops, which includes async persist).
    pub fn finish_root(&self, end_ns: u64, attrs: Vec<(&'static str, AttrValue)>) {
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        state.root_end_ns = end_ns;
        state.root_attrs = attrs;
    }
}

impl Drop for TraceShared {
    fn drop(&mut self) {
        let state = self.state.get_mut().expect("trace state poisoned");
        let spans = std::mem::take(&mut state.spans);
        let errored = *self.error.get_mut();
        let tracer = &self.tracer;
        let end_ns = if state.root_end_ns != 0 {
            state.root_end_ns
        } else {
            tracer.now_ns()
        };
        let duration_ns = end_ns.saturating_sub(self.start_ns);
        let reason = if errored {
            Some(SampleReason::TailError)
        } else if self.head_sampled {
            Some(SampleReason::Head)
        } else if duration_ns >= tracer.config.slow_threshold_ns {
            Some(SampleReason::TailSlow)
        } else {
            None
        };
        let span_count = spans.len() as u64 + 1; // + root
        let Some(reason) = reason else {
            tracer.dropped.add(span_count);
            return;
        };
        tracer.sampled.add(span_count);
        let status = if errored {
            SpanStatus::Error
        } else {
            SpanStatus::Ok
        };
        let root = Span {
            trace_id: self.trace_id,
            span_id: self.root_span,
            parent: self.root_parent,
            name: self.name,
            start_ns: self.start_ns,
            duration_ns,
            status,
            attrs: std::mem::take(&mut state.root_attrs),
        };
        let mut all = Vec::with_capacity(spans.len() + 1);
        all.push(root);
        all.extend(spans);
        tracer.store.record(Arc::new(StoredTrace {
            trace_id: self.trace_id,
            name: self.name,
            tenant: std::mem::take(&mut state.tenant),
            market: std::mem::take(&mut state.market),
            scenario: state.scenario,
            status,
            start_ns: self.start_ns,
            duration_ns,
            reason,
            spans: all,
        }));
    }
}

// ---------------------------------------------------------------------------
// Thread-local current span (log correlation)
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_SPAN: Cell<Option<(TraceId, SpanId)>> = const { Cell::new(None) };
}

/// The trace/span active on this thread, if any — what `obs::log` stamps
/// onto records.
pub fn current_span() -> Option<(TraceId, SpanId)> {
    CURRENT_SPAN.with(Cell::get)
}

/// Marks `trace`/`span` current on this thread until the guard drops
/// (restoring whatever was current before — guards nest).
pub fn enter_span(trace: TraceId, span: SpanId) -> SpanGuard {
    let prev = CURRENT_SPAN.with(|cell| cell.replace(Some((trace, span))));
    SpanGuard { prev }
}

/// Restores the previously-current span on drop; see [`enter_span`].
#[derive(Debug)]
pub struct SpanGuard {
    prev: Option<(TraceId, SpanId)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|cell| cell.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tracer(config: TracerConfig) -> Arc<Tracer> {
        Tracer::new(&Registry::new(), config)
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: TraceId(0x0102030405060708090a0b0c0d0e0f10),
            parent: SpanId(0x1122334455667788),
            sampled: true,
        };
        let rendered = ctx.render_traceparent();
        assert_eq!(
            rendered,
            "00-0102030405060708090a0b0c0d0e0f10-1122334455667788-01"
        );
        assert_eq!(TraceContext::parse_traceparent(&rendered), Some(ctx));
    }

    #[test]
    fn traceparent_rejects_malformed() {
        for bad in [
            "",
            "00",
            "00-",
            "00-00000000000000000000000000000000-1122334455667788-01", // zero trace id
            "00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01", // zero span id
            "00-0102030405060708090A0B0C0D0E0F10-1122334455667788-01", // uppercase
            "ff-0102030405060708090a0b0c0d0e0f10-1122334455667788-01", // forbidden version
            "00-0102030405060708090a0b0c0d0e0f10-1122334455667788-01-extra", // v00 extras
            "00-0102030405060708090a0b0c0d0e0f1-1122334455667788-01",  // short trace id
            "0-0102030405060708090a0b0c0d0e0f10-1122334455667788-01",  // short version
            "00-0102030405060708090a0b0c0d0e0f10-1122334455667788-1",  // short flags
            "zz-0102030405060708090a0b0c0d0e0f10-1122334455667788-01",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
        // Future versions may carry extra fields.
        assert!(TraceContext::parse_traceparent(
            "01-0102030405060708090a0b0c0d0e0f10-1122334455667788-01-future"
        )
        .is_some());
    }

    #[test]
    fn incoming_sampled_context_is_kept_with_callers_ids() {
        let tracer = test_tracer(TracerConfig {
            head_sample_every: 0,
            ..TracerConfig::default()
        });
        let ctx = TraceContext::parse_traceparent(
            "00-000000000000000000000000000000aa-00000000000000bb-01",
        )
        .unwrap();
        let trace = tracer.start_trace("http.request", Some(ctx));
        let t0 = trace.now_ns();
        trace.span("gateway.parse", None, t0, t0 + 10);
        drop(trace);
        let stored = tracer.store().get(TraceId(0xaa)).expect("kept");
        assert_eq!(stored.reason, SampleReason::Head);
        assert_eq!(stored.spans[0].parent, Some(SpanId(0xbb)));
        assert_eq!(stored.spans.len(), 2);
        assert_eq!(stored.spans[1].name, "gateway.parse");
        assert_eq!(stored.spans[1].parent, Some(stored.spans[0].span_id));
    }

    #[test]
    fn unsampled_fast_ok_trace_is_dropped_and_counted() {
        let registry = Registry::new();
        let tracer = Tracer::new(
            &registry,
            TracerConfig {
                head_sample_every: 0,
                slow_threshold_ns: u64::MAX,
                capacity: 8,
            },
        );
        let trace = tracer.start_trace("job", None);
        trace.span("solve", None, 0, 10);
        let id = trace.trace_id();
        drop(trace);
        assert!(tracer.store().get(id).is_none());
        assert!(registry
            .render_prometheus()
            .contains("crowdtune_spans_dropped_total 2"));
    }

    #[test]
    fn error_and_slow_traces_are_tail_sampled() {
        let tracer = test_tracer(TracerConfig {
            head_sample_every: 0,
            slow_threshold_ns: u64::MAX,
            capacity: 8,
        });
        let trace = tracer.start_trace("job", None);
        trace.span_with("solve", None, 0, 10, SpanStatus::Error, Vec::new());
        let id = trace.trace_id();
        drop(trace);
        let stored = tracer.store().get(id).expect("error trace kept");
        assert_eq!(stored.reason, SampleReason::TailError);
        assert_eq!(stored.status, SpanStatus::Error);

        let tracer = test_tracer(TracerConfig {
            head_sample_every: 0,
            slow_threshold_ns: 1, // everything is "slow"
            capacity: 8,
        });
        let trace = tracer.start_trace("job", None);
        let id = trace.trace_id();
        drop(trace);
        assert_eq!(
            tracer.store().get(id).expect("slow trace kept").reason,
            SampleReason::TailSlow
        );
    }

    #[test]
    fn every_nth_trace_is_head_sampled() {
        let tracer = test_tracer(TracerConfig {
            head_sample_every: 4,
            slow_threshold_ns: u64::MAX,
            capacity: 16,
        });
        let kept: usize = (0..16)
            .map(|_| {
                let trace = tracer.start_trace("job", None);
                let id = trace.trace_id();
                drop(trace);
                usize::from(tracer.store().get(id).is_some())
            })
            .sum();
        assert_eq!(kept, 4);
    }

    #[test]
    fn ring_evicts_oldest() {
        let tracer = test_tracer(TracerConfig {
            head_sample_every: 1, // keep everything
            slow_threshold_ns: u64::MAX,
            capacity: 4,
        });
        let ids: Vec<TraceId> = (0..6)
            .map(|_| {
                let trace = tracer.start_trace("job", None);
                let id = trace.trace_id();
                drop(trace);
                id
            })
            .collect();
        assert!(tracer.store().get(ids[0]).is_none());
        assert!(tracer.store().get(ids[1]).is_none());
        for id in &ids[2..] {
            assert!(tracer.store().get(*id).is_some());
        }
        assert_eq!(tracer.store().snapshot().len(), 4);
    }

    #[test]
    fn trace_flush_waits_for_the_last_handle() {
        let tracer = test_tracer(TracerConfig {
            head_sample_every: 1,
            slow_threshold_ns: u64::MAX,
            capacity: 4,
        });
        let trace = tracer.start_trace("job", None);
        let id = trace.trace_id();
        let held = trace.clone();
        drop(trace);
        assert!(
            tracer.store().get(id).is_none(),
            "must not flush while a handle (async persist) is live"
        );
        held.span("store.persist", None, 5, 9);
        drop(held);
        let stored = tracer.store().get(id).expect("flushed on last drop");
        assert_eq!(stored.spans.len(), 2);
    }

    #[test]
    fn current_span_guards_nest() {
        assert_eq!(current_span(), None);
        let outer = enter_span(TraceId(1), SpanId(2));
        assert_eq!(current_span(), Some((TraceId(1), SpanId(2))));
        {
            let _inner = enter_span(TraceId(3), SpanId(4));
            assert_eq!(current_span(), Some((TraceId(3), SpanId(4))));
        }
        assert_eq!(current_span(), Some((TraceId(1), SpanId(2))));
        drop(outer);
        assert_eq!(current_span(), None);
    }
}

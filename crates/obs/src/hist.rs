//! Lock-free fixed-bucket **log-linear histogram** (HdrHistogram-style
//! bucketing over the full `u64` range).
//!
//! ## Bucketing scheme
//!
//! With `b = `[`SUB_BUCKET_BITS`]` = 3`:
//!
//! * values `< 2^b` map one-to-one onto the first `2^b` buckets (**exact**);
//! * every octave `[2^m, 2^(m+1))` for `m in b..=63` is split into `2^b`
//!   equal-width sub-buckets.
//!
//! Total: `2^b · (64 - b + 1) = 496` buckets — one `AtomicU64` each, ~4 KB
//! per histogram, fixed at construction. [`Histogram::record`] is two relaxed
//! `fetch_add`s: no locks, no allocation, safe from any number of threads.
//!
//! ## Error bound
//!
//! A quantile estimate is the **upper bound** of the bucket holding the exact
//! (nearest-rank) quantile value `v`, so for every quantile `q`:
//!
//! ```text
//! v <= estimate(q) <= v + v/2^b      (exact when v < 2^b)
//! ```
//!
//! i.e. estimates never under-report and over-report by at most
//! `2^-b = 12.5%` relative error. Counts and sums are exact (no sampling,
//! no decay); concurrent recording drops nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each octave is split into `2^SUB_BUCKET_BITS`
/// equal-width buckets, bounding relative quantile error at
/// `2^-SUB_BUCKET_BITS` (12.5%).
pub const SUB_BUCKET_BITS: u32 = 3;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Number of buckets: the linear region plus one group of `2^b` sub-buckets
/// per octave `m in b..=63`.
pub const BUCKET_COUNT: usize = SUB_BUCKETS * (64 - SUB_BUCKET_BITS as usize + 1);

/// Bucket index for a value. Monotone in `value`; total over `u64`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let m = 63 - value.leading_zeros(); // highest set bit, >= SUB_BUCKET_BITS
        let octave = (m - SUB_BUCKET_BITS) as usize;
        let sub = ((value >> (m - SUB_BUCKET_BITS)) as usize) - SUB_BUCKETS;
        SUB_BUCKETS * (1 + octave) + sub
    }
}

/// Largest value mapping to bucket `index` (inclusive upper bound).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let octave = index / SUB_BUCKETS - 1;
        let m = SUB_BUCKET_BITS + octave as u32;
        let width = 1u64 << (m - SUB_BUCKET_BITS);
        let sub = (index % SUB_BUCKETS) as u64;
        (1u64 << m) + sub * width + (width - 1)
    }
}

struct Shared {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// A lock-free, mergeable histogram of `u64` samples. Cheap to clone: clones
/// share the same buckets, so a component can own a handle while the
/// registry renders the same data.
#[derive(Clone)]
pub struct Histogram {
    shared: Arc<Shared>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram with its own bucket storage.
    pub fn new() -> Self {
        Histogram {
            shared: Arc::new(Shared {
                counts: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample. Two relaxed atomic adds; never blocks, never
    /// drops.
    pub fn record(&self, value: u64) {
        self.shared.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.shared.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Adds every sample of `other` into `self` (bucket-wise). Merging is
    /// associative and commutative up to bucket resolution — bucket counts
    /// and sums add exactly.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.shared.counts.iter().zip(other.shared.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.shared
            .sum
            .fetch_add(other.shared.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. The total count is derived
    /// from the bucket loads of *this* snapshot (not a separate atomic), so
    /// `sum(buckets) == count` holds by construction — the property the
    /// Prometheus `le="+Inf"` bucket relies on.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .shared
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.shared.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s buckets, for quantile queries and
/// rendering.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total number of recorded samples (sum of bucket counts).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate: the upper bound of the bucket holding
    /// the sample of rank `ceil(q · count)`. See the module docs for the
    /// error bound (`exact <= estimate <= exact · 1.125`). Returns 0 on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKET_COUNT - 1)
    }

    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`
    /// pairs, in increasing value order — the shape Prometheus histogram
    /// exposition wants. The last cumulative count equals [`Self::count`].
    pub fn cumulative_nonzero(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 28);
        for v in 0..8u64 {
            let rank_q = (v as f64 + 1.0) / 8.0;
            assert_eq!(snap.quantile(rank_q), v);
        }
    }

    #[test]
    fn index_and_upper_are_consistent() {
        // Every probe value must land in a bucket whose range contains it.
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            let upper = bucket_upper(i);
            assert!(v <= upper, "value {v} above its bucket upper {upper}");
            if i > 0 {
                let prev_upper = bucket_upper(i - 1);
                assert!(prev_upper < v, "value {v} below bucket {i} lower bound");
            }
        }
        // Bucket upper bounds are strictly increasing.
        for i in 1..BUCKET_COUNT {
            assert!(bucket_upper(i) > bucket_upper(i - 1));
        }
        assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn quantile_error_bound_holds() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| i * i % 777_777).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            assert!(
                est <= exact + (exact >> SUB_BUCKET_BITS),
                "q={q}: estimate {est} above error bound for exact {exact}"
            );
        }
    }

    #[test]
    fn cumulative_ends_at_count() {
        let h = Histogram::new();
        for v in [0u64, 5, 9, 9, 1024, 1 << 33] {
            h.record(v);
        }
        let snap = h.snapshot();
        let cum = snap.cumulative_nonzero();
        assert_eq!(cum.last().unwrap().1, snap.count);
        // Cumulative counts are non-decreasing and uppers strictly increase.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let snap = merged.snapshot();
        assert_eq!(snap.count, 200);
        assert_eq!(snap.sum, a.snapshot().sum + b.snapshot().sum);
    }

    #[test]
    fn clones_share_storage() {
        let a = Histogram::new();
        let b = a.clone();
        b.record(42);
        assert_eq!(a.snapshot().count, 1);
    }
}

//! Scalar metric primitives: monotone [`Counter`] and signed [`Gauge`].
//!
//! Both are thin `Arc<Atomic*>` wrappers: cheap to clone, safe to share, and
//! usable as the *backing storage* of existing stats structs — a component
//! owns a handle, the registry renders the same cell, and a snapshot read is
//! one atomic load (so a counter can never be observed torn or decreasing).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone non-decreasing counter. The only mutators are [`Counter::inc`]
/// and [`Counter::add`]; there is deliberately no reset, so any single
/// counter read is monotone across scrapes.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (relaxed load).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths, resident
/// entries, 0/1 state flags).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value (relaxed load).
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_shares() {
        let c = Counter::new();
        let view = c.clone();
        c.inc();
        c.add(4);
        assert_eq!(view.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}

//! # crowdtune-obs
//!
//! Std-only telemetry primitives for the crowdtune stack: the pieces every
//! layer (queue, service, family store, durable store, HTTP gateway) uses to
//! expose *where time goes* without perturbing the paths being measured.
//!
//! * [`Histogram`] — lock-free fixed-bucket log-linear histogram over the
//!   full `u64` range: relaxed atomic adds on the record path, mergeable,
//!   quantile estimates with a documented ≤ 12.5% relative error bound
//!   (see [`hist`]).
//! * [`Counter`] / [`Gauge`] — `Arc`-shared atomic scalars, designed to
//!   *back* existing stats structs so a legacy snapshot and a Prometheus
//!   scrape read the same cells.
//! * [`Registry`] — named metric families rendered as Prometheus text
//!   exposition v0.0.4 or JSON, in registration order (which is the
//!   mechanism for cross-counter scrape invariants; see [`registry`]).
//! * [`JobTrace`] / [`SlowestRing`] — per-job stage timelines (admitted →
//!   queued → dequeued → solve → estimate → completed) and a bounded ring
//!   of the N slowest, powering `GET /v1/debug/slowest`.
//! * [`span`] — causal request tracing: W3C `traceparent` propagation
//!   ([`TraceContext`]), per-request span trees ([`ActiveTrace`]) with head
//!   plus tail (slow/error) sampling, and the bounded [`SpanStore`] behind
//!   `GET /v1/debug/traces`.
//! * [`log`] — a leveled, rate-limited ring of structured JSON-lines
//!   records stamped with the active trace/span, behind
//!   `GET /v1/debug/logs`.
//!
//! The crate is dependency-free by design: it renders its own exposition
//! text, so it can sit below every other crate in the workspace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod hist;
pub mod log;
pub mod metric;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKET_COUNT, SUB_BUCKET_BITS};
pub use log::{LogLevel, LogRecord, Logger, LoggerConfig};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use span::{
    ActiveTrace, AttrValue, SampleReason, Span, SpanId, SpanStatus, SpanStore, StoredTrace,
    TraceContext, TraceId, Tracer, TracerConfig,
};
pub use trace::{JobTrace, SlowestRing};

//! Per-job lifecycle traces and the bounded ring of slowest traces.
//!
//! A [`JobTrace`] is a set of **monotonic stage stamps** — nanosecond
//! offsets from one fixed epoch (the owning service's boot instant), all
//! taken from the same monotonic clock, so stage durations are simple
//! saturating differences and stamps are comparable across jobs within one
//! process lifetime:
//!
//! ```text
//! admitted → enqueued → dequeued → solve start → solve end → estimate end → completed
//! ```
//!
//! `family_lock_wait_ns` is a duration, not a stamp: time spent blocked on
//! the plan-family entry lock inside the solve window (zero for cache hits
//! and cold non-family solves).
//!
//! The [`SlowestRing`] keeps the N traces with the largest total latency —
//! **including failed and panicked jobs** (the worst outcomes), which carry
//! a non-`"ok"` [`JobTrace::status`]. The hot path pays one relaxed atomic
//! load when the new trace is too fast to qualify; only qualifying traces
//! take the ring's mutex.
//!
//! When causal tracing is on, the span tree is the primary record:
//! [`JobTrace::record_spans`] renders the stamps as spans into an
//! [`ActiveTrace`], and [`JobTrace::from_spans`] reconstructs the stamp
//! view from a stored span tree — the two are round-trip equal, so there is
//! one bookkeeping source, viewed two ways.

use crate::span::{ActiveTrace, AttrValue, Span, SpanId, SpanStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stage stamps (ns offsets from the service epoch) and labels for one
/// served job. A stamp of zero means the stage was not reached (or telemetry
/// was off).
#[derive(Debug, Clone, Default)]
pub struct JobTrace {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Name of the market the job was tuned against (empty when the owning
    /// service predates markets or telemetry was off).
    pub market: String,
    /// Paper scenario the problem resolved to: `"EA"`, `"RA"` or `"HA"`.
    pub scenario: &'static str,
    /// Where the plan came from: `"cache"`, `"family"` or `"cold"`.
    pub source: &'static str,
    /// How the job ended: `"ok"`, `"failed"`, `"panicked"` or `"lost"`
    /// (empty means `"ok"`, for traces stamped before the field existed).
    pub status: &'static str,
    /// Admission control passed.
    pub admitted_ns: u64,
    /// Job visible in its tenant lane (journal write, if any, included).
    pub enqueued_ns: u64,
    /// A worker picked the job up.
    pub dequeued_ns: u64,
    /// Solve began (fingerprint + cache probe done).
    pub solve_start_ns: u64,
    /// A plan existed (cache read / family read-extend / cold DP solve).
    pub solve_end_ns: u64,
    /// Latency-estimate attach done (equals `solve_end_ns` when no estimate
    /// step ran, e.g. cache hits).
    pub estimate_end_ns: u64,
    /// Response handed to the submitter.
    pub completed_ns: u64,
    /// Time blocked acquiring the plan-family entry lock (duration).
    pub family_lock_wait_ns: u64,
}

impl JobTrace {
    /// Time from lane visibility to worker pickup.
    pub fn queue_wait_ns(&self) -> u64 {
        self.dequeued_ns.saturating_sub(self.enqueued_ns)
    }

    /// Time producing the plan (includes `family_lock_wait_ns`).
    pub fn solve_ns(&self) -> u64 {
        self.solve_end_ns.saturating_sub(self.solve_start_ns)
    }

    /// Time attaching the latency estimate after the plan existed.
    pub fn estimate_ns(&self) -> u64 {
        self.estimate_end_ns.saturating_sub(self.solve_end_ns)
    }

    /// End-to-end time from admission to response.
    pub fn total_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.admitted_ns)
    }

    /// The status with the legacy empty default normalized to `"ok"`.
    pub fn status_str(&self) -> &'static str {
        if self.status.is_empty() {
            "ok"
        } else {
            self.status
        }
    }

    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status_str() == "ok"
    }

    /// Renders the stamps as the job's span subtree into `trace`: a `job`
    /// span (parented under the trace root) with `queue.wait`, `solve`
    /// (plus `family.lock_wait` when the solve blocked on the family entry
    /// lock) and `estimate` children. Every stage span reuses the stamps —
    /// no extra clock reads. Returns the `job` span's id.
    pub fn record_spans(&self, trace: &ActiveTrace) -> SpanId {
        let status = if self.is_ok() {
            SpanStatus::Ok
        } else {
            SpanStatus::Error
        };
        let mut attrs = vec![
            ("job_id", AttrValue::U64(self.job_id)),
            ("tenant", AttrValue::Str(self.tenant.clone())),
            ("status", AttrValue::Str(self.status_str().to_owned())),
        ];
        if !self.market.is_empty() {
            attrs.push(("market", AttrValue::Str(self.market.clone())));
        }
        if !self.scenario.is_empty() {
            attrs.push(("scenario", AttrValue::Str(self.scenario.to_owned())));
        }
        if !self.source.is_empty() {
            attrs.push(("source", AttrValue::Str(self.source.to_owned())));
        }
        let job = trace.span_with(
            "job",
            None,
            self.admitted_ns,
            self.completed_ns,
            status,
            attrs,
        );
        trace.span("queue.wait", Some(job), self.enqueued_ns, self.dequeued_ns);
        if self.solve_start_ns != 0 {
            let mut solve_attrs = Vec::new();
            if !self.source.is_empty() {
                solve_attrs.push(("source", AttrValue::Str(self.source.to_owned())));
            }
            let solve = trace.span_with(
                "solve",
                Some(job),
                self.solve_start_ns,
                self.solve_end_ns,
                status,
                solve_attrs,
            );
            if self.family_lock_wait_ns > 0 {
                // The lock wait is a duration inside the solve window; it is
                // rendered anchored at the solve start (where the family
                // entry lock is taken).
                trace.span(
                    "family.lock_wait",
                    Some(solve),
                    self.solve_start_ns,
                    self.solve_start_ns + self.family_lock_wait_ns,
                );
            }
            if self.estimate_end_ns > self.solve_end_ns {
                trace.span(
                    "estimate",
                    Some(job),
                    self.solve_end_ns,
                    self.estimate_end_ns,
                );
            }
        }
        trace.annotate(&self.tenant, &self.market, self.scenario);
        job
    }

    /// Reconstructs the stamp view from a stored span tree (the inverse of
    /// [`JobTrace::record_spans`]): returns `None` when `spans` holds no
    /// `job` span.
    pub fn from_spans(spans: &[Span]) -> Option<JobTrace> {
        let job = spans.iter().find(|s| s.name == "job")?;
        let mut trace = JobTrace {
            admitted_ns: job.start_ns,
            completed_ns: job.start_ns + job.duration_ns,
            status: "ok",
            ..JobTrace::default()
        };
        for (key, value) in &job.attrs {
            match (*key, value) {
                ("job_id", AttrValue::U64(v)) => trace.job_id = *v,
                ("tenant", AttrValue::Str(v)) => trace.tenant = v.clone(),
                ("market", AttrValue::Str(v)) => trace.market = v.clone(),
                ("scenario", AttrValue::Str(v)) => {
                    trace.scenario = match v.as_str() {
                        "EA" => "EA",
                        "RA" => "RA",
                        "HA" => "HA",
                        _ => "",
                    }
                }
                ("source", AttrValue::Str(v)) => {
                    trace.source = match v.as_str() {
                        "cache" => "cache",
                        "family" => "family",
                        "cold" => "cold",
                        _ => "",
                    }
                }
                ("status", AttrValue::Str(v)) => {
                    trace.status = match v.as_str() {
                        "failed" => "failed",
                        "panicked" => "panicked",
                        "lost" => "lost",
                        _ => "ok",
                    }
                }
                _ => {}
            }
        }
        let job_id = job.span_id;
        let mut solve_id = None;
        for span in spans {
            if span.parent == Some(job_id) {
                match span.name {
                    "queue.wait" => {
                        trace.enqueued_ns = span.start_ns;
                        trace.dequeued_ns = span.start_ns + span.duration_ns;
                    }
                    "solve" => {
                        trace.solve_start_ns = span.start_ns;
                        trace.solve_end_ns = span.start_ns + span.duration_ns;
                        // No estimate span means the estimate window was
                        // empty (e.g. cache hits).
                        if trace.estimate_end_ns == 0 {
                            trace.estimate_end_ns = trace.solve_end_ns;
                        }
                        solve_id = Some(span.span_id);
                    }
                    "estimate" => trace.estimate_end_ns = span.start_ns + span.duration_ns,
                    _ => {}
                }
            }
        }
        if let Some(solve_id) = solve_id {
            for span in spans {
                if span.parent == Some(solve_id) && span.name == "family.lock_wait" {
                    trace.family_lock_wait_ns = span.duration_ns;
                }
            }
        }
        Some(trace)
    }
}

/// A bounded collection of the N slowest completed [`JobTrace`]s by
/// [`JobTrace::total_ns`].
#[derive(Debug)]
pub struct SlowestRing {
    capacity: usize,
    /// Smallest total among kept traces once the ring is full; 0 while
    /// filling. Lets the hot path skip the mutex for fast jobs.
    floor_ns: AtomicU64,
    traces: Mutex<Vec<JobTrace>>,
}

impl SlowestRing {
    /// A ring keeping the `capacity` slowest traces (capacity is clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        SlowestRing {
            capacity: capacity.max(1),
            floor_ns: AtomicU64::new(0),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Offers a completed trace; keeps it iff it ranks among the slowest N.
    pub fn offer(&self, trace: JobTrace) {
        let total = trace.total_ns();
        // Relaxed is fine: a stale floor only means one extra mutex trip or
        // one marginal trace missed — never a wrong ring invariant.
        if total <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut traces = self.traces.lock().expect("slowest ring poisoned");
        if traces.len() < self.capacity {
            traces.push(trace);
        } else {
            let (min_idx, min_total) = traces
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.total_ns()))
                .min_by_key(|&(_, t)| t)
                .expect("ring is non-empty at capacity");
            if total <= min_total {
                return;
            }
            traces[min_idx] = trace;
        }
        if traces.len() == self.capacity {
            let floor = traces
                .iter()
                .map(JobTrace::total_ns)
                .min()
                .expect("ring is non-empty at capacity");
            self.floor_ns.store(floor, Ordering::Relaxed);
        }
    }

    /// The kept traces, slowest first.
    pub fn snapshot(&self) -> Vec<JobTrace> {
        let mut traces = self.traces.lock().expect("slowest ring poisoned").clone();
        traces.sort_by_key(|t| std::cmp::Reverse(t.total_ns()));
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total: u64) -> JobTrace {
        JobTrace {
            job_id: id,
            admitted_ns: 100,
            completed_ns: 100 + total,
            ..JobTrace::default()
        }
    }

    #[test]
    fn durations_are_saturating_differences() {
        let t = JobTrace {
            enqueued_ns: 10,
            dequeued_ns: 25,
            solve_start_ns: 30,
            solve_end_ns: 90,
            estimate_end_ns: 95,
            admitted_ns: 5,
            completed_ns: 100,
            ..JobTrace::default()
        };
        assert_eq!(t.queue_wait_ns(), 15);
        assert_eq!(t.solve_ns(), 60);
        assert_eq!(t.estimate_ns(), 5);
        assert_eq!(t.total_ns(), 95);
        assert_eq!(JobTrace::default().total_ns(), 0);
    }

    #[test]
    fn ring_keeps_the_slowest() {
        let ring = SlowestRing::new(3);
        for (id, total) in [(1, 50), (2, 10), (3, 80), (4, 20), (5, 60), (6, 5)] {
            ring.offer(trace(id, total));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.job_id).collect();
        assert_eq!(kept, vec![3, 5, 1]);
    }

    #[test]
    fn ring_admits_error_traces() {
        let ring = SlowestRing::new(2);
        ring.offer(trace(1, 50));
        ring.offer(JobTrace {
            job_id: 2,
            status: "panicked",
            admitted_ns: 100,
            completed_ns: 400,
            ..JobTrace::default()
        });
        let kept = ring.snapshot();
        assert_eq!(kept[0].job_id, 2);
        assert_eq!(kept[0].status_str(), "panicked");
        assert!(!kept[0].is_ok());
        assert_eq!(kept[1].status_str(), "ok");
    }

    #[test]
    fn spans_round_trip_to_the_stamp_view() {
        use crate::registry::Registry;
        use crate::span::{Tracer, TracerConfig};

        let tracer = Tracer::new(
            &Registry::new(),
            TracerConfig {
                head_sample_every: 1,
                ..TracerConfig::default()
            },
        );
        let original = JobTrace {
            job_id: 42,
            tenant: "acme".to_owned(),
            market: "amt".to_owned(),
            scenario: "RA",
            source: "family",
            status: "ok",
            admitted_ns: 100,
            enqueued_ns: 110,
            dequeued_ns: 150,
            solve_start_ns: 160,
            solve_end_ns: 900,
            estimate_end_ns: 950,
            completed_ns: 1000,
            family_lock_wait_ns: 25,
        };
        let active = tracer.start_trace("job.submit", None);
        let id = active.trace_id();
        original.record_spans(&active);
        drop(active);
        let stored = tracer.store().get(id).expect("head-sampled");
        let view = JobTrace::from_spans(&stored.spans).expect("job span present");
        assert_eq!(format!("{view:?}"), format!("{original:?}"));
        assert_eq!(stored.tenant, "acme");
        assert_eq!(stored.market, "amt");
        assert_eq!(stored.scenario, "RA");
    }

    #[test]
    fn from_spans_without_job_span_is_none() {
        assert!(JobTrace::from_spans(&[]).is_none());
    }

    #[test]
    fn ring_fast_path_skips_slow_enough_traces() {
        let ring = SlowestRing::new(2);
        ring.offer(trace(1, 100));
        ring.offer(trace(2, 200));
        // Ring full; floor is 100 — this one must not displace anything.
        ring.offer(trace(3, 40));
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.job_id).collect();
        assert_eq!(kept, vec![2, 1]);
    }
}

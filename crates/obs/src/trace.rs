//! Per-job lifecycle traces and the bounded ring of slowest traces.
//!
//! A [`JobTrace`] is a set of **monotonic stage stamps** — nanosecond
//! offsets from one fixed epoch (the owning service's boot instant), all
//! taken from the same monotonic clock, so stage durations are simple
//! saturating differences and stamps are comparable across jobs within one
//! process lifetime:
//!
//! ```text
//! admitted → enqueued → dequeued → solve start → solve end → estimate end → completed
//! ```
//!
//! `family_lock_wait_ns` is a duration, not a stamp: time spent blocked on
//! the plan-family entry lock inside the solve window (zero for cache hits
//! and cold non-family solves).
//!
//! The [`SlowestRing`] keeps the N completed traces with the largest total
//! latency. The hot path pays one relaxed atomic load when the new trace is
//! too fast to qualify; only qualifying traces take the ring's mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stage stamps (ns offsets from the service epoch) and labels for one
/// served job. A stamp of zero means the stage was not reached (or telemetry
/// was off).
#[derive(Debug, Clone, Default)]
pub struct JobTrace {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Name of the market the job was tuned against (empty when the owning
    /// service predates markets or telemetry was off).
    pub market: String,
    /// Paper scenario the problem resolved to: `"EA"`, `"RA"` or `"HA"`.
    pub scenario: &'static str,
    /// Where the plan came from: `"cache"`, `"family"` or `"cold"`.
    pub source: &'static str,
    /// Admission control passed.
    pub admitted_ns: u64,
    /// Job visible in its tenant lane (journal write, if any, included).
    pub enqueued_ns: u64,
    /// A worker picked the job up.
    pub dequeued_ns: u64,
    /// Solve began (fingerprint + cache probe done).
    pub solve_start_ns: u64,
    /// A plan existed (cache read / family read-extend / cold DP solve).
    pub solve_end_ns: u64,
    /// Latency-estimate attach done (equals `solve_end_ns` when no estimate
    /// step ran, e.g. cache hits).
    pub estimate_end_ns: u64,
    /// Response handed to the submitter.
    pub completed_ns: u64,
    /// Time blocked acquiring the plan-family entry lock (duration).
    pub family_lock_wait_ns: u64,
}

impl JobTrace {
    /// Time from lane visibility to worker pickup.
    pub fn queue_wait_ns(&self) -> u64 {
        self.dequeued_ns.saturating_sub(self.enqueued_ns)
    }

    /// Time producing the plan (includes `family_lock_wait_ns`).
    pub fn solve_ns(&self) -> u64 {
        self.solve_end_ns.saturating_sub(self.solve_start_ns)
    }

    /// Time attaching the latency estimate after the plan existed.
    pub fn estimate_ns(&self) -> u64 {
        self.estimate_end_ns.saturating_sub(self.solve_end_ns)
    }

    /// End-to-end time from admission to response.
    pub fn total_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.admitted_ns)
    }
}

/// A bounded collection of the N slowest completed [`JobTrace`]s by
/// [`JobTrace::total_ns`].
#[derive(Debug)]
pub struct SlowestRing {
    capacity: usize,
    /// Smallest total among kept traces once the ring is full; 0 while
    /// filling. Lets the hot path skip the mutex for fast jobs.
    floor_ns: AtomicU64,
    traces: Mutex<Vec<JobTrace>>,
}

impl SlowestRing {
    /// A ring keeping the `capacity` slowest traces (capacity is clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        SlowestRing {
            capacity: capacity.max(1),
            floor_ns: AtomicU64::new(0),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Offers a completed trace; keeps it iff it ranks among the slowest N.
    pub fn offer(&self, trace: JobTrace) {
        let total = trace.total_ns();
        // Relaxed is fine: a stale floor only means one extra mutex trip or
        // one marginal trace missed — never a wrong ring invariant.
        if total <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut traces = self.traces.lock().expect("slowest ring poisoned");
        if traces.len() < self.capacity {
            traces.push(trace);
        } else {
            let (min_idx, min_total) = traces
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.total_ns()))
                .min_by_key(|&(_, t)| t)
                .expect("ring is non-empty at capacity");
            if total <= min_total {
                return;
            }
            traces[min_idx] = trace;
        }
        if traces.len() == self.capacity {
            let floor = traces
                .iter()
                .map(JobTrace::total_ns)
                .min()
                .expect("ring is non-empty at capacity");
            self.floor_ns.store(floor, Ordering::Relaxed);
        }
    }

    /// The kept traces, slowest first.
    pub fn snapshot(&self) -> Vec<JobTrace> {
        let mut traces = self.traces.lock().expect("slowest ring poisoned").clone();
        traces.sort_by_key(|t| std::cmp::Reverse(t.total_ns()));
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total: u64) -> JobTrace {
        JobTrace {
            job_id: id,
            admitted_ns: 100,
            completed_ns: 100 + total,
            ..JobTrace::default()
        }
    }

    #[test]
    fn durations_are_saturating_differences() {
        let t = JobTrace {
            enqueued_ns: 10,
            dequeued_ns: 25,
            solve_start_ns: 30,
            solve_end_ns: 90,
            estimate_end_ns: 95,
            admitted_ns: 5,
            completed_ns: 100,
            ..JobTrace::default()
        };
        assert_eq!(t.queue_wait_ns(), 15);
        assert_eq!(t.solve_ns(), 60);
        assert_eq!(t.estimate_ns(), 5);
        assert_eq!(t.total_ns(), 95);
        assert_eq!(JobTrace::default().total_ns(), 0);
    }

    #[test]
    fn ring_keeps_the_slowest() {
        let ring = SlowestRing::new(3);
        for (id, total) in [(1, 50), (2, 10), (3, 80), (4, 20), (5, 60), (6, 5)] {
            ring.offer(trace(id, total));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.job_id).collect();
        assert_eq!(kept, vec![3, 5, 1]);
    }

    #[test]
    fn ring_fast_path_skips_slow_enough_traces() {
        let ring = SlowestRing::new(2);
        ring.offer(trace(1, 100));
        ring.offer(trace(2, 200));
        // Ring full; floor is 100 — this one must not displace anything.
        ring.offer(trace(3, 40));
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.job_id).collect();
        assert_eq!(kept, vec![2, 1]);
    }
}

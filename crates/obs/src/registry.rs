//! The metric [`Registry`]: named families of counters, gauges and
//! histograms, rendered as Prometheus text exposition v0.0.4 or JSON.
//!
//! ## Naming and rendering contract
//!
//! * Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names
//!   `[a-zA-Z_][a-zA-Z0-9_]*`; violations panic at registration (programmer
//!   error, caught by any test that touches the metric).
//! * Families render in **registration order** and children in creation
//!   order, so a caller can arrange cross-counter invariants (e.g. register
//!   and read "parts" before their "whole" so a concurrent scrape never
//!   shows parts exceeding the whole).
//! * Histogram `_count` is derived from the bucket sums of one snapshot, so
//!   `le="+Inf"` always equals `_count` and cumulative bucket counts are
//!   non-decreasing within a scrape and across scrapes.
//!
//! Histograms carry a `scale` divisor applied at render time: record raw
//! nanoseconds, register with `scale = 1e9`, and the exposition speaks
//! seconds (the Prometheus base-unit convention) without a division on the
//! record path.

use crate::hist::Histogram;
use crate::metric::{Counter, Gauge};
use std::fmt::Write as _;
use std::sync::Mutex;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Child {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Render-time divisor for histogram bucket bounds and sums (1.0 for
    /// scalar kinds).
    scale: f64,
    children: Vec<Child>,
}

/// A registry of metric families. Interior-mutexed: `&Registry` is enough to
/// register and render, so it can sit in an `Arc` shared by every layer.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("families", &families.len())
            .finish()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_label_name(k), "invalid label name `{k}`");
            ((*k).to_owned(), (*v).to_owned())
        })
        .collect()
}

/// Escapes a label value for Prometheus exposition (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
fn escape_label_value(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_label_set(labels: &[(String, String)], extra: Option<(&str, &str)>, out: &mut String) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    out.push('}');
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        scale: f64,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(existing) => {
                assert!(
                    existing.kind == kind,
                    "metric `{name}` registered as {} and {}",
                    existing.kind.as_str(),
                    kind.as_str()
                );
                assert!(
                    existing.scale == scale,
                    "metric `{name}` registered with scales {} and {scale}",
                    existing.scale
                );
                existing
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    scale,
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let owned = owned_labels(labels);
        if let Some(child) = family.children.iter().find(|c| c.labels == owned) {
            return child.handle.clone();
        }
        let handle = make();
        family.children.push(Child {
            labels: owned,
            handle: handle.clone(),
        });
        handle
    }

    /// Get-or-create a counter child. The first call for a `(name, labels)`
    /// pair creates it; later calls return the same handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.register_counter(name, help, labels, Counter::new())
    }

    /// Registers an **existing** counter handle (so a component's own field
    /// and the registry render the same cell). Returns the previously
    /// registered handle if the `(name, labels)` pair already exists.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Counter,
    ) -> Counter {
        match self.get_or_insert(name, help, Kind::Counter, 1.0, labels, || {
            Handle::Counter(counter)
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Get-or-create a gauge child.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register_gauge(name, help, labels, Gauge::new())
    }

    /// Registers an existing gauge handle (see [`Registry::register_counter`]).
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: Gauge,
    ) -> Gauge {
        match self.get_or_insert(name, help, Kind::Gauge, 1.0, labels, || {
            Handle::Gauge(gauge)
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Get-or-create a histogram child. `scale` divides bucket bounds and
    /// sums at render time (record ns, pass `1e9`, expose seconds); every
    /// child of one family must use the same scale.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Histogram {
        self.register_histogram(name, help, labels, scale, Histogram::new())
    }

    /// Registers an existing histogram handle (see
    /// [`Registry::register_counter`]).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
        histogram: Histogram,
    ) -> Histogram {
        assert!(
            scale.is_finite() && scale > 0.0,
            "histogram scale must be positive"
        );
        match self.get_or_insert(name, help, Kind::Histogram, scale, labels, || {
            Handle::Histogram(histogram)
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Renders Prometheus text exposition format v0.0.4 (the
    /// `text/plain; version=0.0.4` content type).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for child in &family.children {
                match &child.handle {
                    Handle::Counter(c) => {
                        out.push_str(&family.name);
                        write_label_set(&child.labels, None, &mut out);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&family.name);
                        write_label_set(&child.labels, None, &mut out);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        for (upper, cum) in snap.cumulative_nonzero() {
                            let le = (upper as f64 / family.scale).to_string();
                            out.push_str(&family.name);
                            out.push_str("_bucket");
                            write_label_set(&child.labels, Some(("le", le.as_str())), &mut out);
                            let _ = writeln!(out, " {cum}");
                        }
                        out.push_str(&family.name);
                        out.push_str("_bucket");
                        write_label_set(&child.labels, Some(("le", "+Inf")), &mut out);
                        let _ = writeln!(out, " {}", snap.count);
                        out.push_str(&family.name);
                        out.push_str("_sum");
                        write_label_set(&child.labels, None, &mut out);
                        let _ = writeln!(out, " {}", snap.sum as f64 / family.scale);
                        out.push_str(&family.name);
                        out.push_str("_count");
                        write_label_set(&child.labels, None, &mut out);
                        let _ = writeln!(out, " {}", snap.count);
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object keyed by family name, in
    /// registration order. Histogram samples carry `count`, scaled `sum`,
    /// and p50/p90/p99 estimates.
    pub fn render_json(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::from("{");
        for (fi, family) in families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            write_json_string(&family.name, &mut out);
            let _ = write!(out, ":{{\"type\":\"{}\",\"help\":", family.kind.as_str());
            write_json_string(&family.help, &mut out);
            out.push_str(",\"samples\":[");
            for (ci, child) in family.children.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in child.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    write_json_string(k, &mut out);
                    out.push(':');
                    write_json_string(v, &mut out);
                }
                out.push('}');
                match &child.handle {
                    Handle::Counter(c) => {
                        let _ = write!(out, ",\"value\":{}", c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = write!(out, ",\"value\":{}", g.get());
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let _ = write!(
                            out,
                            ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                            snap.count,
                            snap.sum as f64 / family.scale,
                            snap.quantile(0.50) as f64 / family.scale,
                            snap.quantile(0.90) as f64 / family.scale,
                            snap.quantile(0.99) as f64 / family.scale,
                        );
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_cell() {
        let registry = Registry::new();
        let a = registry.counter("jobs_total", "Jobs.", &[("tenant", "t1")]);
        let b = registry.counter("jobs_total", "Jobs.", &[("tenant", "t1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let other = registry.counter("jobs_total", "Jobs.", &[("tenant", "t2")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn register_existing_handle_is_rendered() {
        let registry = Registry::new();
        let mine = Counter::new();
        mine.add(7);
        registry.register_counter("preexisting_total", "Pre.", &[], mine.clone());
        mine.inc();
        let text = registry.render_prometheus();
        assert!(text.contains("preexisting_total 8"), "{text}");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let registry = Registry::new();
        let c = registry.counter("reqs_total", "Requests.", &[("ep", "jobs")]);
        c.add(3);
        let g = registry.gauge("depth", "Queue depth.", &[]);
        g.set(-2);
        let h = registry.histogram("lat_seconds", "Latency.", &[("ep", "jobs")], 1e9);
        h.record(500); // 5e-7 s
        h.record(1_000_000_000); // 1 s
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total{ep=\"jobs\"} 3"), "{text}");
        assert!(text.contains("# TYPE depth gauge"), "{text}");
        assert!(text.contains("depth -2"), "{text}");
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
        assert!(
            text.contains("lat_seconds_bucket{ep=\"jobs\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_count{ep=\"jobs\"} 2"), "{text}");
    }

    #[test]
    fn json_rendering_parses() {
        let registry = Registry::new();
        registry.counter("a_total", "A.", &[]).add(2);
        registry
            .histogram("b_seconds", "B \"quoted\".", &[("k", "v")], 1e9)
            .record(10);
        let json = registry.render_json();
        // Quick structural sanity; full parse happens in integration tests.
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"a_total\""), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        Registry::new().counter("bad-name", "x", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter("esc_total", "E.", &[("v", "a\"b\\c\nd")])
            .inc();
        let text = registry.render_prometheus();
        assert!(
            text.contains("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }
}

//! Leveled, rate-limited, trace-correlated structured logging.
//!
//! A [`Logger`] is a bounded in-memory ring of structured [`LogRecord`]s,
//! rendered as JSON lines and surfaced at `GET /v1/debug/logs`. Every
//! record is stamped with the thread's active trace/span
//! ([`crate::span::current_span`]), so a trace found in the span store and
//! the log lines emitted while serving it share ids — the causal join the
//! debug endpoints are built around.
//!
//! Emission is guarded twice:
//!
//! * a **level floor** ([`LoggerConfig::min_level`]) checked before any
//!   formatting cost;
//! * a **token bucket** ([`LoggerConfig::rate_per_sec`] with burst) so a
//!   logging storm (a tight error loop) cannot take down the process —
//!   over-rate records are counted in
//!   `crowdtune_log_records_dropped_total` instead of retained.
//!
//! Accepted records count toward `crowdtune_log_records_total{level}`.

use crate::metric::Counter;
use crate::registry::Registry;
use crate::span::{current_span, SpanId, TraceId};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic detail, off by default.
    Debug,
    /// Normal operational events.
    Info,
    /// Unexpected but handled conditions.
    Warn,
    /// Failures.
    Error,
}

impl LogLevel {
    /// All levels, ascending.
    pub const ALL: [LogLevel; 4] = [
        LogLevel::Debug,
        LogLevel::Info,
        LogLevel::Warn,
        LogLevel::Error,
    ];

    /// The wire form: `"debug"`, `"info"`, `"warn"`, `"error"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses the wire form (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            LogLevel::Debug => 0,
            LogLevel::Info => 1,
            LogLevel::Warn => 2,
            LogLevel::Error => 3,
        }
    }
}

/// One structured log record.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Unix timestamp in nanoseconds.
    pub ts_unix_ns: u64,
    /// Severity.
    pub level: LogLevel,
    /// Emitting component (e.g. `"gateway"`, `"serve.worker"`).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Trace active on the emitting thread, if any.
    pub trace_id: Option<TraceId>,
    /// Span active on the emitting thread, if any.
    pub span_id: Option<SpanId>,
    /// Structured key/value fields.
    pub fields: Vec<(&'static str, String)>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl LogRecord {
    /// Renders the record as one JSON object (a JSON-lines line, no trailing
    /// newline).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.message.len());
        out.push_str(&format!(
            "{{\"ts_unix_ns\":{},\"level\":\"{}\",\"target\":\"{}\"",
            self.ts_unix_ns,
            self.level.as_str(),
            self.target
        ));
        out.push_str(",\"message\":\"");
        escape_into(&mut out, &self.message);
        out.push('"');
        if let Some(trace_id) = self.trace_id {
            out.push_str(&format!(",\"trace_id\":\"{}\"", trace_id.to_hex()));
        }
        if let Some(span_id) = self.span_id {
            out.push_str(&format!(",\"span_id\":\"{}\"", span_id.to_hex()));
        }
        for (key, value) in &self.fields {
            out.push_str(&format!(",\"{key}\":\""));
            escape_into(&mut out, value);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Retention and throttling policy for a [`Logger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggerConfig {
    /// Ring capacity (records retained for `GET /v1/debug/logs`).
    pub capacity: usize,
    /// Records below this level are discarded before formatting.
    pub min_level: LogLevel,
    /// Sustained admission rate (records/second) of the token bucket.
    pub rate_per_sec: f64,
    /// Burst size of the token bucket.
    pub burst: f64,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            capacity: 1024,
            min_level: LogLevel::Info,
            rate_per_sec: 500.0,
            burst: 250.0,
        }
    }
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// A bounded, rate-limited ring of structured log records.
#[derive(Debug)]
pub struct Logger {
    config: LoggerConfig,
    ring: Mutex<VecDeque<LogRecord>>,
    bucket: Mutex<TokenBucket>,
    records: [Counter; 4],
    dropped: Counter,
}

impl std::fmt::Debug for TokenBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenBucket")
            .field("tokens", &self.tokens)
            .finish()
    }
}

impl Logger {
    /// Creates a logger and registers `crowdtune_log_records_total{level}`
    /// and `crowdtune_log_records_dropped_total` in `registry`.
    pub fn new(registry: &Registry, config: LoggerConfig) -> Arc<Logger> {
        let records = LogLevel::ALL.map(|level| {
            registry.counter(
                "crowdtune_log_records_total",
                "Structured log records accepted, by level.",
                &[("level", level.as_str())],
            )
        });
        let dropped = registry.counter(
            "crowdtune_log_records_dropped_total",
            "Structured log records discarded by the rate limiter.",
            &[],
        );
        Arc::new(Logger {
            config,
            ring: Mutex::new(VecDeque::with_capacity(config.capacity.max(1))),
            bucket: Mutex::new(TokenBucket {
                tokens: config.burst.max(1.0),
                last: Instant::now(),
            }),
            records,
            dropped,
        })
    }

    /// The policy in force.
    pub fn config(&self) -> LoggerConfig {
        self.config
    }

    /// Emits a record with no structured fields.
    pub fn log(&self, level: LogLevel, target: &'static str, message: impl Into<String>) {
        self.log_with(level, target, message, Vec::new());
    }

    /// Emits a record with structured fields. Below-floor levels cost one
    /// comparison; over-rate records are dropped (and counted) after the
    /// level check but before ring admission.
    pub fn log_with(
        &self,
        level: LogLevel,
        target: &'static str,
        message: impl Into<String>,
        fields: Vec<(&'static str, String)>,
    ) {
        if level < self.config.min_level {
            return;
        }
        if !self.take_token() {
            self.dropped.inc();
            return;
        }
        self.records[level.index()].inc();
        let (trace_id, span_id) = match current_span() {
            Some((trace, span)) => (Some(trace), Some(span)),
            None => (None, None),
        };
        let record = LogRecord {
            ts_unix_ns: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            level,
            target,
            message: message.into(),
            trace_id,
            span_id,
            fields,
        };
        let mut ring = self.ring.lock().expect("log ring poisoned");
        if ring.len() >= self.config.capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    fn take_token(&self) -> bool {
        let mut bucket = self.bucket.lock().expect("log bucket poisoned");
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.last = now;
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst.max(1.0));
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The retained records, oldest first, filtered to `min_level` and
    /// truncated to the **newest** `limit`.
    pub fn snapshot(&self, min_level: Option<LogLevel>, limit: usize) -> Vec<LogRecord> {
        let ring = self.ring.lock().expect("log ring poisoned");
        let filtered: Vec<LogRecord> = ring
            .iter()
            .filter(|r| min_level.is_none_or(|floor| r.level >= floor))
            .cloned()
            .collect();
        let skip = filtered.len().saturating_sub(limit.max(1));
        filtered.into_iter().skip(skip).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::enter_span;

    fn logger(config: LoggerConfig) -> Arc<Logger> {
        Logger::new(&Registry::new(), config)
    }

    #[test]
    fn level_floor_filters_before_admission() {
        let log = logger(LoggerConfig {
            min_level: LogLevel::Warn,
            ..LoggerConfig::default()
        });
        log.log(LogLevel::Info, "test", "quiet");
        log.log(LogLevel::Error, "test", "loud");
        let kept = log.snapshot(None, 16);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].message, "loud");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = logger(LoggerConfig {
            capacity: 3,
            rate_per_sec: 1e9,
            burst: 1e9,
            ..LoggerConfig::default()
        });
        for i in 0..10 {
            log.log(LogLevel::Info, "test", format!("m{i}"));
        }
        let kept: Vec<String> = log
            .snapshot(None, 16)
            .into_iter()
            .map(|r| r.message)
            .collect();
        assert_eq!(kept, vec!["m7", "m8", "m9"]);
    }

    #[test]
    fn rate_limiter_drops_and_counts_storms() {
        let registry = Registry::new();
        let log = Logger::new(
            &registry,
            LoggerConfig {
                capacity: 1024,
                min_level: LogLevel::Debug,
                rate_per_sec: 0.0,
                burst: 2.0,
            },
        );
        for _ in 0..10 {
            log.log(LogLevel::Error, "test", "storm");
        }
        assert_eq!(log.snapshot(None, 64).len(), 2);
        let text = registry.render_prometheus();
        assert!(
            text.contains("crowdtune_log_records_dropped_total 8"),
            "{text}"
        );
        assert!(
            text.contains("crowdtune_log_records_total{level=\"error\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn records_carry_the_active_span() {
        let log = logger(LoggerConfig::default());
        {
            let _guard = enter_span(TraceId(0xabc), SpanId(0xdef));
            log.log(LogLevel::Info, "test", "traced");
        }
        log.log(LogLevel::Info, "test", "untraced");
        let kept = log.snapshot(None, 16);
        assert_eq!(kept[0].trace_id, Some(TraceId(0xabc)));
        assert_eq!(kept[0].span_id, Some(SpanId(0xdef)));
        assert_eq!(kept[1].trace_id, None);
        let line = kept[0].render_json();
        assert!(line.contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(line.contains("\"span_id\":\"0000000000000def\""));
    }

    #[test]
    fn json_rendering_escapes() {
        let record = LogRecord {
            ts_unix_ns: 7,
            level: LogLevel::Warn,
            target: "test",
            message: "a \"quote\"\nnewline".to_owned(),
            trace_id: None,
            span_id: None,
            fields: vec![("key", "v\\al".to_owned())],
        };
        assert_eq!(
            record.render_json(),
            "{\"ts_unix_ns\":7,\"level\":\"warn\",\"target\":\"test\",\
             \"message\":\"a \\\"quote\\\"\\nnewline\",\"key\":\"v\\\\al\"}"
        );
    }
}

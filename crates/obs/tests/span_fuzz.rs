//! Seeded property/fuzz tests for the tracing layer: `traceparent` parsing
//! must never panic and must round-trip every valid context, and the
//! `SpanStore` must stay coherent under concurrent record/scrape load.

use crowdtune_obs::span::{random_span_id, random_trace_id};
use crowdtune_obs::{
    Registry, SampleReason, SpanId, SpanStatus, SpanStore, StoredTrace, TraceContext, TraceId,
    Tracer, TracerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn random_context(rng: &mut StdRng) -> TraceContext {
    let high = rng.gen_range(0u64..u64::MAX) as u128;
    let low = rng.gen_range(1u64..u64::MAX) as u128;
    TraceContext {
        trace_id: TraceId((high << 64) | low),
        parent: SpanId(rng.gen_range(1u64..u64::MAX)),
        sampled: rng.gen_bool(0.5),
    }
}

/// Every valid context survives render → parse unchanged.
#[test]
fn traceparent_round_trips_for_random_contexts() {
    let mut rng = StdRng::seed_from_u64(0x7ace_7a2e);
    for _ in 0..2000 {
        let ctx = random_context(&mut rng);
        let rendered = ctx.render_traceparent();
        assert_eq!(
            TraceContext::parse_traceparent(&rendered),
            Some(ctx),
            "{rendered}"
        );
    }
}

/// Random byte soup must neither panic nor (except for the astronomically
/// unlikely well-formed case) parse.
#[test]
fn traceparent_never_panics_on_garbage() {
    let mut rng = StdRng::seed_from_u64(0xbad_1dea);
    for _ in 0..4000 {
        let len = rng.gen_range(0usize..96);
        let garbage: String = (0..len)
            .map(|_| {
                let printable = rng.gen_range(0x20u8..0x7f);
                if rng.gen_bool(0.9) {
                    printable as char
                } else {
                    char::from_u32(rng.gen_range(0u32..0x2000)).unwrap_or('?')
                }
            })
            .collect();
        let _ = TraceContext::parse_traceparent(&garbage);
    }
}

/// Single-character mutations of a valid header must never panic, and any
/// mutation that still parses must decode to hex-consistent fields (the
/// parser is strict about width, case and the zero ids).
#[test]
fn traceparent_mutations_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for _ in 0..4000 {
        let valid = random_context(&mut rng).render_traceparent();
        let mut bytes = valid.into_bytes();
        for _ in 0..rng.gen_range(1usize..4) {
            let at = rng.gen_range(0usize..bytes.len());
            match rng.gen_range(0u8..3) {
                0 => bytes[at] = rng.gen_range(0x20u8..0x7f),
                1 => {
                    bytes.remove(at);
                }
                _ => bytes.insert(at, rng.gen_range(0x20u8..0x7f)),
            }
            if bytes.is_empty() {
                bytes.push(b'-');
            }
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            if let Some(ctx) = TraceContext::parse_traceparent(&mutated) {
                // Anything that still parses must re-render canonically and
                // re-parse to itself.
                assert_eq!(
                    TraceContext::parse_traceparent(&ctx.render_traceparent()),
                    Some(ctx)
                );
            }
        }
    }
}

fn stored(trace_id: TraceId, seq: u64, spans: usize) -> Arc<StoredTrace> {
    let root = random_span_id();
    let spans = (0..spans)
        .map(|i| crowdtune_obs::Span {
            trace_id,
            span_id: if i == 0 { root } else { random_span_id() },
            parent: (i > 0).then_some(root),
            name: "stage",
            start_ns: seq,
            duration_ns: 10,
            status: SpanStatus::Ok,
            attrs: vec![("seq", crowdtune_obs::AttrValue::U64(seq))],
        })
        .collect::<Vec<_>>();
    Arc::new(StoredTrace {
        trace_id,
        name: "job",
        tenant: format!("tenant-{seq}"),
        market: String::new(),
        scenario: "RA",
        status: SpanStatus::Ok,
        start_ns: seq,
        duration_ns: 10,
        reason: SampleReason::Head,
        spans,
    })
}

/// Hammer the store from several recording threads while scraping from
/// several reading threads: every scraped trace must be internally coherent
/// (all spans carry the trace's id and the seq attribute matches the
/// summary), and after the dust settles the newest `capacity` traces are
/// all present.
#[test]
fn span_store_stays_coherent_under_concurrent_load() {
    let store = Arc::new(SpanStore::new(32));
    let writers = 4;
    let per_writer = 500u64;
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..per_writer {
                    let seq = w * per_writer + i;
                    let trace_id = TraceId((seq as u128) + 1);
                    store.record(stored(trace_id, seq, 4));
                }
            });
        }
        for _ in 0..3 {
            let store = store.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for trace in store.snapshot() {
                        assert!(trace.spans.len() == 4);
                        for span in &trace.spans {
                            assert_eq!(span.trace_id, trace.trace_id);
                            assert_eq!(span.start_ns, trace.start_ns);
                        }
                        assert_eq!(trace.tenant, format!("tenant-{}", trace.start_ns));
                    }
                    let probe = TraceId(1);
                    if let Some(trace) = store.get(probe) {
                        assert_eq!(trace.trace_id, probe);
                    }
                }
            });
        }
        // Writer threads joined first (scope join order is reverse spawn
        // order is not guaranteed, so signal explicitly after they finish).
        // The scope macro joins all threads; stop the readers once the
        // writers are done by spawning a watcher thread.
        let store_done = store.clone();
        let stop_done = stop.clone();
        scope.spawn(move || {
            // Busy-wait until all writer sequence ids are visible or the
            // snapshot stabilizes; simplest robust signal: sleep briefly.
            std::thread::sleep(std::time::Duration::from_millis(200));
            let _ = store_done.snapshot();
            stop_done.store(true, Ordering::Relaxed);
        });
    });

    let snapshot = store.snapshot();
    assert_eq!(snapshot.len(), 32, "ring must be full after the load");
    for trace in &snapshot {
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[0].trace_id, trace.trace_id);
    }
}

/// Concurrent *trace completion* (the Drop-driven flush path) must also be
/// safe: many threads finishing head-sampled traces against one tracer.
#[test]
fn tracer_flushes_concurrently() {
    let tracer = Tracer::new(
        &Registry::new(),
        TracerConfig {
            head_sample_every: 1,
            slow_threshold_ns: u64::MAX,
            capacity: 64,
        },
    );
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    let trace = tracer.start_trace("job", None);
                    let t0 = trace.now_ns();
                    let solve = trace.span("solve", None, t0, t0 + 5);
                    trace.span("estimate", Some(solve), t0 + 5, t0 + 9);
                    drop(trace);
                }
            });
        }
    });
    let snapshot = tracer.store().snapshot();
    assert_eq!(snapshot.len(), 64);
    for trace in &snapshot {
        assert_eq!(trace.spans.len(), 3, "root + solve + estimate");
    }
}

/// Fresh ids are never zero and (within a budget) never collide.
#[test]
fn minted_ids_are_nonzero_and_distinct() {
    let mut seen_traces = std::collections::HashSet::new();
    let mut seen_spans = std::collections::HashSet::new();
    for _ in 0..10_000 {
        let t = random_trace_id();
        let s = random_span_id();
        assert_ne!(t.0, 0);
        assert_ne!(s.0, 0);
        assert!(seen_traces.insert(t.0));
        assert!(seen_spans.insert(s.0));
    }
}

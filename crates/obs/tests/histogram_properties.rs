//! Seeded property tests for the histogram core (satellite of the
//! observability PR): quantile error bounds against exact sorted samples,
//! merge associativity/commutativity, and lossless concurrent recording.

use crowdtune_obs::{Histogram, SUB_BUCKET_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Draws a sample set that mixes magnitudes (sub-bucket exact region,
/// microsecond-ish mid range, huge outliers) so quantile walks cross many
/// octaves.
fn arbitrary_samples(rng: &mut StdRng, len: usize) -> Vec<u64> {
    (0..len)
        .map(|_| match rng.gen_range(0u32..10) {
            0 => rng.gen_range(0u64..8),           // exact linear region
            1..=6 => rng.gen_range(8u64..100_000), // typical latency band
            7 | 8 => rng.gen_range(100_000u64..1_000_000_000),
            _ => rng.gen_range(1_000_000_000u64..(1u64 << 50)),
        })
        .collect()
}

/// The documented bound: `exact <= estimate <= exact + exact/2^b`, exact for
/// values below `2^b`.
fn assert_within_bound(q: f64, exact: u64, estimate: u64, seed: u64) {
    assert!(
        estimate >= exact,
        "seed {seed} q {q}: estimate {estimate} under-reports exact {exact}"
    );
    let slack = exact >> SUB_BUCKET_BITS;
    assert!(
        estimate <= exact + slack,
        "seed {seed} q {q}: estimate {estimate} exceeds exact {exact} + {slack}"
    );
}

#[test]
fn quantile_estimates_respect_error_bound() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(9100 + seed);
        let len = rng.gen_range(1usize..5000);
        let mut samples = arbitrary_samples(&mut rng, len);
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count, len as u64);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            // Same nearest-rank definition the histogram documents.
            let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
            let exact = samples[rank - 1];
            assert_within_bound(q, exact, snap.quantile(q), seed);
        }
    }
}

#[test]
fn merge_is_commutative_and_associative() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(9200 + seed);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                let len = rng.gen_range(1usize..800);
                arbitrary_samples(&mut rng, len)
            })
            .collect();
        let hist_of = |sets: &[&Vec<u64>]| {
            let h = Histogram::new();
            for set in sets {
                let part = Histogram::new();
                for &v in set.iter() {
                    part.record(v);
                }
                h.merge_from(&part);
            }
            h.snapshot()
        };
        let abc = hist_of(&[&parts[0], &parts[1], &parts[2]]);
        let cba = hist_of(&[&parts[2], &parts[1], &parts[0]]);
        let bac = hist_of(&[&parts[1], &parts[0], &parts[2]]);
        // Bucket-wise addition commutes and associates exactly, so every
        // derived statistic must agree bit-for-bit across merge orders.
        for other in [&cba, &bac] {
            assert_eq!(abc.count, other.count, "seed {seed}");
            assert_eq!(abc.sum, other.sum, "seed {seed}");
            assert_eq!(
                abc.cumulative_nonzero(),
                other.cumulative_nonzero(),
                "seed {seed}"
            );
        }
        // Merging pre-merged pairs equals merging parts one at a time.
        let pair = Histogram::new();
        for &v in parts[0].iter().chain(parts[1].iter()) {
            pair.record(v);
        }
        let nested = Histogram::new();
        nested.merge_from(&pair);
        let tail = Histogram::new();
        for &v in parts[2].iter() {
            tail.record(v);
        }
        nested.merge_from(&tail);
        assert_eq!(
            nested.snapshot().cumulative_nonzero(),
            abc.cumulative_nonzero(),
            "seed {seed}"
        );
    }
}

#[test]
fn concurrent_recording_drops_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let hist = Arc::new(Histogram::new());
    let mut expected_sum = 0u64;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let mut rng = StdRng::seed_from_u64(9300 + t as u64);
        let samples = arbitrary_samples(&mut rng, PER_THREAD);
        expected_sum += samples.iter().sum::<u64>();
        let hist = Arc::clone(&hist);
        handles.push(std::thread::spawn(move || {
            for v in samples {
                hist.record(v);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.sum, expected_sum);
    let cum = snap.cumulative_nonzero();
    assert_eq!(cum.last().expect("non-empty").1, snap.count);
}

#[test]
fn snapshot_under_concurrent_writes_is_consistent() {
    // A scrape taken mid-load must still satisfy count == sum(buckets) and
    // monotone cumulative counts — the le="+Inf" == _count contract.
    let hist = Arc::new(Histogram::new());
    let writer = {
        let hist = Arc::clone(&hist);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(9400);
            for _ in 0..200_000 {
                hist.record(rng.gen_range(0u64..1_000_000));
            }
        })
    };
    let mut last_count = 0u64;
    while !writer.is_finished() {
        let snap = hist.snapshot();
        let cum = snap.cumulative_nonzero();
        if let Some(&(_, total)) = cum.last() {
            assert_eq!(total, snap.count, "snapshot count != sum of its buckets");
        }
        assert!(snap.count >= last_count, "count went backwards");
        last_count = snap.count;
    }
    writer.join().expect("writer panicked");
}

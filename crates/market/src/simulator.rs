//! The discrete-event marketplace simulator.
//!
//! Given a [`TaskSet`], an [`Allocation`] and an on-hold [`RateModel`], the
//! simulator plays out the life of every task repetition — publish, accept,
//! submit — on a continuous clock and returns a [`SimulationReport`] with the
//! full timing trace. Two acceptance mechanisms are supported (see
//! [`MarketMode`]): sampling the paper's exponential on-hold model directly,
//! or simulating an explicit Poisson stream of workers with a choice model.

use crate::config::{ChoiceModel, MarketConfig, MarketMode, WorkerPoolConfig};
use crate::control::{ControlAction, MarketController, MarketRate, MarketView, NoopController};
use crate::events::{Event, EventQueue, RepetitionId, WorkerId};
use crate::metrics::{RepetitionRecord, SimulationReport};
use crate::time::SimTime;
use crowdtune_core::error::{CoreError, Result};
use crowdtune_core::money::Allocation;
use crowdtune_core::rate::RateModel;
use crowdtune_core::stats::Exponential;
use crowdtune_core::task::TaskSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The marketplace simulator. Cheap to clone; all run state is local to
/// [`MarketSimulator::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MarketSimulator {
    config: MarketConfig,
}

impl MarketSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MarketConfig) -> Self {
        MarketSimulator { config }
    }

    /// The configuration the simulator runs with.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Simulates one job and returns its timing report.
    pub fn run<M: RateModel + ?Sized>(
        &self,
        task_set: &TaskSet,
        allocation: &Allocation,
        rate_model: &M,
    ) -> Result<SimulationReport> {
        self.run_controlled(task_set, allocation, rate_model, &mut NoopController)
    }

    /// Simulates one job under a possibly time-varying market rate, invoking
    /// `controller` after every processed event. The controller observes the
    /// job's progress (see [`MarketView`]) and may re-allocate the payments
    /// of repetitions that have not been published yet — the hook the online
    /// re-tuner plugs into. Payments are committed at publish time, so
    /// re-allocation never rewrites history.
    pub fn run_controlled<M: MarketRate + ?Sized, C: MarketController + ?Sized>(
        &self,
        task_set: &TaskSet,
        allocation: &Allocation,
        market_rate: &M,
        controller: &mut C,
    ) -> Result<SimulationReport> {
        task_set.validate()?;
        check_allocation_shape(task_set, allocation)?;
        let mut run = SimulationRun::new(self.config, task_set, allocation, market_rate)?;
        run.execute(controller)
    }

    /// Runs `trials` independent simulations (seeds `seed`, `seed + 1`, ...)
    /// and returns all reports.
    pub fn run_many<M: RateModel + ?Sized>(
        &self,
        task_set: &TaskSet,
        allocation: &Allocation,
        rate_model: &M,
        trials: usize,
    ) -> Result<Vec<SimulationReport>> {
        (0..trials)
            .map(|trial| {
                let config = self
                    .config
                    .with_seed(self.config.seed.wrapping_add(trial as u64));
                MarketSimulator::new(config).run(task_set, allocation, rate_model)
            })
            .collect()
    }

    /// Mean simulated job latency (both phases) over `trials` runs.
    pub fn mean_job_latency<M: RateModel + ?Sized>(
        &self,
        task_set: &TaskSet,
        allocation: &Allocation,
        rate_model: &M,
        trials: usize,
    ) -> Result<f64> {
        if trials == 0 {
            return Err(CoreError::invalid_argument(
                "at least one trial is required".to_owned(),
            ));
        }
        let reports = self.run_many(task_set, allocation, rate_model, trials)?;
        Ok(reports.iter().map(|r| r.job_latency()).sum::<f64>() / trials as f64)
    }

    /// Mean simulated on-hold-only job latency over `trials` runs.
    pub fn mean_on_hold_latency<M: RateModel + ?Sized>(
        &self,
        task_set: &TaskSet,
        allocation: &Allocation,
        rate_model: &M,
        trials: usize,
    ) -> Result<f64> {
        if trials == 0 {
            return Err(CoreError::invalid_argument(
                "at least one trial is required".to_owned(),
            ));
        }
        let reports = self.run_many(task_set, allocation, rate_model, trials)?;
        Ok(reports.iter().map(|r| r.job_on_hold_latency()).sum::<f64>() / trials as f64)
    }
}

/// Checks that `allocation` covers every repetition of `task_set`.
fn check_allocation_shape(task_set: &TaskSet, allocation: &Allocation) -> Result<()> {
    if allocation.task_count() != task_set.len() {
        return Err(CoreError::invalid_argument(format!(
            "allocation covers {} tasks but the task set has {}",
            allocation.task_count(),
            task_set.len()
        )));
    }
    for (index, task) in task_set.tasks().iter().enumerate() {
        if allocation.task_payments(index).len() != task.repetitions as usize {
            return Err(CoreError::invalid_argument(format!(
                "task {index}: allocation provides {} payments for {} repetitions",
                allocation.task_payments(index).len(),
                task.repetitions
            )));
        }
    }
    Ok(())
}

/// Mutable state of a single simulation run.
struct SimulationRun<'a, M: MarketRate + ?Sized> {
    config: MarketConfig,
    task_set: &'a TaskSet,
    /// The allocation currently in force for unpublished repetitions; owned
    /// so a controller can replace it mid-flight.
    allocation: Allocation,
    market_rate: &'a M,
    rng: StdRng,
    queue: EventQueue,
    /// Posted but not yet accepted repetitions (worker-pool mode).
    posted: BTreeMap<RepetitionId, u64>,
    /// Payment of every published repetition, snapshotted at publish time so
    /// later re-allocations cannot rewrite committed payments.
    committed: BTreeMap<RepetitionId, u64>,
    committed_units: u64,
    published: Vec<u32>,
    completed: Vec<u32>,
    publish_times: BTreeMap<RepetitionId, SimTime>,
    accept_times: BTreeMap<RepetitionId, SimTime>,
    records: Vec<RepetitionRecord>,
    remaining: usize,
    next_worker: u64,
}

impl<'a, M: MarketRate + ?Sized> SimulationRun<'a, M> {
    fn new(
        config: MarketConfig,
        task_set: &'a TaskSet,
        allocation: &Allocation,
        market_rate: &'a M,
    ) -> Result<Self> {
        Ok(SimulationRun {
            config,
            task_set,
            allocation: allocation.clone(),
            market_rate,
            rng: StdRng::seed_from_u64(config.seed),
            queue: EventQueue::new(),
            posted: BTreeMap::new(),
            committed: BTreeMap::new(),
            committed_units: 0,
            published: vec![0; task_set.len()],
            completed: vec![0; task_set.len()],
            publish_times: BTreeMap::new(),
            accept_times: BTreeMap::new(),
            records: Vec::with_capacity(task_set.total_repetitions() as usize),
            remaining: task_set.total_repetitions() as usize,
            next_worker: 0,
        })
    }

    /// Payment of a repetition: the committed (publish-time) payment when the
    /// repetition is already published, the current allocation otherwise.
    fn payment_of(&self, rep: RepetitionId) -> u64 {
        if let Some(&units) = self.committed.get(&rep) {
            return units;
        }
        self.allocation.task_payments(rep.task)[rep.repetition as usize].as_units()
    }

    fn on_hold_rate_for(&self, rep: RepetitionId, now: SimTime) -> Result<f64> {
        let payment = self.payment_of(rep);
        let rate = self.market_rate.rate_at(payment as f64, now);
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::InvalidRate { payment, rate });
        }
        Ok(rate)
    }

    fn processing_rate_for(&self, rep: RepetitionId) -> Result<f64> {
        let task = &self.task_set.tasks()[rep.task];
        let ty = self
            .task_set
            .type_by_id(task.task_type)
            .ok_or_else(|| CoreError::invalid_argument("task references unknown type"))?;
        Ok(ty.processing_rate)
    }

    fn sample_exponential(&mut self, rate: f64) -> Result<f64> {
        Ok(Exponential::new(rate)?.sample(&mut self.rng))
    }

    fn execute<C: MarketController + ?Sized>(
        &mut self,
        controller: &mut C,
    ) -> Result<SimulationReport> {
        // Publish the initial wave of repetitions.
        for (task_index, task) in self.task_set.tasks().iter().enumerate() {
            let reps_to_publish = if self.config.sequential_repetitions {
                1
            } else {
                task.repetitions
            };
            for rep in 0..reps_to_publish {
                self.queue.schedule(
                    SimTime::ZERO,
                    Event::Publish(RepetitionId::new(task_index, rep)),
                );
            }
        }
        // Worker-pool mode: start the Poisson arrival stream.
        if let MarketMode::WorkerPool(pool) = self.config.mode {
            let first = self.sample_exponential(pool.arrival_rate)?;
            self.queue
                .schedule(SimTime::ZERO.after(first), Event::WorkerArrival);
        }

        while self.remaining > 0 {
            if self.queue.processed_count() > self.config.max_events {
                return Err(CoreError::invalid_argument(format!(
                    "simulation exceeded the event budget of {} events; the market \
                     configuration likely prevents tasks from ever being accepted",
                    self.config.max_events
                )));
            }
            let (now, event) = self.queue.pop().ok_or_else(|| {
                CoreError::invalid_argument(
                    "event queue drained before every repetition completed".to_owned(),
                )
            })?;
            match event {
                Event::Publish(rep) => self.handle_publish(now, rep)?,
                Event::WorkerArrival => self.handle_worker_arrival(now)?,
                Event::Accept { repetition, worker } => {
                    self.handle_accept(now, repetition, worker)?
                }
                Event::Submit { repetition, worker } => {
                    self.handle_submit(now, repetition, worker)?
                }
            }
            let view = MarketView {
                completed: &self.completed,
                published: &self.published,
                committed_units: self.committed_units,
                allocation: &self.allocation,
            };
            match controller.on_event(now, &event, &view) {
                ControlAction::Continue => {}
                ControlAction::Reallocate(next) => {
                    check_allocation_shape(self.task_set, &next)?;
                    if !next.all_positive() {
                        return Err(CoreError::invalid_argument(
                            "re-allocation must pay every repetition at least one unit".to_owned(),
                        ));
                    }
                    self.allocation = next;
                }
            }
        }

        // Every repetition is committed by completion time, so the committed
        // total is what the job actually paid.
        Ok(SimulationReport {
            records: std::mem::take(&mut self.records),
            task_count: self.task_set.len(),
            total_payment: self.committed_units,
            events_processed: self.queue.processed_count(),
        })
    }

    fn handle_publish(&mut self, now: SimTime, rep: RepetitionId) -> Result<()> {
        self.publish_times.insert(rep, now);
        let payment = self.payment_of(rep);
        self.committed.insert(rep, payment);
        self.committed_units += payment;
        self.published[rep.task] += 1;
        match self.config.mode {
            MarketMode::IndependentRates => {
                let rate = self.on_hold_rate_for(rep, now)?;
                let delay = self.sample_exponential(rate)?;
                self.queue.schedule(
                    now.after(delay),
                    Event::Accept {
                        repetition: rep,
                        worker: None,
                    },
                );
            }
            MarketMode::WorkerPool(_) => {
                self.posted.insert(rep, self.payment_of(rep));
            }
        }
        Ok(())
    }

    fn handle_worker_arrival(&mut self, now: SimTime) -> Result<()> {
        let MarketMode::WorkerPool(pool) = self.config.mode else {
            return Ok(());
        };
        // Schedule the next arrival first so the Poisson stream never stops
        // while work remains.
        let gap = self.sample_exponential(pool.arrival_rate)?;
        self.queue.schedule(now.after(gap), Event::WorkerArrival);

        if let Some(rep) = self.choose_repetition(&pool)? {
            self.posted.remove(&rep);
            let worker = WorkerId(self.next_worker);
            self.next_worker += 1;
            self.queue.schedule(
                now,
                Event::Accept {
                    repetition: rep,
                    worker: Some(worker),
                },
            );
        }
        Ok(())
    }

    /// Applies the worker's choice model to the currently posted repetitions.
    fn choose_repetition(&mut self, pool: &WorkerPoolConfig) -> Result<Option<RepetitionId>> {
        if self.posted.is_empty() {
            return Ok(None);
        }
        // Best-paying posted repetition, ties broken by id for determinism.
        let (&best_rep, &best_payment) = self
            .posted
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .expect("posted is non-empty");
        let accept = match pool.choice {
            ChoiceModel::BestPaying => true,
            ChoiceModel::PriceProbability { scale } => {
                let probability = (best_payment as f64 * scale).clamp(0.0, 1.0);
                self.rng.gen::<f64>() < probability
            }
            ChoiceModel::ReservationWage { mean_wage } => {
                if !(mean_wage.is_finite() && mean_wage > 0.0) {
                    return Err(CoreError::invalid_argument(format!(
                        "mean reservation wage must be positive, got {mean_wage}"
                    )));
                }
                let wage = Exponential::new(1.0 / mean_wage)?.sample(&mut self.rng);
                best_payment as f64 >= wage
            }
        };
        Ok(accept.then_some(best_rep))
    }

    fn handle_accept(
        &mut self,
        now: SimTime,
        rep: RepetitionId,
        worker: Option<WorkerId>,
    ) -> Result<()> {
        self.accept_times.insert(rep, now);
        let delay = if self.config.include_processing {
            let rate = self.processing_rate_for(rep)?;
            self.sample_exponential(rate)?
        } else {
            0.0
        };
        self.queue.schedule(
            now.after(delay),
            Event::Submit {
                repetition: rep,
                worker,
            },
        );
        Ok(())
    }

    fn handle_submit(
        &mut self,
        now: SimTime,
        rep: RepetitionId,
        worker: Option<WorkerId>,
    ) -> Result<()> {
        let published = *self
            .publish_times
            .get(&rep)
            .ok_or_else(|| CoreError::invalid_argument("submit for unpublished repetition"))?;
        let accepted = *self
            .accept_times
            .get(&rep)
            .ok_or_else(|| CoreError::invalid_argument("submit for unaccepted repetition"))?;
        self.records.push(RepetitionRecord {
            id: rep,
            payment: self.payment_of(rep),
            published,
            accepted,
            submitted: now,
            worker,
        });
        self.remaining -= 1;
        self.completed[rep.task] += 1;

        // Sequential repetitions: the next answer round starts once this one
        // is returned.
        if self.config.sequential_repetitions {
            let task = &self.task_set.tasks()[rep.task];
            let next = rep.repetition + 1;
            if next < task.repetitions {
                self.queue
                    .schedule(now, Event::Publish(RepetitionId::new(rep.task, next)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::Payment;
    use crowdtune_core::rate::LinearRate;

    fn simple_set(tasks: usize, reps: u32, lp: f64) -> TaskSet {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", lp).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        set
    }

    #[test]
    fn rejects_mismatched_allocation() {
        let set = simple_set(2, 2, 1.0);
        let sim = MarketSimulator::new(MarketConfig::independent(1));
        let bad = Allocation::uniform(&[2], Payment::units(1));
        assert!(sim.run(&set, &bad, &LinearRate::unit_slope()).is_err());
        let bad_reps = Allocation::uniform(&[2, 3], Payment::units(1));
        assert!(sim.run(&set, &bad_reps, &LinearRate::unit_slope()).is_err());
        assert!(sim
            .mean_job_latency(&set, &bad, &LinearRate::unit_slope(), 0)
            .is_err());
    }

    #[test]
    fn independent_mode_completes_every_repetition() {
        let set = simple_set(4, 3, 2.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(7));
        let report = sim.run(&set, &alloc, &LinearRate::unit_slope()).unwrap();
        assert!(report.is_complete(&set.repetition_counts()));
        assert_eq!(report.records.len(), 12);
        assert_eq!(report.total_payment, 24);
        assert!(report.job_latency() > 0.0);
        // Every record respects publish <= accept <= submit.
        for r in &report.records {
            assert!(r.on_hold_latency() >= 0.0);
            assert!(r.processing_latency() >= 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let set = simple_set(3, 2, 1.5);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(3));
        let model = LinearRate::unit_slope();
        let a = MarketSimulator::new(MarketConfig::independent(5))
            .run(&set, &alloc, &model)
            .unwrap();
        let b = MarketSimulator::new(MarketConfig::independent(5))
            .run(&set, &alloc, &model)
            .unwrap();
        assert_eq!(a, b);
        let c = MarketSimulator::new(MarketConfig::independent(6))
            .run(&set, &alloc, &model)
            .unwrap();
        assert_ne!(a.job_latency(), c.job_latency());
    }

    #[test]
    fn sequential_repetitions_do_not_overlap() {
        let set = simple_set(1, 4, 2.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(11));
        let report = sim.run(&set, &alloc, &LinearRate::unit_slope()).unwrap();
        let records = report.task_records(0);
        assert_eq!(records.len(), 4);
        for pair in records.windows(2) {
            // the next repetition is published exactly when the previous one
            // is submitted
            assert!(pair[1].published >= pair[0].submitted);
        }
    }

    #[test]
    fn parallel_repetitions_all_publish_at_time_zero() {
        let set = simple_set(2, 3, 2.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(3).with_parallel_repetitions());
        let report = sim.run(&set, &alloc, &LinearRate::unit_slope()).unwrap();
        assert!(report.records.iter().all(|r| r.published == SimTime::ZERO));
    }

    #[test]
    fn disabling_processing_gives_zero_phase2() {
        let set = simple_set(2, 2, 0.5);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(9).without_processing());
        let report = sim.run(&set, &alloc, &LinearRate::unit_slope()).unwrap();
        assert!(report
            .processing_latencies()
            .iter()
            .all(|&d| d.abs() < 1e-12));
    }

    #[test]
    fn empirical_mean_matches_analytic_for_single_task() {
        // One task, one repetition: E[L] = 1/λo + 1/λp.
        let set = simple_set(1, 1, 2.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(4));
        let model = LinearRate::new(1.0, 0.0).unwrap(); // λo = payment = 4
        let sim = MarketSimulator::new(MarketConfig::independent(123));
        let mean = sim.mean_job_latency(&set, &alloc, &model, 20_000).unwrap();
        let expected = 0.25 + 0.5;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn on_hold_only_mean_matches_harmonic_formula() {
        // n parallel single-rep tasks: E[max on-hold] = H_n / λo.
        let set = simple_set(5, 1, 10.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(3));
        let model = LinearRate::new(1.0, 0.0).unwrap(); // λo = 3
        let sim = MarketSimulator::new(MarketConfig::independent(55).without_processing());
        let mean = sim
            .mean_on_hold_latency(&set, &alloc, &model, 20_000)
            .unwrap();
        let expected = crowdtune_core::stats::harmonic(5) / 3.0;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn worker_pool_mode_completes_and_tracks_workers() {
        let set = simple_set(3, 2, 1.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(10));
        let pool = WorkerPoolConfig {
            arrival_rate: 2.0,
            choice: ChoiceModel::BestPaying,
        };
        let sim = MarketSimulator::new(MarketConfig::worker_pool(17, pool));
        let report = sim.run(&set, &alloc, &LinearRate::unit_slope()).unwrap();
        assert!(report.is_complete(&set.repetition_counts()));
        assert!(report.records.iter().all(|r| r.worker.is_some()));
    }

    #[test]
    fn worker_pool_effective_rate_tracks_acceptance_probability() {
        // With arrival rate Λ and acceptance probability p, the acceptance
        // epochs of a single posted task follow Exp(Λ·p): the mean on-hold
        // latency of a 1-task job should be ≈ 1/(Λ·p).
        let set = simple_set(1, 1, 100.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(5));
        let pool = WorkerPoolConfig {
            arrival_rate: 1.0,
            choice: ChoiceModel::PriceProbability { scale: 0.1 }, // p = 0.5
        };
        let sim = MarketSimulator::new(MarketConfig::worker_pool(31, pool).without_processing());
        let reports = sim
            .run_many(&set, &alloc, &LinearRate::unit_slope(), 5_000)
            .unwrap();
        let mean: f64 = reports
            .iter()
            .map(|r| r.records[0].on_hold_latency())
            .sum::<f64>()
            / reports.len() as f64;
        let expected = 1.0 / (1.0 * 0.5);
        assert!(
            (mean - expected).abs() / expected < 0.06,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn higher_payment_attracts_workers_first_in_pool_mode() {
        // Two single-rep tasks with very different payments: the richer task
        // should be accepted earlier on average.
        let set = simple_set(2, 1, 10.0);
        let alloc =
            Allocation::from_matrix(vec![vec![Payment::units(1)], vec![Payment::units(20)]]);
        let pool = WorkerPoolConfig {
            arrival_rate: 1.0,
            choice: ChoiceModel::ReservationWage { mean_wage: 5.0 },
        };
        let sim = MarketSimulator::new(MarketConfig::worker_pool(71, pool).without_processing());
        let reports = sim
            .run_many(&set, &alloc, &LinearRate::unit_slope(), 2_000)
            .unwrap();
        let mut mean_poor = 0.0;
        let mut mean_rich = 0.0;
        for report in &reports {
            for r in &report.records {
                if r.id.task == 0 {
                    mean_poor += r.on_hold_latency();
                } else {
                    mean_rich += r.on_hold_latency();
                }
            }
        }
        assert!(
            mean_rich < mean_poor,
            "rich task should be picked up faster ({mean_rich} vs {mean_poor})"
        );
    }

    #[test]
    fn event_budget_guard_detects_stuck_markets() {
        let set = simple_set(1, 1, 1.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(1));
        // Acceptance probability 0: no worker ever takes the task.
        let pool = WorkerPoolConfig {
            arrival_rate: 10.0,
            choice: ChoiceModel::PriceProbability { scale: 0.0 },
        };
        let mut config = MarketConfig::worker_pool(1, pool);
        config.max_events = 1_000;
        let sim = MarketSimulator::new(config);
        let err = sim
            .run(&set, &alloc, &LinearRate::unit_slope())
            .unwrap_err();
        assert!(err.to_string().contains("event budget"));
    }

    #[test]
    fn controller_observes_every_event() {
        let set = simple_set(3, 2, 1.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(13));
        let mut seen = 0u64;
        let mut submits = 0u32;
        let report = sim
            .run_controlled(
                &set,
                &alloc,
                &LinearRate::unit_slope(),
                &mut |_t: SimTime, event: &Event, view: &MarketView<'_>| {
                    seen += 1;
                    if matches!(event, Event::Submit { .. }) {
                        submits += 1;
                        assert_eq!(view.completed.iter().sum::<u32>(), submits);
                    }
                },
            )
            .unwrap();
        assert_eq!(seen, report.events_processed);
        assert_eq!(submits, 6);
    }

    #[test]
    fn reallocation_affects_only_unpublished_repetitions() {
        // Sequential mode: one task, 4 repetitions published one after
        // another. After the first submit the controller bumps every payment
        // to 9 units; the already-committed first repetition must keep its
        // original payment.
        let set = simple_set(1, 4, 2.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(21));
        struct Bump {
            done: bool,
        }
        impl MarketController for Bump {
            fn on_event(
                &mut self,
                _time: SimTime,
                event: &Event,
                view: &MarketView<'_>,
            ) -> ControlAction {
                if !self.done && matches!(event, Event::Submit { .. }) {
                    self.done = true;
                    assert_eq!(view.published, &[1]);
                    assert_eq!(view.committed_units, 2);
                    let next = Allocation::uniform(&[4], Payment::units(9));
                    return ControlAction::Reallocate(next);
                }
                ControlAction::Continue
            }
        }
        let report = sim
            .run_controlled(
                &set,
                &alloc,
                &LinearRate::unit_slope(),
                &mut Bump { done: false },
            )
            .unwrap();
        let records = report.task_records(0);
        assert_eq!(records[0].payment, 2, "committed payment must not change");
        for record in &records[1..] {
            assert_eq!(record.payment, 9, "later publishes use the new allocation");
        }
        assert_eq!(report.total_payment, 2 + 3 * 9);
    }

    #[test]
    fn invalid_reallocation_is_rejected() {
        let set = simple_set(2, 2, 1.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(2));
        let sim = MarketSimulator::new(MarketConfig::independent(3));
        let mut first = true;
        struct BadShape<'a>(&'a mut bool);
        impl MarketController for BadShape<'_> {
            fn on_event(
                &mut self,
                _time: SimTime,
                _event: &Event,
                _view: &MarketView<'_>,
            ) -> ControlAction {
                if *self.0 {
                    *self.0 = false;
                    return ControlAction::Reallocate(Allocation::uniform(&[2], Payment::units(1)));
                }
                ControlAction::Continue
            }
        }
        assert!(sim
            .run_controlled(
                &set,
                &alloc,
                &LinearRate::unit_slope(),
                &mut BadShape(&mut first)
            )
            .is_err());
    }

    #[test]
    fn drifting_market_slows_repetitions_published_after_the_switch() {
        use crate::control::PiecewiseRate;
        use std::sync::Arc;

        // Sequential repetitions of a single task; the market collapses from
        // λo = payment to λo = payment/20 at t = 0 (effectively: all but the
        // cheap pre-switch publishes land in the slow regime). Compare mean
        // on-hold latency of the first repetition (published at t = 0, fast
        // regime boundary) against later ones.
        let set = simple_set(1, 2, 50.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(4));
        let fast = Arc::new(LinearRate::new(1.0, 0.0).unwrap());
        let slow = Arc::new(LinearRate::new(0.05, 0.0).unwrap());
        let mut first_total = 0.0;
        let mut second_total = 0.0;
        let trials = 2_000;
        for seed in 0..trials {
            let market = PiecewiseRate::new(fast.clone()).switch_at(1e-9, slow.clone());
            let sim = MarketSimulator::new(MarketConfig::independent(seed).without_processing());
            let report = sim
                .run_controlled(&set, &alloc, &market, &mut NoopController)
                .unwrap();
            let records = report.task_records(0);
            first_total += records[0].on_hold_latency();
            second_total += records[1].on_hold_latency();
        }
        let first_mean = first_total / trials as f64;
        let second_mean = second_total / trials as f64;
        // First publish at exactly t = 0 uses the fast regime (1/4 mean);
        // the second publishes strictly later in the slow regime (5.0 mean).
        assert!(
            second_mean > first_mean * 5.0,
            "drift must slow the later repetition: {first_mean} vs {second_mean}"
        );
    }

    #[test]
    fn invalid_reservation_wage_is_rejected() {
        let set = simple_set(1, 1, 1.0);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(1));
        let pool = WorkerPoolConfig {
            arrival_rate: 1.0,
            choice: ChoiceModel::ReservationWage { mean_wage: 0.0 },
        };
        let sim = MarketSimulator::new(MarketConfig::worker_pool(1, pool));
        assert!(sim.run(&set, &alloc, &LinearRate::unit_slope()).is_err());
    }
}

//! The discrete-event queue driving the marketplace simulation.
//!
//! Events are processed in time order; ties are broken by insertion order so
//! runs are fully deterministic for a given seed.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies one repetition of one task within a simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RepetitionId {
    /// Index of the task in the task set (task order).
    pub task: usize,
    /// Zero-based repetition index within the task.
    pub repetition: u32,
}

impl RepetitionId {
    /// Creates a repetition id.
    pub fn new(task: usize, repetition: u32) -> Self {
        RepetitionId { task, repetition }
    }
}

/// Identifier of a simulated worker (worker-pool mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

/// The kinds of events the simulator processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A task repetition is published to the market and starts its on-hold
    /// phase.
    Publish(RepetitionId),
    /// A worker arrives at the marketplace (worker-pool mode).
    WorkerArrival,
    /// A posted repetition is accepted; in independent-rates mode this is
    /// scheduled directly from the exponential acceptance delay.
    Accept {
        /// The repetition being accepted.
        repetition: RepetitionId,
        /// The accepting worker, if the simulation tracks individual workers.
        worker: Option<WorkerId>,
    },
    /// The answer for a repetition is submitted back to the requester.
    Submit {
        /// The repetition being completed.
        repetition: RepetitionId,
        /// The worker who completed it, if tracked.
        worker: Option<WorkerId>,
    },
}

/// An event bound to a point on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScheduledEvent {
    time: SimTime,
    sequence: u64,
    event: Event,
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion sequence for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_sequence: u64,
    scheduled: u64,
    processed: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.scheduled += 1;
        self.heap.push(ScheduledEvent {
            time,
            sequence,
            event,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| {
            self.processed += 1;
            (s.time, s.event)
        })
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled so far (used as a runaway guard).
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events processed so far.
    pub fn processed_count(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), Event::WorkerArrival);
        q.schedule(SimTime::new(1.0), Event::Publish(RepetitionId::new(0, 0)));
        q.schedule(SimTime::new(2.0), Event::Publish(RepetitionId::new(1, 0)));
        assert_eq!(q.len(), 3);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::new(1.0));
        assert_eq!(e1, Event::Publish(RepetitionId::new(0, 0)));
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::new(2.0));
        let (t3, e3) = q.pop().unwrap();
        assert_eq!(t3, SimTime::new(3.0));
        assert_eq!(e3, Event::WorkerArrival);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.processed_count(), 3);
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        for task in 0..5 {
            q.schedule(
                SimTime::new(1.0),
                Event::Publish(RepetitionId::new(task, 0)),
            );
        }
        for task in 0..5 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::Publish(RepetitionId::new(task, 0)));
        }
    }

    #[test]
    fn repetition_id_ordering() {
        let a = RepetitionId::new(0, 1);
        let b = RepetitionId::new(1, 0);
        assert!(a < b);
        assert_eq!(RepetitionId::new(2, 3), RepetitionId::new(2, 3));
    }

    #[test]
    fn queue_counts_survive_interleaved_use() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), Event::WorkerArrival);
        let _ = q.pop();
        q.schedule(SimTime::new(2.0), Event::WorkerArrival);
        q.schedule(SimTime::new(0.5), Event::WorkerArrival);
        // Later-scheduled but earlier-timed event pops first.
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(0.5));
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.processed_count(), 2);
        assert_eq!(q.len(), 1);
    }
}

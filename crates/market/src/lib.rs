//! # crowdtune-market
//!
//! A discrete-event simulator of a crowdsourcing marketplace, the substrate
//! that stands in for the live Amazon Mechanical Turk workforce used in the
//! evaluation of *"Tuning Crowdsourced Human Computation"* (ICDE 2017).
//!
//! The paper models the market as follows (Section 3): workers arrive as a
//! Poisson process; an arriving worker accepts a posted task with a
//! price-dependent probability, so the acceptance (on-hold) time of a task is
//! exponential with joint rate `λo(c)`; the subsequent processing time is
//! exponential with a rate `λp` determined by the task's difficulty and
//! independent of the payment. This crate simulates that mechanism at two
//! levels of fidelity:
//!
//! * **independent-rates mode** samples each repetition's on-hold delay
//!   directly from `Exp(λo(payment))` — the exact abstraction the tuning
//!   analysis assumes;
//! * **worker-pool mode** simulates the explicit Poisson worker stream with a
//!   configurable choice model, letting the exponential acceptance behaviour
//!   *emerge* — this is the mode used to replay the paper's AMT experiments
//!   (Figures 3–5).
//!
//! ```
//! use crowdtune_core::prelude::*;
//! use crowdtune_market::{MarketConfig, MarketSimulator};
//!
//! let mut tasks = TaskSet::new();
//! let vote = tasks.add_type("pairwise vote", 2.0).unwrap();
//! tasks.add_tasks(vote, 3, 5).unwrap();
//! let allocation = Allocation::uniform(&tasks.repetition_counts(), Payment::units(2));
//!
//! let simulator = MarketSimulator::new(MarketConfig::independent(42));
//! let report = simulator
//!     .run(&tasks, &allocation, &LinearRate::unit_slope())
//!     .unwrap();
//! assert!(report.is_complete(&tasks.repetition_counts()));
//! println!("job finished after {:.2} simulated seconds", report.job_latency());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod config;
pub mod control;
pub mod events;
pub mod metrics;
pub mod registry;
pub mod simulator;
pub mod time;

pub use config::{ChoiceModel, MarketConfig, MarketMode, WorkerPoolConfig};
pub use control::{ControlAction, MarketController, MarketRate, MarketView, PiecewiseRate};
pub use events::{Event, EventQueue, RepetitionId, WorkerId};
pub use metrics::{RepetitionRecord, SimulationReport};
pub use registry::{DriftConfig, DriftEvidence, DriftWindow, MarketRegistry};
pub use simulator::MarketSimulator;
pub use time::SimTime;

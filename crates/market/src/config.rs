//! Simulation configuration: market mode, worker-choice model and run limits.
//!
//! Two simulation modes are provided:
//!
//! * [`MarketMode::IndependentRates`] — each posted repetition is accepted
//!   after an `Exp(λo(payment))` delay, exactly the abstraction the paper's
//!   analysis uses (Section 3.1.2 collapses worker arrivals and task
//!   preference into a single joint rate `λ·p(c)`). This mode is the fastest
//!   and is what the synthetic experiments of Figure 2 use.
//! * [`MarketMode::WorkerPool`] — an explicit Poisson stream of workers who
//!   inspect the currently posted repetitions and choose according to a
//!   utility-based [`ChoiceModel`]. This mode reproduces the *mechanism* that
//!   justifies the exponential model and is used for the AMT-replay
//!   experiments (Figures 3–5), where the joint acceptance rate emerges from
//!   worker behaviour rather than being specified directly.

use serde::{Deserialize, Serialize};

/// How an arriving worker decides which posted repetition (if any) to take.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChoiceModel {
    /// The worker always takes the highest-paying posted repetition.
    /// The joint acceptance rate is then simply the worker arrival rate for
    /// the best-paying task.
    BestPaying,
    /// The worker considers the highest-paying posted repetition and accepts
    /// it with probability `min(1, price · scale)`; otherwise she leaves.
    /// With arrival rate `Λ` this reproduces the paper's joint rate
    /// `λo(c) = Λ · p(c)` with `p(c) = min(1, c·scale)`.
    PriceProbability {
        /// Probability of acceptance per payment unit.
        scale: f64,
    },
    /// The worker has a private reservation wage drawn from an exponential
    /// distribution with the given mean; she takes the best-paying posted
    /// repetition whose payment meets or exceeds her wage, if any.
    ReservationWage {
        /// Mean reservation wage in payment units.
        mean_wage: f64,
    },
}

impl Default for ChoiceModel {
    fn default() -> Self {
        ChoiceModel::PriceProbability { scale: 0.05 }
    }
}

/// Configuration of the explicit worker-pool mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerPoolConfig {
    /// Poisson arrival rate of workers (workers per second).
    pub arrival_rate: f64,
    /// How arriving workers choose tasks.
    pub choice: ChoiceModel,
}

impl Default for WorkerPoolConfig {
    fn default() -> Self {
        WorkerPoolConfig {
            arrival_rate: 0.05,
            choice: ChoiceModel::default(),
        }
    }
}

/// Which acceptance mechanism the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MarketMode {
    /// Sample each repetition's on-hold delay directly from
    /// `Exp(λo(payment))` using the problem's rate model.
    #[default]
    IndependentRates,
    /// Simulate an explicit Poisson worker stream with a choice model.
    WorkerPool(WorkerPoolConfig),
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Acceptance mechanism.
    pub mode: MarketMode,
    /// RNG seed; every run with the same seed, inputs and configuration is
    /// bit-for-bit reproducible.
    pub seed: u64,
    /// Whether to simulate the processing phase (phase 2). Disabling it
    /// reproduces the phase-1-only objectives of Scenarios I and II.
    pub include_processing: bool,
    /// Whether repetitions of one task run sequentially (the paper's model:
    /// answers are "submitted one after another"). When `false`, all
    /// repetitions of every task are posted at time zero in parallel.
    pub sequential_repetitions: bool,
    /// Hard cap on processed events, guarding against configurations where
    /// tasks can never be accepted (e.g. a worker pool whose choice model
    /// rejects every price).
    pub max_events: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            mode: MarketMode::IndependentRates,
            seed: 42,
            include_processing: true,
            sequential_repetitions: true,
            max_events: 10_000_000,
        }
    }
}

impl MarketConfig {
    /// Independent-rates configuration with the given seed.
    pub fn independent(seed: u64) -> Self {
        MarketConfig {
            seed,
            ..MarketConfig::default()
        }
    }

    /// Worker-pool configuration with the given seed and pool parameters.
    pub fn worker_pool(seed: u64, pool: WorkerPoolConfig) -> Self {
        MarketConfig {
            mode: MarketMode::WorkerPool(pool),
            seed,
            ..MarketConfig::default()
        }
    }

    /// Returns a copy with the processing phase disabled.
    #[must_use]
    pub fn without_processing(mut self) -> Self {
        self.include_processing = false;
        self
    }

    /// Returns a copy with parallel (non-sequential) repetitions.
    #[must_use]
    pub fn with_parallel_repetitions(mut self) -> Self {
        self.sequential_repetitions = false;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = MarketConfig::default();
        assert_eq!(config.mode, MarketMode::IndependentRates);
        assert!(config.include_processing);
        assert!(config.sequential_repetitions);
        assert!(config.max_events > 1_000);
        assert_eq!(
            ChoiceModel::default(),
            ChoiceModel::PriceProbability { scale: 0.05 }
        );
        let pool = WorkerPoolConfig::default();
        assert!(pool.arrival_rate > 0.0);
    }

    #[test]
    fn builder_helpers() {
        let config = MarketConfig::independent(7)
            .without_processing()
            .with_parallel_repetitions()
            .with_seed(9);
        assert_eq!(config.seed, 9);
        assert!(!config.include_processing);
        assert!(!config.sequential_repetitions);

        let pool = WorkerPoolConfig {
            arrival_rate: 0.2,
            choice: ChoiceModel::BestPaying,
        };
        let config = MarketConfig::worker_pool(3, pool);
        match config.mode {
            MarketMode::WorkerPool(p) => {
                assert!((p.arrival_rate - 0.2).abs() < 1e-12);
                assert_eq!(p.choice, ChoiceModel::BestPaying);
            }
            other => panic!("unexpected mode {other:?}"),
        }
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = MarketConfig::worker_pool(
            11,
            WorkerPoolConfig {
                arrival_rate: 0.4,
                choice: ChoiceModel::ReservationWage { mean_wage: 5.0 },
            },
        );
        let json = serde_json::to_string(&config).unwrap();
        let back: MarketConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}

//! The market registry: one controller, one rate belief, one drift estimator
//! per federated marketplace.
//!
//! The paper tunes every job against a single marketplace whose price →
//! on-hold-rate curve `λo(c)` is estimated once (§3.3) and drifts over time.
//! A federated deployment straddles several marketplaces with *independent*
//! regimes: AMT may speed up while an internal workforce slows down. The
//! [`MarketRegistry`] owns the per-market state the serving layer needs:
//!
//! * a **rate belief** — the `Arc<dyn RateModel>` jobs on that market are
//!   tuned against (swappable at runtime when drift is confirmed);
//! * a **drift estimator** — a *sliding-window* censored exponential MLE
//!   ([`DriftWindow`]). Unlike an unbounded accumulator, a bounded window
//!   lets a regime switch *un-mix*: once pre-switch observations age out,
//!   the estimate converges on the new regime instead of averaging both
//!   forever;
//! * an optional **controller** slot — a [`MarketController`] consulted by
//!   simulations running against this market;
//! * a **probe planner** — §3.3.1's active probing: after confirmed drift
//!   the registry proposes off-plan probe HITs ([`ProbePlan`]) spanning the
//!   observed price range, and [`MarketRegistry::relearn`] refits the
//!   linearity hypothesis from the campaign results and installs the new
//!   belief.
//!
//! The set of markets is fixed at construction. That keeps every downstream
//! label set bounded (telemetry exports one histogram family per market) and
//! lets the serving layer reject jobs naming unknown markets at admission.

use crate::control::{ControlAction, MarketController, MarketView, NoopController};
use crate::events::Event;
use crate::time::SimTime;
use crowdtune_core::inference::{ProbeCampaign, ProbePlan};
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::{CoreError, MarketId, Result};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Tuning knobs of the sliding-window drift detector.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Maximum acceptance observations retained *per price point*. Oldest
    /// observations are evicted first, so after a regime switch the window
    /// fully turns over within `window` acceptances at that price.
    pub window: usize,
    /// Minimum observations at a price before its estimate participates in
    /// drift detection.
    pub min_observations: usize,
    /// How many standard errors the observed rate must sit away from the
    /// belief before drift is confirmed (the MLE's asymptotic standard error
    /// is `λ̂/√n`).
    pub significance_z: f64,
    /// Minimum relative discrepancy `|observed − believed| / believed` —
    /// guards against statistically-significant-but-tiny drift on large
    /// windows.
    pub relative_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 64,
            min_observations: 8,
            significance_z: 3.0,
            relative_threshold: 0.25,
        }
    }
}

/// Sliding-window censored exponential MLE of the on-hold rate, one window
/// per observed price point.
///
/// The estimator is the standard censored-exponential MLE (Appendix A of the
/// paper): `λ̂ = events / (Σ accepted delays + Σ pending exposures)`. Both
/// the accepted delays and the pending exposures are bounded per price: the
/// window keeps the most recent [`DriftConfig::window`] acceptances, and
/// pending exposure is *replaced* (not accumulated) on every report, since
/// it describes the currently-open repetitions.
#[derive(Debug, Default)]
pub struct DriftWindow {
    /// Per price: most recent accepted on-hold delays, oldest first.
    accepted: Vec<(u64, VecDeque<f64>)>,
    /// Per price: current censored exposure (open repetitions' elapsed
    /// waiting time). Replaced wholesale by [`DriftWindow::set_pending`].
    pending: Vec<(u64, f64)>,
}

impl DriftWindow {
    /// Records one accepted repetition: on-hold delay `delay` at `price`.
    pub fn push(&mut self, price: u64, delay: f64, window: usize) {
        if !(delay.is_finite() && delay >= 0.0) {
            return;
        }
        let deque = match self.accepted.iter_mut().find(|(p, _)| *p == price) {
            Some((_, deque)) => deque,
            None => {
                self.accepted.push((price, VecDeque::new()));
                &mut self.accepted.last_mut().expect("just pushed").1
            }
        };
        deque.push_back(delay);
        while deque.len() > window.max(1) {
            deque.pop_front();
        }
    }

    /// Replaces the censored exposure at `price`: total elapsed waiting time
    /// of repetitions published at that price and not yet accepted.
    pub fn set_pending(&mut self, price: u64, exposure: f64) {
        if !(exposure.is_finite() && exposure >= 0.0) {
            return;
        }
        match self.pending.iter_mut().find(|(p, _)| *p == price) {
            Some((_, e)) => *e = exposure,
            None => self.pending.push((price, exposure)),
        }
    }

    /// The censored MLE at `price` over the current window, with the event
    /// count backing it: `(rate, events)`. `None` until at least one
    /// acceptance was observed and the total exposure is positive.
    pub fn estimate(&self, price: u64) -> Option<(f64, usize)> {
        let accepted = self
            .accepted
            .iter()
            .find(|(p, _)| *p == price)
            .map(|(_, d)| d)?;
        let events = accepted.len();
        let exposure: f64 = accepted.iter().sum::<f64>()
            + self
                .pending
                .iter()
                .find(|(p, _)| *p == price)
                .map(|(_, e)| *e)
                .unwrap_or(0.0);
        if events == 0 || exposure <= 0.0 {
            return None;
        }
        Some((events as f64 / exposure, events))
    }

    /// Prices with at least one accepted observation, ascending.
    pub fn observed_prices(&self) -> Vec<u64> {
        let mut prices: Vec<u64> = self.accepted.iter().map(|(p, _)| *p).collect();
        prices.sort_unstable();
        prices
    }

    /// Drops every observation — called after a probe campaign installs a
    /// fresh belief, so the next drift check starts from the new regime.
    pub fn clear(&mut self) {
        self.accepted.clear();
        self.pending.clear();
    }
}

/// One price point where the window's estimate contradicts the belief.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvidence {
    /// The payment in budget units.
    pub price: u64,
    /// Windowed censored-MLE estimate of the on-hold rate at that price.
    pub observed: f64,
    /// What the current belief predicts at that price.
    pub believed: f64,
    /// Number of acceptances backing the estimate.
    pub events: usize,
}

/// Everything the registry tracks for one marketplace.
struct MarketEntry {
    id: MarketId,
    name: String,
    belief: Mutex<Arc<dyn RateModel>>,
    drift: Mutex<DriftWindow>,
    controller: Mutex<Box<dyn MarketController + Send>>,
}

/// The static set of federated marketplaces and their per-market state.
///
/// Construction fixes the member markets; everything else (beliefs, drift
/// windows, controllers) is interior-mutable behind per-market locks, so the
/// registry is shared as an `Arc<MarketRegistry>` across the serving layer,
/// the router and simulations.
pub struct MarketRegistry {
    entries: Vec<MarketEntry>,
    config: DriftConfig,
}

impl std::fmt::Debug for MarketRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarketRegistry")
            .field(
                "markets",
                &self
                    .entries
                    .iter()
                    .map(|e| (e.id, e.name.as_str()))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MarketRegistry {
    /// A registry over the given `(id, name, initial belief)` triples.
    /// Ids and names must be unique and non-empty.
    pub fn new(markets: Vec<(MarketId, String, Arc<dyn RateModel>)>) -> Result<Self> {
        Self::with_config(markets, DriftConfig::default())
    }

    /// [`MarketRegistry::new`] with explicit drift-detector knobs.
    pub fn with_config(
        markets: Vec<(MarketId, String, Arc<dyn RateModel>)>,
        config: DriftConfig,
    ) -> Result<Self> {
        if markets.is_empty() {
            return Err(CoreError::invalid_argument(
                "a market registry needs at least one market",
            ));
        }
        let mut entries = Vec::with_capacity(markets.len());
        for (id, name, belief) in markets {
            if name.is_empty() {
                return Err(CoreError::invalid_argument(
                    "market names must be non-empty",
                ));
            }
            let clash = entries
                .iter()
                .any(|e: &MarketEntry| e.id == id || e.name == name);
            if clash {
                return Err(CoreError::invalid_argument(format!(
                    "duplicate market id or name: {id} / {name}"
                )));
            }
            entries.push(MarketEntry {
                id,
                name,
                belief: Mutex::new(belief),
                drift: Mutex::new(DriftWindow::default()),
                controller: Mutex::new(Box::new(NoopController)),
            });
        }
        Ok(MarketRegistry { entries, config })
    }

    /// The single-market registry every pre-federation deployment maps onto:
    /// one default market named `"default"` with the given belief.
    pub fn single(belief: Arc<dyn RateModel>) -> Self {
        Self::new(vec![(MarketId::DEFAULT, "default".to_string(), belief)])
            .expect("a one-market registry is always valid")
    }

    /// The drift-detector configuration in force.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Number of member markets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no markets (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Member market ids, in registration order.
    pub fn markets(&self) -> Vec<MarketId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Whether `id` names a member market.
    pub fn contains(&self, id: MarketId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Registration-order index of `id`, if a member. Telemetry uses this to
    /// index bounded per-market label arrays.
    pub fn index_of(&self, id: MarketId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// Human-readable market name (telemetry label value), if a member.
    pub fn name_of(&self, id: MarketId) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.name.as_str())
    }

    /// Member market names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    fn entry(&self, id: MarketId) -> Result<&MarketEntry> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .ok_or_else(|| CoreError::invalid_argument(format!("unknown market {id}")))
    }

    /// The current rate belief for `id`.
    pub fn belief(&self, id: MarketId) -> Result<Arc<dyn RateModel>> {
        Ok(self.entry(id)?.belief.lock().expect("belief lock").clone())
    }

    /// Replaces the rate belief for `id` and resets its drift window (the
    /// window measured the *old* belief's residuals).
    pub fn set_belief(&self, id: MarketId, belief: Arc<dyn RateModel>) -> Result<()> {
        let entry = self.entry(id)?;
        *entry.belief.lock().expect("belief lock") = belief;
        entry.drift.lock().expect("drift lock").clear();
        Ok(())
    }

    /// Installs a controller for `id`, replacing the default no-op watcher.
    pub fn set_controller(
        &self,
        id: MarketId,
        controller: Box<dyn MarketController + Send>,
    ) -> Result<()> {
        *self.entry(id)?.controller.lock().expect("controller lock") = controller;
        Ok(())
    }

    /// Dispatches a simulation event to `id`'s controller.
    pub fn control(
        &self,
        id: MarketId,
        time: SimTime,
        event: &Event,
        view: &MarketView<'_>,
    ) -> Result<ControlAction> {
        Ok(self
            .entry(id)?
            .controller
            .lock()
            .expect("controller lock")
            .on_event(time, event, view))
    }

    /// Feeds one accepted repetition (on-hold delay `delay` at `price`) into
    /// `id`'s sliding drift window.
    pub fn observe_acceptance(&self, id: MarketId, price: u64, delay: f64) -> Result<()> {
        self.entry(id)?
            .drift
            .lock()
            .expect("drift lock")
            .push(price, delay, self.config.window);
        Ok(())
    }

    /// Replaces the censored exposure at `price` for `id` — the elapsed
    /// waiting time of currently-open repetitions at that price.
    pub fn observe_pending(&self, id: MarketId, price: u64, exposure: f64) -> Result<()> {
        self.entry(id)?
            .drift
            .lock()
            .expect("drift lock")
            .set_pending(price, exposure);
        Ok(())
    }

    /// Checks `id`'s window against its belief. Returns the price points
    /// whose windowed estimate is both statistically significant
    /// (`significance_z` standard errors) and practically large
    /// (`relative_threshold`) — empty means no confirmed drift.
    pub fn confirmed_drift(&self, id: MarketId) -> Result<Vec<DriftEvidence>> {
        let entry = self.entry(id)?;
        let belief = entry.belief.lock().expect("belief lock").clone();
        let window = entry.drift.lock().expect("drift lock");
        let mut evidence = Vec::new();
        for price in window.observed_prices() {
            let Some((observed, events)) = window.estimate(price) else {
                continue;
            };
            if events < self.config.min_observations {
                continue;
            }
            let believed = belief.on_hold_rate(price as f64);
            if !(believed.is_finite() && believed > 0.0) {
                continue;
            }
            let relative = (observed - believed).abs() / believed;
            // Asymptotic standard error of the exponential-rate MLE.
            let standard_error = observed / (events as f64).sqrt();
            let z = (observed - believed).abs() / standard_error;
            if relative >= self.config.relative_threshold && z >= self.config.significance_z {
                evidence.push(DriftEvidence {
                    price,
                    observed,
                    believed,
                    events,
                });
            }
        }
        Ok(evidence)
    }

    /// Proposes the §3.3.1 active-probe campaign for `id` after confirmed
    /// drift: off-plan probe HITs at a ladder of prices spanning the window's
    /// observed range (padded by one unit at each end to re-learn the curve
    /// *shape*, not just re-level the observed points), `tasks_per_price`
    /// repetitions each.
    pub fn probe_plan(&self, id: MarketId, tasks_per_price: u32) -> Result<ProbePlan> {
        let entry = self.entry(id)?;
        let observed = entry.drift.lock().expect("drift lock").observed_prices();
        let (lo, hi) = match (observed.first(), observed.last()) {
            (Some(&lo), Some(&hi)) => (lo.saturating_sub(1).max(1), hi + 1),
            _ => (1, 5),
        };
        let mut prices: Vec<u64> = observed;
        if !prices.contains(&lo) {
            prices.insert(0, lo);
        }
        if !prices.contains(&hi) {
            prices.push(hi);
        }
        ProbePlan::new(prices, tasks_per_price)
    }

    /// Refits the linearity hypothesis (§3.3.2) from a completed probe
    /// campaign, installs the fitted curve as `id`'s new belief, clears the
    /// drift window and returns the new belief.
    pub fn relearn(&self, id: MarketId, campaign: &ProbeCampaign) -> Result<Arc<dyn RateModel>> {
        let fitted: Arc<LinearRate> = Arc::new(campaign.fit_linearity()?.to_rate_model()?);
        let belief: Arc<dyn RateModel> = fitted;
        self.set_belief(id, belief.clone())?;
        Ok(belief)
    }
}

impl Default for MarketRegistry {
    /// A single default market believing the paper's unit-slope linear curve.
    fn default() -> Self {
        Self::single(Arc::new(LinearRate::unit_slope()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RepetitionId;
    use crowdtune_core::inference::PriceObservation;
    use crowdtune_core::money::{Allocation, Payment};

    fn two_markets() -> MarketRegistry {
        MarketRegistry::new(vec![
            (
                MarketId::DEFAULT,
                "amt".to_string(),
                Arc::new(LinearRate::unit_slope()),
            ),
            (
                MarketId(1),
                "prolific".to_string(),
                Arc::new(LinearRate::flat()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_rejects_duplicates_and_empty() {
        assert!(MarketRegistry::new(vec![]).is_err());
        let dup_id = MarketRegistry::new(vec![
            (
                MarketId(0),
                "a".to_string(),
                Arc::new(LinearRate::unit_slope()) as Arc<dyn RateModel>,
            ),
            (MarketId(0), "b".to_string(), Arc::new(LinearRate::flat())),
        ]);
        assert!(dup_id.is_err());
        let dup_name = MarketRegistry::new(vec![
            (
                MarketId(0),
                "a".to_string(),
                Arc::new(LinearRate::unit_slope()) as Arc<dyn RateModel>,
            ),
            (MarketId(1), "a".to_string(), Arc::new(LinearRate::flat())),
        ]);
        assert!(dup_name.is_err());
    }

    #[test]
    fn membership_and_lookup() {
        let registry = two_markets();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.markets(), vec![MarketId(0), MarketId(1)]);
        assert_eq!(registry.names(), vec!["amt", "prolific"]);
        assert_eq!(registry.name_of(MarketId(1)), Some("prolific"));
        assert_eq!(registry.index_of(MarketId(1)), Some(1));
        assert!(registry.contains(MarketId::DEFAULT));
        assert!(!registry.contains(MarketId(9)));
        assert!(registry.belief(MarketId(9)).is_err());
    }

    #[test]
    fn beliefs_swap_per_market() {
        let registry = two_markets();
        registry
            .set_belief(MarketId(1), Arc::new(LinearRate::steep()))
            .unwrap();
        let steep = registry.belief(MarketId(1)).unwrap();
        assert_eq!(
            steep.on_hold_rate(2.0),
            LinearRate::steep().on_hold_rate(2.0)
        );
        // The other market is untouched.
        let default = registry.belief(MarketId::DEFAULT).unwrap();
        assert_eq!(
            default.on_hold_rate(2.0),
            LinearRate::unit_slope().on_hold_rate(2.0)
        );
    }

    #[test]
    fn sliding_window_unmixes_a_regime_switch() {
        // Belief: unit slope, so rate 3.0 at price 2. The market switches to
        // a regime 4× faster (delays 1/12 at price 2). An unbounded
        // accumulator fed 64 pre-switch observations would need hundreds of
        // post-switch samples before the mixed estimate crosses the drift
        // threshold; the sliding window turns over after `window`
        // post-switch acceptances and must flag confirmed drift.
        let config = DriftConfig {
            window: 16,
            ..DriftConfig::default()
        };
        let registry = MarketRegistry::with_config(
            vec![(
                MarketId::DEFAULT,
                "amt".to_string(),
                Arc::new(LinearRate::unit_slope()),
            )],
            config,
        )
        .unwrap();
        let id = MarketId::DEFAULT;
        // Pre-switch: delays consistent with the belief (rate 3 ⇒ mean 1/3).
        for _ in 0..64 {
            registry.observe_acceptance(id, 2, 1.0 / 3.0).unwrap();
        }
        assert!(
            registry.confirmed_drift(id).unwrap().is_empty(),
            "on-belief observations must not flag drift"
        );
        // Post-switch: the market now accepts 4× faster.
        for _ in 0..16 {
            registry.observe_acceptance(id, 2, 1.0 / 12.0).unwrap();
        }
        let evidence = registry.confirmed_drift(id).unwrap();
        assert_eq!(evidence.len(), 1, "window must have fully turned over");
        assert_eq!(evidence[0].price, 2);
        assert!((evidence[0].observed - 12.0).abs() < 1e-9);
        assert!((evidence[0].believed - 3.0).abs() < 1e-12);
    }

    #[test]
    fn censored_exposure_tempers_the_estimate() {
        let registry = two_markets();
        let id = MarketId::DEFAULT;
        for _ in 0..64 {
            registry.observe_acceptance(id, 2, 0.1).unwrap();
        }
        // 64 events over 6.4s of accepted exposure alone: rate 10. Adding
        // 25.6s of pending (censored) exposure drops the MLE to
        // 64 / (6.4 + 25.6) = 2.0, which the drift check reports against the
        // belief of 3.0 (|2−3|/3 ≈ 0.33 relative, z = 4).
        registry.observe_pending(id, 2, 25.6).unwrap();
        let evidence = registry.confirmed_drift(id).unwrap();
        assert_eq!(evidence.len(), 1);
        assert!((evidence[0].observed - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probe_relearn_updates_the_belief() {
        let registry = two_markets();
        let id = MarketId(1);
        for _ in 0..8 {
            registry.observe_acceptance(id, 2, 0.05).unwrap();
            registry.observe_acceptance(id, 4, 0.02).unwrap();
        }
        let plan = registry.probe_plan(id, 3).unwrap();
        // Ladder spans the observed range padded by one unit.
        assert_eq!(plan.prices, vec![1, 2, 4, 5]);
        // A campaign whose observations follow λo(c) = 2c + 1 exactly:
        // n acceptance epochs over total time n/λ ⇒ MLE = λ.
        let observations = plan
            .prices
            .iter()
            .map(|&price| {
                let rate = 2.0 * price as f64 + 1.0;
                let epochs: Vec<f64> = (1..=20).map(|i| i as f64 / rate).collect();
                PriceObservation::new(price, epochs, vec![0.5; 20])
            })
            .collect();
        let campaign = ProbeCampaign::new(observations);
        let belief = registry.relearn(id, &campaign).unwrap();
        assert!((belief.on_hold_rate(3.0) - 7.0).abs() < 0.5);
        // Relearning cleared the window: no residual drift evidence.
        assert!(registry.confirmed_drift(id).unwrap().is_empty());
    }

    #[test]
    fn controllers_are_per_market() {
        let registry = two_markets();
        registry
            .set_controller(
                MarketId(1),
                Box::new(|_: SimTime, _: &Event, _: &MarketView<'_>| {}),
            )
            .unwrap();
        let allocation = Allocation::uniform(&[2], Payment::units(1));
        let view = MarketView {
            completed: &[0],
            published: &[1],
            committed_units: 1,
            allocation: &allocation,
        };
        let event = Event::Publish(RepetitionId::new(0, 0));
        let action = registry
            .control(MarketId(1), SimTime::new(1.0), &event, &view)
            .unwrap();
        assert!(matches!(action, ControlAction::Continue));
        assert!(registry
            .control(MarketId(9), SimTime::new(1.0), &event, &view)
            .is_err());
    }
}

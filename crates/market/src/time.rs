//! Simulation time.
//!
//! The simulator uses a continuous clock measured in seconds (an `f64`
//! wrapped in [`SimTime`]); event ordering requires a total order, so the
//! wrapper rejects NaN at construction and implements `Ord`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation clock, in seconds since the simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point. Panics on NaN (a NaN clock would corrupt the
    /// event queue ordering) — negative values are allowed so durations can
    /// be represented as differences.
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "simulation time must not be NaN");
        SimTime(seconds)
    }

    /// Seconds since the simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration from `earlier` to `self`, in seconds.
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// This time advanced by `seconds`.
    #[must_use]
    pub fn after(self, seconds: f64) -> SimTime {
        SimTime::new(self.0 + seconds)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is rejected at construction, so total_cmp and partial_cmp agree.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl From<f64> for SimTime {
    fn from(seconds: f64) -> Self {
        SimTime::new(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::new(2.5);
        assert!((t.as_secs() - 2.5).abs() < 1e-12);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::from(1.0), SimTime::new(1.0));
        assert_eq!(format!("{t}"), "t=2.500s");
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_is_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![SimTime::new(3.0), SimTime::new(1.0), SimTime::new(2.0)];
        times.sort();
        assert_eq!(
            times,
            vec![SimTime::new(1.0), SimTime::new(2.0), SimTime::new(3.0)]
        );
        assert!(SimTime::new(1.0) < SimTime::new(1.5));
        assert!(SimTime::new(-1.0) < SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(10.0);
        assert_eq!(t.after(5.0), SimTime::new(15.0));
        assert_eq!(t + 2.0, SimTime::new(12.0));
        let mut m = t;
        m += 1.5;
        assert_eq!(m, SimTime::new(11.5));
        assert!((SimTime::new(7.0) - SimTime::new(3.0) - 4.0).abs() < 1e-12);
        assert!((SimTime::new(7.0).since(SimTime::new(10.0)) + 3.0).abs() < 1e-12);
    }
}

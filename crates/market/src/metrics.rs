//! Simulation outputs: per-repetition timing records and job-level reports.
//!
//! Every repetition passes through the two phases defined in Section 3.2 of
//! the paper: it is **published**, later **accepted** by a worker (on-hold
//! phase), and finally **submitted** (processing phase). The report records
//! the three timestamps for every repetition, from which all figures of the
//! evaluation (arrival traces, per-phase latencies, job latency) are derived.

use crate::events::{RepetitionId, WorkerId};
use crate::time::SimTime;
use crowdtune_core::stats::RunningStats;
use serde::{Deserialize, Serialize};

/// The full timing record of one task repetition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepetitionRecord {
    /// Which repetition this record describes.
    pub id: RepetitionId,
    /// Payment promised for this repetition, in units.
    pub payment: u64,
    /// When the repetition was published.
    pub published: SimTime,
    /// When a worker accepted it.
    pub accepted: SimTime,
    /// When the answer was submitted.
    pub submitted: SimTime,
    /// The worker who completed it, when the simulation tracks workers.
    pub worker: Option<WorkerId>,
}

impl RepetitionRecord {
    /// On-hold latency (publish → accept).
    pub fn on_hold_latency(&self) -> f64 {
        self.accepted.since(self.published)
    }

    /// Processing latency (accept → submit).
    pub fn processing_latency(&self) -> f64 {
        self.submitted.since(self.accepted)
    }

    /// Overall latency (publish → submit).
    pub fn overall_latency(&self) -> f64 {
        self.submitted.since(self.published)
    }
}

/// The outcome of simulating one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimulationReport {
    /// Timing records for every repetition, in completion order.
    pub records: Vec<RepetitionRecord>,
    /// Number of tasks in the simulated job.
    pub task_count: usize,
    /// Total payment promised across all repetitions.
    pub total_payment: u64,
    /// Number of events the simulator processed.
    pub events_processed: u64,
}

impl SimulationReport {
    /// Completion time of a task: the submission time of its last repetition
    /// (tasks start at time zero, so this equals the task latency). Returns
    /// `None` if the task has no recorded repetitions.
    pub fn task_completion(&self, task: usize) -> Option<f64> {
        self.records
            .iter()
            .filter(|r| r.id.task == task)
            .map(|r| r.submitted.as_secs())
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// The job latency: the latest submission over all tasks (the maximum of
    /// the per-task latencies, Section 3.2.1).
    pub fn job_latency(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.submitted.as_secs())
            .fold(0.0, f64::max)
    }

    /// The job latency counting only the on-hold phases: the latest
    /// acceptance over all repetitions. Used for the phase-1-only scenarios.
    pub fn job_on_hold_latency(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.accepted.as_secs())
            .fold(0.0, f64::max)
    }

    /// Per-repetition on-hold latencies.
    pub fn on_hold_latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.on_hold_latency()).collect()
    }

    /// Per-repetition processing latencies.
    pub fn processing_latencies(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.processing_latency())
            .collect()
    }

    /// Acceptance epochs sorted ascending — the "worker arrival moments"
    /// trace of Figure 3.
    pub fn acceptance_epochs(&self) -> Vec<f64> {
        let mut epochs: Vec<f64> = self.records.iter().map(|r| r.accepted.as_secs()).collect();
        epochs.sort_by(|a, b| a.partial_cmp(b).expect("times are never NaN"));
        epochs
    }

    /// Summary statistics of the on-hold latencies.
    pub fn on_hold_stats(&self) -> RunningStats {
        let mut stats = RunningStats::new();
        stats.extend(self.records.iter().map(|r| r.on_hold_latency()));
        stats
    }

    /// Summary statistics of the processing latencies.
    pub fn processing_stats(&self) -> RunningStats {
        let mut stats = RunningStats::new();
        stats.extend(self.records.iter().map(|r| r.processing_latency()));
        stats
    }

    /// Records belonging to one task, sorted by repetition index.
    pub fn task_records(&self, task: usize) -> Vec<&RepetitionRecord> {
        let mut records: Vec<&RepetitionRecord> =
            self.records.iter().filter(|r| r.id.task == task).collect();
        records.sort_by_key(|r| r.id.repetition);
        records
    }

    /// Whether every repetition of every task completed.
    pub fn is_complete(&self, expected_repetitions: &[u32]) -> bool {
        if self.task_count != expected_repetitions.len() {
            return false;
        }
        expected_repetitions
            .iter()
            .enumerate()
            .all(|(task, &reps)| {
                self.records.iter().filter(|r| r.id.task == task).count() == reps as usize
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(task: usize, rep: u32, publish: f64, accept: f64, submit: f64) -> RepetitionRecord {
        RepetitionRecord {
            id: RepetitionId::new(task, rep),
            payment: 2,
            published: SimTime::new(publish),
            accepted: SimTime::new(accept),
            submitted: SimTime::new(submit),
            worker: None,
        }
    }

    fn sample_report() -> SimulationReport {
        SimulationReport {
            records: vec![
                record(0, 0, 0.0, 1.0, 2.0),
                record(0, 1, 2.0, 3.5, 4.0),
                record(1, 0, 0.0, 0.5, 3.0),
            ],
            task_count: 2,
            total_payment: 6,
            events_processed: 9,
        }
    }

    #[test]
    fn per_record_latencies() {
        let r = record(0, 0, 1.0, 2.5, 4.0);
        assert!((r.on_hold_latency() - 1.5).abs() < 1e-12);
        assert!((r.processing_latency() - 1.5).abs() < 1e-12);
        assert!((r.overall_latency() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn job_and_task_level_latencies() {
        let report = sample_report();
        assert!((report.task_completion(0).unwrap() - 4.0).abs() < 1e-12);
        assert!((report.task_completion(1).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(report.task_completion(7), None);
        assert!((report.job_latency() - 4.0).abs() < 1e-12);
        assert!((report.job_on_hold_latency() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn latency_vectors_and_stats() {
        let report = sample_report();
        assert_eq!(report.on_hold_latencies(), vec![1.0, 1.5, 0.5]);
        assert_eq!(report.processing_latencies(), vec![1.0, 0.5, 2.5]);
        assert_eq!(report.acceptance_epochs(), vec![0.5, 1.0, 3.5]);
        let stats = report.on_hold_stats();
        assert_eq!(stats.count(), 3);
        assert!((stats.mean().unwrap() - 1.0).abs() < 1e-12);
        assert!(report.processing_stats().mean().unwrap() > 0.0);
    }

    #[test]
    fn task_records_are_sorted_by_repetition() {
        let mut report = sample_report();
        report.records.swap(0, 1);
        let records = report.task_records(0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id.repetition, 0);
        assert_eq!(records[1].id.repetition, 1);
        assert!(report.task_records(5).is_empty());
    }

    #[test]
    fn completeness_check() {
        let report = sample_report();
        assert!(report.is_complete(&[2, 1]));
        assert!(!report.is_complete(&[2, 2]));
        assert!(!report.is_complete(&[2]));
    }

    #[test]
    fn empty_report_defaults() {
        let report = SimulationReport::default();
        assert_eq!(report.job_latency(), 0.0);
        assert_eq!(report.job_on_hold_latency(), 0.0);
        assert!(report.acceptance_epochs().is_empty());
        assert!(report.on_hold_stats().is_empty());
    }
}

//! Observation and control hooks for the simulator: time-varying market
//! rates, event subscription, and mid-flight re-allocation.
//!
//! The offline tuning analysis assumes the on-hold rate curve `λo(c)` is
//! fixed, but the paper itself notes (§3.3) that the curve is *estimated from
//! probes* and drifts with market conditions. This module provides the two
//! extension points an online re-tuner needs:
//!
//! * [`MarketRate`] — a time-varying generalisation of
//!   [`RateModel`]: the rate the *simulated
//!   market* actually follows, which may differ from (and drift away from)
//!   the requester's belief. [`PiecewiseRate`] models regime switches.
//! * [`MarketController`] — a subscriber invoked after every processed
//!   event with a [`MarketView`] of the job's progress. It can simply watch
//!   (metrics, logging, rate re-estimation) or return
//!   [`ControlAction::Reallocate`] to change the payments of repetitions that
//!   have not been published yet — the mechanism behind mid-flight
//!   re-tuning. Payments of already-published repetitions are committed and
//!   never change retroactively.

use crate::events::Event;
use crate::time::SimTime;
use crowdtune_core::money::Allocation;
use crowdtune_core::rate::RateModel;
use std::sync::Arc;

/// A possibly time-varying on-hold rate curve: the ground truth the simulated
/// market follows.
///
/// Every ordinary [`RateModel`] is a [`MarketRate`] that ignores time, so
/// existing call sites keep passing plain rate models.
pub trait MarketRate {
    /// The on-hold clock rate for a repetition *published* at `time` with the
    /// given payment.
    fn rate_at(&self, payment_units: f64, time: SimTime) -> f64;
}

impl<M: RateModel + ?Sized> MarketRate for M {
    fn rate_at(&self, payment_units: f64, _time: SimTime) -> f64 {
        self.on_hold_rate(payment_units)
    }
}

/// A market whose rate curve switches between regimes at fixed times: the
/// curve in force at publish time governs a repetition's acceptance delay.
#[derive(Clone)]
pub struct PiecewiseRate {
    /// `(start_time, model)` segments; the model of the last segment whose
    /// start time is ≤ the query time applies.
    segments: Vec<(f64, Arc<dyn RateModel>)>,
}

impl PiecewiseRate {
    /// A market that follows `initial` from time zero.
    pub fn new(initial: Arc<dyn RateModel>) -> Self {
        PiecewiseRate {
            segments: vec![(0.0, initial)],
        }
    }

    /// Adds a regime switch: from `at` onward the market follows `model`.
    /// Switch times must be non-decreasing across calls.
    pub fn switch_at(mut self, at: f64, model: Arc<dyn RateModel>) -> Self {
        assert!(
            self.segments.last().map(|(t, _)| *t <= at).unwrap_or(true),
            "switch times must be non-decreasing"
        );
        self.segments.push((at, model));
        self
    }

    /// The model in force at `time`.
    pub fn model_at(&self, time: SimTime) -> &Arc<dyn RateModel> {
        let t = time.as_secs();
        let mut current = &self.segments[0].1;
        for (start, model) in &self.segments {
            if *start <= t {
                current = model;
            } else {
                break;
            }
        }
        current
    }
}

impl std::fmt::Debug for PiecewiseRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiecewiseRate")
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl MarketRate for PiecewiseRate {
    fn rate_at(&self, payment_units: f64, time: SimTime) -> f64 {
        self.model_at(time).on_hold_rate(payment_units)
    }
}

/// Read-only snapshot of a running job, passed to the controller with every
/// event.
#[derive(Debug)]
pub struct MarketView<'a> {
    /// Completed (submitted) repetitions per task, in task order.
    pub completed: &'a [u32],
    /// Published repetitions per task, in task order. Published payments are
    /// committed and cannot be changed by re-allocation.
    pub published: &'a [u32],
    /// Budget units committed to published repetitions so far.
    pub committed_units: u64,
    /// The allocation currently in force for unpublished repetitions.
    pub allocation: &'a Allocation,
}

/// What the controller wants the simulator to do after an event.
#[derive(Debug, Clone)]
pub enum ControlAction {
    /// Keep running with the current allocation.
    Continue,
    /// Replace the allocation. Must have the same shape as the task set;
    /// payments of already-published repetitions are ignored (they are
    /// committed), so only unpublished repetitions are affected.
    Reallocate(Allocation),
}

/// Subscriber to simulation events, with the option to re-allocate unspent
/// budget mid-flight.
pub trait MarketController {
    /// Called after the simulator processes each event.
    fn on_event(&mut self, time: SimTime, event: &Event, view: &MarketView<'_>) -> ControlAction;
}

/// A controller that only watches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopController;

impl MarketController for NoopController {
    fn on_event(
        &mut self,
        _time: SimTime,
        _event: &Event,
        _view: &MarketView<'_>,
    ) -> ControlAction {
        ControlAction::Continue
    }
}

/// Adapter: any closure over `(time, event, view)` is a watching controller.
impl<F> MarketController for F
where
    F: FnMut(SimTime, &Event, &MarketView<'_>),
{
    fn on_event(&mut self, time: SimTime, event: &Event, view: &MarketView<'_>) -> ControlAction {
        self(time, event, view);
        ControlAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    #[test]
    fn piecewise_rate_switches_regimes() {
        let market = PiecewiseRate::new(Arc::new(LinearRate::new(1.0, 0.0).unwrap()))
            .switch_at(10.0, Arc::new(LinearRate::new(0.5, 0.0).unwrap()));
        assert_eq!(market.rate_at(4.0, SimTime::new(0.0)), 4.0);
        assert_eq!(market.rate_at(4.0, SimTime::new(9.9)), 4.0);
        assert_eq!(market.rate_at(4.0, SimTime::new(10.0)), 2.0);
        assert_eq!(market.rate_at(4.0, SimTime::new(100.0)), 2.0);
    }

    #[test]
    fn plain_rate_models_are_time_invariant_market_rates() {
        let model = LinearRate::unit_slope();
        assert_eq!(
            model.rate_at(3.0, SimTime::new(0.0)),
            model.rate_at(3.0, SimTime::new(1e6))
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn switch_times_must_be_ordered() {
        let _ = PiecewiseRate::new(Arc::new(LinearRate::unit_slope()))
            .switch_at(10.0, Arc::new(LinearRate::flat()))
            .switch_at(5.0, Arc::new(LinearRate::steep()));
    }
}

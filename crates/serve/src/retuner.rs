//! Online mid-flight re-tuning.
//!
//! The paper's pipeline tunes once, posts the job and waits — but the rate
//! parameters it tunes against are probe estimates (§3.3) that drift with
//! market conditions. The [`Retuner`] closes the loop: it subscribes to the
//! market's event stream (as a
//! [`MarketController`]),
//! re-estimates the on-hold rate curve from the *observed* acceptance delays
//! of the job's own repetitions, and when the observations have drifted away
//! from the current belief it re-solves the H-Tuning problem for the
//! **remaining** repetitions and **remaining** budget
//! (via [`HTuningProblem::remaining_after`]) and re-allocates the unspent
//! budget. Payments already committed to published repetitions are never
//! touched.
//!
//! Re-tuning matters most in the sequential-repetition regime (the paper's
//! default), where later repetitions publish after earlier ones return and
//! can therefore still be re-priced.

use crowdtune_core::inference::{fit_linearity, PriceRatePoint};
use crowdtune_core::market::MarketId;
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::{FnRate, RateModel};
use crowdtune_core::tuner::{StrategyChoice, Tuner};
use crowdtune_market::control::{ControlAction, MarketController, MarketView};
use crowdtune_market::events::{Event, RepetitionId};
use crowdtune_market::time::SimTime;
use crowdtune_market::MarketRegistry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// When and how aggressively to re-tune.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetunePolicy {
    /// Re-evaluate the market after this many completed repetitions.
    pub every_completions: u32,
    /// Minimum acceptance observations before any estimate is trusted.
    pub min_observations: usize,
    /// Declare drift when the observed rates deviate from the belief by more
    /// than this relative amount (observation-weighted). Re-tuning below the
    /// threshold is suppressed, which makes no-drift re-tuning a no-op.
    pub drift_threshold: f64,
    /// Maximum completed observations retained **per price point** (oldest
    /// evicted first). The window used to grow without bound between
    /// re-tunes, so on a long steady stretch followed by a regime switch the
    /// stale pre-switch mass dominated the censored MLE and drift stayed
    /// statistically invisible for hundreds of events; a sliding window
    /// turns over within `observation_window` acceptances and lets the
    /// switch un-mix.
    pub observation_window: usize,
}

impl Default for RetunePolicy {
    fn default() -> Self {
        RetunePolicy {
            every_completions: 5,
            min_observations: 8,
            drift_threshold: 0.25,
            observation_window: 64,
        }
    }
}

/// Counters describing what the re-tuner did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetuneStats {
    /// Times the drift check ran.
    pub evaluations: u32,
    /// Times drift was detected and the remaining job re-tuned.
    pub retunes: u32,
    /// Times a detected drift could not be acted on (e.g. remaining budget
    /// infeasible) and the current plan was kept.
    pub skipped: u32,
}

/// An online re-tuner for one job; plug into
/// [`MarketSimulator::run_controlled`](crowdtune_market::simulator::MarketSimulator::run_controlled).
pub struct Retuner {
    problem: HTuningProblem,
    strategy: StrategyChoice,
    policy: RetunePolicy,
    /// Current market belief; starts at the problem's rate model and is
    /// replaced whenever drift is confirmed.
    belief: Arc<dyn RateModel>,
    /// Publish time and committed payment of every published repetition.
    published: BTreeMap<RepetitionId, (SimTime, u64)>,
    /// Published-but-not-yet-accepted repetitions and the start of their
    /// current exposure window. Their waiting-so-far counts as censored
    /// exposure; ignoring it would condition on early acceptance and bias
    /// the rate estimates upward (only the quick acceptances are seen).
    pending: BTreeMap<RepetitionId, (SimTime, u64)>,
    /// Completed on-hold durations, grouped by payment.
    observations: BTreeMap<u64, Vec<f64>>,
    completions_since_check: u32,
    stats: RetuneStats,
    /// When set, every acceptance observation is also forwarded into the
    /// registry's drift detector for `market` (see
    /// [`Retuner::with_evidence_sink`]).
    evidence_sink: Option<(Arc<MarketRegistry>, MarketId)>,
}

impl Retuner {
    /// Creates a re-tuner for a job tuned as `problem` (the *original* full
    /// problem, whose rate model is the initial market belief).
    pub fn new(problem: HTuningProblem, strategy: StrategyChoice, policy: RetunePolicy) -> Self {
        let belief = problem.rate_model().clone();
        Retuner {
            problem,
            strategy,
            policy,
            belief,
            published: BTreeMap::new(),
            pending: BTreeMap::new(),
            observations: BTreeMap::new(),
            completions_since_check: 0,
            stats: RetuneStats::default(),
            evidence_sink: None,
        }
    }

    /// Forwards every acceptance observation (payment, on-hold delay) into
    /// `registry`'s drift detector for `market` as it arrives, so the
    /// evidence this re-tuner collects for its own job also accumulates
    /// toward registry-level confirmed drift
    /// ([`MarketRegistry::confirmed_drift`]) — previously callers had to
    /// replay the same observations into the registry by hand. A `market`
    /// the registry does not know makes the forwarding a silent no-op (the
    /// re-tuner itself is unaffected).
    pub fn with_evidence_sink(mut self, registry: Arc<MarketRegistry>, market: MarketId) -> Self {
        self.evidence_sink = Some((registry, market));
        self
    }

    /// What the re-tuner has done so far.
    pub fn stats(&self) -> RetuneStats {
        self.stats
    }

    /// The current market belief.
    pub fn belief(&self) -> &Arc<dyn RateModel> {
        &self.belief
    }

    /// How many standard errors away from the estimate the belief must lie
    /// before a price point counts as drifted. Guards against re-tuning on
    /// MLE sampling noise, which oscillates the plan and *hurts* latency.
    const SIGNIFICANCE_Z: f64 = 3.0;

    /// Observed `(price, rate, weight)` triples for every price with enough
    /// data to estimate: the censored exponential MLE
    /// `λ̂ = events / (Σ completed durations + Σ pending exposure)`, which is
    /// unbiased under right-censoring where the naive completed-only
    /// estimator is badly optimistic early in a window.
    fn observed_rates(&self, now: SimTime) -> Vec<(f64, f64, f64)> {
        let mut exposure_by_price: BTreeMap<u64, f64> = BTreeMap::new();
        for &(since, payment) in self.pending.values() {
            *exposure_by_price.entry(payment).or_default() += now.since(since);
        }
        self.observations
            .iter()
            .filter(|(_, durations)| durations.len() >= 2)
            .filter_map(|(&payment, durations)| {
                let events = durations.len() as f64;
                let exposure: f64 = durations.iter().sum::<f64>()
                    + exposure_by_price.get(&payment).copied().unwrap_or(0.0);
                if exposure > 0.0 {
                    Some((payment as f64, events / exposure, events))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Observation-weighted relative deviation of the observed rates from
    /// the current belief, counting only price points where the deviation is
    /// statistically significant (the belief lies outside `λ̂ ± z·SE`).
    fn drift_against_belief(&self, observed: &[(f64, f64, f64)]) -> f64 {
        let mut weighted = 0.0;
        let mut weight_total = 0.0;
        for &(price, rate, weight) in observed {
            let believed = self.belief.on_hold_rate(price);
            if !(believed > 0.0 && believed.is_finite()) {
                continue;
            }
            weight_total += weight;
            let standard_error = rate / weight.sqrt();
            if (rate - believed).abs() > Self::SIGNIFICANCE_Z * standard_error {
                weighted += weight * ((rate - believed).abs() / believed);
            }
        }
        if weight_total == 0.0 {
            0.0
        } else {
            weighted / weight_total
        }
    }

    /// Builds the re-estimated rate model from the observations: a least
    /// squares Linearity-Hypothesis fit when two or more price points are
    /// available, otherwise the belief curve rescaled to match the single
    /// observed price.
    fn reestimate(&self, observed: &[(f64, f64, f64)]) -> Option<Arc<dyn RateModel>> {
        if observed.len() >= 2 {
            let points: Vec<PriceRatePoint> = observed
                .iter()
                .map(|&(price, rate, _)| PriceRatePoint::new(price, rate))
                .collect();
            if let Ok(fit) = fit_linearity(&points) {
                if let Ok(model) = fit.to_rate_model() {
                    return Some(Arc::new(model));
                }
            }
        }
        // Single price point (or degenerate fit): scale the belief curve.
        let &(price, rate, _) = observed.first()?;
        let believed = self.belief.on_hold_rate(price);
        if !(believed.is_finite() && believed > 0.0 && rate.is_finite() && rate > 0.0) {
            return None;
        }
        let ratio = rate / believed;
        let base = self.belief.clone();
        Some(Arc::new(FnRate::new(
            format!("rescaled belief ×{ratio:.3}"),
            move |c| base.on_hold_rate(c) * ratio,
        )))
    }

    /// Runs the drift check; returns a re-allocation when drift was detected
    /// and the remaining job could be re-tuned.
    fn evaluate(&mut self, now: SimTime, view: &MarketView<'_>) -> ControlAction {
        self.stats.evaluations += 1;
        let total_observations: usize = self.observations.values().map(Vec::len).sum();
        if total_observations < self.policy.min_observations {
            return ControlAction::Continue;
        }
        let observed = self.observed_rates(now);
        if observed.is_empty() {
            return ControlAction::Continue;
        }
        if self.drift_against_belief(&observed) <= self.policy.drift_threshold {
            // No meaningful drift: re-tuning now would re-derive the same
            // plan, so keep it (the no-drift no-op guarantee).
            return ControlAction::Continue;
        }
        let Some(new_belief) = self.reestimate(&observed) else {
            return ControlAction::Continue;
        };

        // Re-solve the remaining problem: unpublished repetitions only,
        // unspent budget only, under the re-estimated market.
        let shifted = self.problem.with_rate_model(new_belief.clone());
        let remaining = match shifted.remaining_after(view.published, view.committed_units) {
            Ok(Some(remaining)) => remaining,
            Ok(None) => return ControlAction::Continue,
            Err(_) => {
                // Typically: the unspent budget can no longer cover the
                // outstanding repetitions at one unit each. Keep the plan.
                self.stats.skipped += 1;
                return ControlAction::Continue;
            }
        };
        let tuner = Tuner::new(new_belief.clone()).with_strategy(self.strategy);
        let result = match tuner.tune_problem(&remaining.problem) {
            Ok(result) => result,
            Err(_) => {
                self.stats.skipped += 1;
                return ControlAction::Continue;
            }
        };

        // Graft the re-tuned payments onto the unpublished repetition slots.
        let mut next = view.allocation.clone();
        for (reduced_index, &original_index) in remaining.task_indices.iter().enumerate() {
            let new_payments = result.allocation.task_payments(reduced_index);
            let already_published = view.published[original_index] as usize;
            let payments = next.task_payments_mut(original_index);
            for (slot, &payment) in payments
                .iter_mut()
                .skip(already_published)
                .zip(new_payments)
            {
                *slot = payment;
            }
        }

        self.belief = new_belief;
        self.stats.retunes += 1;
        // The samples that proved the drift were drawn while the old belief
        // (and old prices) were in force; keeping them would keep re-judging
        // the new belief on stale evidence. Start a fresh window: drop the
        // completed observations and restart the pending exposure clocks
        // (valid for exponential waiting times, which are memoryless).
        self.observations.clear();
        for (since, _) in self.pending.values_mut() {
            *since = now;
        }
        ControlAction::Reallocate(next)
    }
}

impl MarketController for Retuner {
    fn on_event(&mut self, time: SimTime, event: &Event, view: &MarketView<'_>) -> ControlAction {
        match *event {
            Event::Publish(rep) => {
                let payment =
                    view.allocation.task_payments(rep.task)[rep.repetition as usize].as_units();
                self.published.insert(rep, (time, payment));
                self.pending.insert(rep, (time, payment));
                ControlAction::Continue
            }
            Event::Accept { repetition, .. } => {
                if let Some((since, payment)) = self.pending.remove(&repetition) {
                    if let Some((registry, market)) = &self.evidence_sink {
                        let _ = registry.observe_acceptance(*market, payment, time.since(since));
                    }
                    let window = self.observations.entry(payment).or_default();
                    window.push(time.since(since));
                    let overflow = window
                        .len()
                        .saturating_sub(self.policy.observation_window.max(1));
                    if overflow > 0 {
                        window.drain(..overflow);
                    }
                }
                ControlAction::Continue
            }
            Event::Submit { .. } => {
                self.completions_since_check += 1;
                if self.completions_since_check >= self.policy.every_completions {
                    self.completions_since_check = 0;
                    self.evaluate(time, view)
                } else {
                    ControlAction::Continue
                }
            }
            Event::WorkerArrival => ControlAction::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::{Allocation, Budget, Payment};
    use crowdtune_core::rate::LinearRate;
    use crowdtune_core::task::TaskSet;

    fn problem(tasks: usize, reps: u32, budget: u64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::new(1.0, 0.0).unwrap()),
        )
        .unwrap()
    }

    /// Feeds the retuner a synthetic event stream whose acceptance delays are
    /// *exactly* the belief's expectation (durations `1/λ(p)` make the MLE
    /// reproduce `λ(p)` bit-exactly), then triggers an evaluation.
    #[test]
    fn no_drift_evaluation_is_a_noop() {
        let problem = problem(4, 2, 40);
        let mut retuner = Retuner::new(
            problem.clone(),
            StrategyChoice::Auto,
            RetunePolicy {
                every_completions: 1,
                min_observations: 4,
                drift_threshold: 0.05,
                ..RetunePolicy::default()
            },
        );
        let allocation = Allocation::uniform(&[2, 2, 2, 2], Payment::units(4));
        let mut completed = vec![0u32; 4];
        let mut published = vec![0u32; 4];
        let mut committed = 0u64;
        let rate = 4.0; // belief: λ = payment = 4
        let mut now = 0.0;
        for task in 0..4usize {
            let rep = RepetitionId::new(task, 0);
            published[task] = 1;
            committed += 4;
            let view_alloc = allocation.clone();
            // Publish.
            let view = MarketView {
                completed: &completed,
                published: &published,
                committed_units: committed,
                allocation: &view_alloc,
            };
            let action = retuner.on_event(SimTime::new(now), &Event::Publish(rep), &view);
            assert!(matches!(action, ControlAction::Continue));
            // Accept exactly 1/λ later.
            now += 1.0 / rate;
            let action = retuner.on_event(
                SimTime::new(now),
                &Event::Accept {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
            assert!(matches!(action, ControlAction::Continue));
            // Submit.
            completed[task] = 1;
            let view = MarketView {
                completed: &completed,
                published: &published,
                committed_units: committed,
                allocation: &view_alloc,
            };
            let action = retuner.on_event(
                SimTime::new(now),
                &Event::Submit {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
            assert!(
                matches!(action, ControlAction::Continue),
                "no-drift re-tuning must keep the allocation"
            );
        }
        assert_eq!(retuner.stats().retunes, 0);
        assert!(retuner.stats().evaluations >= 1);
    }

    /// Replays one regime-switch trace — a long on-belief stretch, then the
    /// market speeds up 20× — through two retuners differing only in window
    /// bound. Returns the number of re-tunes. 64 on-belief acceptances
    /// (delay exactly `1/λ(4)`) are followed by 16 post-switch acceptances
    /// at `1/(20·λ(4))`; with an effectively unbounded window the stale mass
    /// keeps the mixed MLE at ≈4.9 (insignificant against a belief of 4),
    /// while a 16-deep window turns over and estimates ≈80.
    fn regime_switch_retunes(observation_window: usize) -> u32 {
        let problem = problem(1, 96, 500);
        let mut retuner = Retuner::new(
            problem,
            StrategyChoice::Auto,
            RetunePolicy {
                every_completions: 1,
                min_observations: 8,
                drift_threshold: 0.25,
                observation_window,
            },
        );
        let allocation = Allocation::uniform(&[96], Payment::units(4));
        let mut now = 0.0;
        let mut published = vec![0u32];
        let mut completed = vec![0u32];
        let mut committed = 0u64;
        for i in 0..80u32 {
            let rep = RepetitionId::new(0, i);
            published[0] = i + 1;
            committed += 4;
            let view = MarketView {
                completed: &completed,
                published: &published,
                committed_units: committed,
                allocation: &allocation,
            };
            retuner.on_event(SimTime::new(now), &Event::Publish(rep), &view);
            // Pre-switch delays match the belief exactly; post-switch the
            // market accepts 20× faster.
            now += if i < 64 { 0.25 } else { 0.0125 };
            retuner.on_event(
                SimTime::new(now),
                &Event::Accept {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
            completed[0] = i + 1;
            let view = MarketView {
                completed: &completed,
                published: &published,
                committed_units: committed,
                allocation: &allocation,
            };
            retuner.on_event(
                SimTime::new(now),
                &Event::Submit {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
        }
        retuner.stats().retunes
    }

    /// Regression test for the unbounded observation window: on a
    /// regime-switch trace the stale pre-switch observations used to bias
    /// the censored MLE so heavily that the switch went undetected; the
    /// bounded sliding window un-mixes it.
    #[test]
    fn sliding_window_unmixes_a_regime_switch() {
        assert_eq!(
            regime_switch_retunes(usize::MAX),
            0,
            "unbounded window: stale mass must mask the switch (the old, buggy behaviour)"
        );
        assert!(
            regime_switch_retunes(16) >= 1,
            "a bounded window must detect the switch within one window turnover"
        );
    }

    /// The evidence sink: acceptance observations flowing through the
    /// re-tuner must land in the registry's drift window — enough slow
    /// acceptances confirm drift at the registry with no manual
    /// `observe_acceptance` wiring.
    #[test]
    fn evidence_sink_feeds_registry_drift_detection() {
        let registry = Arc::new(MarketRegistry::single(Arc::new(
            LinearRate::new(1.0, 0.0).unwrap(),
        )));
        let problem = problem(1, 16, 200);
        let mut retuner = Retuner::new(problem, StrategyChoice::Auto, RetunePolicy::default())
            .with_evidence_sink(registry.clone(), MarketId::DEFAULT);
        let allocation = Allocation::uniform(&[16], Payment::units(4));
        let published = vec![16u32];
        let completed = vec![0u32];
        let view = MarketView {
            completed: &completed,
            published: &published,
            committed_units: 64,
            allocation: &allocation,
        };
        // Belief: λ(4) = 4 (expected delay 0.25). Observed: 5.0 — a 20×
        // collapse, repeated past the registry's min-observations floor.
        let mut now = 0.0;
        for i in 0..12u32 {
            let rep = RepetitionId::new(0, i);
            retuner.on_event(SimTime::new(now), &Event::Publish(rep), &view);
            now += 5.0;
            retuner.on_event(
                SimTime::new(now),
                &Event::Accept {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
        }
        let evidence = registry
            .confirmed_drift(MarketId::DEFAULT)
            .expect("market exists");
        assert!(
            !evidence.is_empty(),
            "12 observations of a 20x collapse must confirm drift at the registry"
        );
        assert_eq!(evidence[0].price, 4);
        assert!(evidence[0].observed < 1.0, "observed ≈ 0.2");
    }

    /// A collapsed market (observed delays 20× the belief) must trigger a
    /// re-tune that re-prices only unpublished repetitions.
    #[test]
    fn drift_triggers_retune_of_unpublished_slots_only() {
        let problem = problem(2, 3, 120);
        let mut retuner = Retuner::new(
            problem,
            StrategyChoice::Auto,
            RetunePolicy {
                every_completions: 1,
                min_observations: 2,
                drift_threshold: 0.25,
                ..RetunePolicy::default()
            },
        );
        let allocation = Allocation::uniform(&[3, 3], Payment::units(4));
        // Both tasks' first repetitions published at t=0 and accepted 20×
        // slower than believed (λ̂ = payment/20 instead of payment).
        let published = vec![1u32, 1];
        let completed_mid = vec![0u32, 0];
        let committed = 8u64;
        let mut view = MarketView {
            completed: &completed_mid,
            published: &published,
            committed_units: committed,
            allocation: &allocation,
        };
        for task in 0..2usize {
            let rep = RepetitionId::new(task, 0);
            retuner.on_event(SimTime::new(0.0), &Event::Publish(rep), &view);
        }
        let slow_delay = 20.0 / 4.0; // 1 / (payment/20)
        for task in 0..2usize {
            let rep = RepetitionId::new(task, 0);
            retuner.on_event(
                SimTime::new(slow_delay),
                &Event::Accept {
                    repetition: rep,
                    worker: None,
                },
                &view,
            );
        }
        let completed = vec![1u32, 0];
        view.completed = &completed;
        let action = retuner.on_event(
            SimTime::new(slow_delay),
            &Event::Submit {
                repetition: RepetitionId::new(0, 0),
                worker: None,
            },
            &view,
        );
        let ControlAction::Reallocate(next) = action else {
            panic!("a 20× rate collapse must trigger re-tuning");
        };
        assert_eq!(retuner.stats().retunes, 1);
        // Published first repetitions keep their payment.
        assert_eq!(next.task_payments(0)[0], Payment::units(4));
        assert_eq!(next.task_payments(1)[0], Payment::units(4));
        // The re-tuned tail stays within the unspent budget.
        let tail: u64 = (0..2)
            .flat_map(|task| next.task_payments(task)[1..].iter())
            .map(|p| p.as_units())
            .sum();
        assert!(tail <= 120 - committed);
        assert!(next.all_positive());
        // The belief was replaced.
        let new_rate = retuner.belief().on_hold_rate(4.0);
        assert!(
            (new_rate - 0.2).abs() < 0.05,
            "belief should track the observed collapse, got λ(4) = {new_rate}"
        );
    }
}

//! The multi-tenant job queue: admission control and round-robin fairness.
//!
//! Heavy tuning traffic from many requesters must not let one chatty tenant
//! starve everyone else. The queue therefore keeps one FIFO lane per tenant
//! and serves lanes round-robin: a tenant with 10 000 queued jobs and a
//! tenant with 1 get alternating service, so per-tenant queueing delay is
//! bounded by the number of *active tenants*, not by total backlog.
//!
//! Admission control is depth-based back-pressure: a global bound and a
//! per-tenant bound, both checked at submit time. Rejected jobs return
//! [`AdmissionError`] immediately — shedding load at the door is cheaper
//! than timing out deep in the queue.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The whole service is at capacity.
    QueueFull {
        /// The configured global depth bound.
        limit: usize,
    },
    /// This tenant has too many jobs in flight.
    TenantOverLimit {
        /// The configured per-tenant depth bound.
        limit: usize,
    },
    /// The queue was shut down.
    Closed,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { limit } => {
                write!(f, "service queue is full ({limit} jobs pending)")
            }
            AdmissionError::TenantOverLimit { limit } => {
                write!(f, "tenant exceeded its pending-job limit of {limit}")
            }
            AdmissionError::Closed => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Queue depth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum jobs pending across all tenants.
    pub max_pending: usize,
    /// Maximum jobs pending for any single tenant.
    pub max_pending_per_tenant: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_pending: 4096,
            max_pending_per_tenant: 256,
        }
    }
}

struct Lanes<T> {
    /// Per-tenant FIFO lanes.
    lanes: HashMap<String, VecDeque<T>>,
    /// Round-robin ring of tenants with at least one pending job.
    ring: VecDeque<String>,
    pending: usize,
    closed: bool,
}

/// A blocking MPMC queue with per-tenant round-robin fairness.
pub struct JobQueue<T> {
    inner: Mutex<Lanes<T>>,
    ready: Condvar,
    policy: AdmissionPolicy,
}

impl<T> JobQueue<T> {
    /// Creates an empty queue with the given admission policy.
    pub fn new(policy: AdmissionPolicy) -> Self {
        JobQueue {
            inner: Mutex::new(Lanes {
                lanes: HashMap::new(),
                ring: VecDeque::new(),
                pending: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            policy,
        }
    }

    /// Enqueues a job for `tenant`, applying admission control.
    pub fn submit(&self, tenant: &str, job: T) -> Result<(), AdmissionError> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        if inner.pending >= self.policy.max_pending {
            return Err(AdmissionError::QueueFull {
                limit: self.policy.max_pending,
            });
        }
        // Check the per-tenant bound *before* creating the lane: rejected
        // submissions must not leave an empty lane behind, or first-time
        // rejects (any tenant when the per-tenant limit is 0) would grow the
        // map by one entry per attacker-controlled tenant string.
        let depth = inner.lanes.get(tenant).map_or(0, VecDeque::len);
        if depth >= self.policy.max_pending_per_tenant {
            return Err(AdmissionError::TenantOverLimit {
                limit: self.policy.max_pending_per_tenant,
            });
        }
        let lane = inner.lanes.entry(tenant.to_owned()).or_default();
        lane.push_back(job);
        if lane.len() == 1 {
            inner.ring.push_back(tenant.to_owned());
        }
        inner.pending += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next job in round-robin tenant order, blocking while the
    /// queue is empty. Returns `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(tenant) = inner.ring.pop_front() {
                let lane = inner
                    .lanes
                    .get_mut(&tenant)
                    .expect("ring references live lanes");
                let job = lane.pop_front().expect("ring lanes are non-empty");
                if lane.is_empty() {
                    inner.lanes.remove(&tenant);
                } else {
                    inner.ring.push_back(tenant);
                }
                inner.pending -= 1;
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue poisoned");
        }
    }

    /// Jobs currently pending.
    pub fn pending(&self) -> usize {
        self.inner.lock().expect("job queue poisoned").pending
    }

    /// Tenants that currently have at least one pending job (the queue keeps
    /// no state for idle tenants, so this is also the size of the lane map —
    /// a useful capacity metric).
    pub fn active_tenants(&self) -> usize {
        self.inner.lock().expect("job queue poisoned").lanes.len()
    }

    /// Closes the queue: further submissions fail, workers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.inner.lock().expect("job queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`JobQueue::close`] was called. A worker exiting against a
    /// closed queue is an orderly drain, not a death — the supervisor
    /// consults this to avoid respawning into a stopping pool.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("job queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queue(max_pending: usize, per_tenant: usize) -> JobQueue<u32> {
        JobQueue::new(AdmissionPolicy {
            max_pending,
            max_pending_per_tenant: per_tenant,
        })
    }

    #[test]
    fn fifo_within_a_tenant() {
        let q = queue(16, 16);
        q.submit("a", 1).unwrap();
        q.submit("a", 2).unwrap();
        q.submit("a", 3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn round_robin_across_tenants() {
        let q = queue(16, 16);
        // Tenant "hog" floods first; "mouse" arrives later with one job.
        q.submit("hog", 10).unwrap();
        q.submit("hog", 11).unwrap();
        q.submit("hog", 12).unwrap();
        q.submit("mouse", 99).unwrap();
        assert_eq!(q.pop(), Some(10));
        // Fairness: the mouse is served before the hog's backlog drains.
        assert_eq!(q.pop(), Some(99));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
    }

    #[test]
    fn admission_limits_apply() {
        let q = queue(3, 2);
        q.submit("a", 1).unwrap();
        q.submit("a", 2).unwrap();
        assert_eq!(
            q.submit("a", 3),
            Err(AdmissionError::TenantOverLimit { limit: 2 })
        );
        q.submit("b", 4).unwrap();
        assert_eq!(
            q.submit("c", 5),
            Err(AdmissionError::QueueFull { limit: 3 })
        );
        assert_eq!(q.pending(), 3);
    }

    /// Regression test: a rejected submission must not leave an empty lane
    /// behind. With `max_pending_per_tenant == 0` every first-time submit is
    /// refused, and before the fix each refusal leaked a lane keyed by the
    /// (attacker-controlled) tenant string.
    #[test]
    fn rejected_submissions_do_not_leak_tenant_lanes() {
        let q = queue(16, 0);
        for i in 0..100u32 {
            assert_eq!(
                q.submit(&format!("tenant-{i}"), i),
                Err(AdmissionError::TenantOverLimit { limit: 0 })
            );
        }
        assert_eq!(q.active_tenants(), 0, "rejects must not create lanes");
        assert_eq!(q.pending(), 0);

        // A tenant rejected at a non-zero cap keeps exactly its existing
        // lane, and lanes are still reclaimed once drained.
        let q = queue(16, 1);
        q.submit("a", 1).unwrap();
        assert_eq!(
            q.submit("a", 2),
            Err(AdmissionError::TenantOverLimit { limit: 1 })
        );
        assert_eq!(q.active_tenants(), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.active_tenants(), 0, "drained lanes are removed");
    }

    #[test]
    fn close_rejects_submissions_and_drains() {
        let q = queue(8, 8);
        q.submit("a", 1).unwrap();
        q.close();
        assert_eq!(q.submit("a", 2), Err(AdmissionError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_submit() {
        let q = Arc::new(queue(8, 8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit("a", 7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(queue(8, 8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}

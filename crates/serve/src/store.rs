//! Durable plan store: write-behind persistence for the serving layer.
//!
//! The tuning algorithms are deterministic given a fingerprinted workload,
//! which makes solved state durable by nature: a
//! [`DpTableSnapshot`] is a compact, budget-agnostic artifact that can answer
//! whole budget ladders after a restart without a single latency
//! integration. This module persists three append-only record streams under
//! one directory:
//!
//! | file           | stream  | record                                        |
//! |----------------|---------|-----------------------------------------------|
//! | `plans.log`    | plans   | [`PlanRecord`] — exact-match cache snapshots  |
//! | `families.log` | families| [`FamilyRecord`] — family DP-table snapshots  |
//! | `journal.log`  | journal | [`JournalRecord`] — submit/complete journal   |
//!
//! ## Write-behind semantics
//!
//! Recording is fire-and-forget: producers enqueue records onto a bounded
//! in-memory queue and a single background writer thread appends them to
//! disk. Under overload the queue drops its **oldest** pending record
//! (counted in [`StoreStats::dropped`]) rather than stalling the serve path
//! — losing a persistence record only costs a cold solve after the next
//! restart, never a wrong plan. [`PlanStore::flush`] drains the queue for
//! planned shutdowns and tests.
//!
//! ## On-disk format and corruption handling
//!
//! Every file starts with a one-line header (`crowdtune-store v1 <stream>`);
//! a header from a different version marks the whole file unreadable — it is
//! **sidelined** to `<stream>.log.unreadable` (not destroyed: after a binary
//! rollback those bytes may be a newer format) and the stream starts cold
//! ([`LoadReport::corrupt_streams`]). Each
//! record is one line, `<fnv1a-64 hex of payload>\t<payload json>`. Replay
//! stops at the first line whose checksum or JSON fails — a truncated or
//! bit-flipped tail drops the suffix ([`LoadReport::corrupt_tails`]) and the
//! file is truncated back to the last good byte before appending resumes.
//! Family records additionally re-validate semantically on load (rate-model
//! rebuild, unit-cost/group-shape consistency, DP-chain integrity via
//! [`DpTable::from_snapshot`], and the base-state objective check — the
//! persisted form of the `DpTable::extend_to` debug assertion); failures
//! drop the record ([`LoadReport::invalid_records`]). Every degradation path
//! ends in a cold solve, never in serving a wrong plan.

use crowdtune_core::algorithms::{DpTable, DpTableSnapshot};
use crowdtune_core::hash::Fnv1a;
use crowdtune_core::latency::group_phase1_expected;
use crowdtune_core::market::MarketId;
use crowdtune_core::rate::{RateModel, RateSpec};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan};
use crowdtune_obs::{ActiveTrace, AttrValue, Counter, Histogram, Registry, SpanStatus};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Store format magic + version, the first token of every stream header. A
/// mismatch (future format, corrupted header) marks the file unreadable and
/// recovery starts that stream cold.
const STORE_HEADER: &str = "crowdtune-store v1";

/// A persisted exact-match cache entry: the canonical
/// [`PlanFingerprint`](crate::fingerprint::PlanFingerprint) and the tuned
/// plan served under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// The plan's canonical fingerprint (`PlanFingerprint.0`).
    pub fingerprint: u64,
    /// The served plan, bit-exact through the JSON round trip (integer
    /// payments verbatim; finite `f64`s via shortest-round-trip decimals).
    pub plan: TunedPlan,
}

/// A persisted plan family: everything needed to re-serve the family's whole
/// budget ladder after a restart without a single latency integration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRecord {
    /// The family's budget-agnostic fingerprint
    /// ([`FamilyFingerprint`](crate::fingerprint::FamilyFingerprint)`.0`).
    pub fingerprint: u64,
    /// The market belief the family's table was built against (the creating
    /// job's model). Round-trips bit-exactly, so the reloaded family
    /// canonicalises jobs to the very same curve.
    pub rate: RateSpec,
    /// Per repetition group, in group order: `(member count, repetitions)`.
    /// Redundant with the table's unit costs (`u_i = n_i · k_i`) — the load
    /// path cross-checks the two and recomputes the base-state objective
    /// from these shapes.
    pub groups: Vec<(u64, u32)>,
    /// The budget-indexed DP table.
    pub table: DpTableSnapshot,
}

/// One entry of the crash-recovery job journal.
///
/// `Deserialize` is hand-written (versioned decode): journals written before
/// markets existed carry no `market` field on `Submitted` records, and those
/// records must recover cleanly onto [`MarketId::DEFAULT`] — not count as
/// invalid; journals written before fault tolerance carry no `attempts`
/// field (⇒ 0) and no `Failed` variant. Every field added to this format
/// later must follow the same absent-tolerant pattern.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum JournalRecord {
    /// A job was accepted into the queue. Jobs whose rate model has no
    /// [`RateSpec`] of its own are journaled with a sampled tabulated
    /// fallback (see the service's submit path).
    Submitted {
        /// Service-assigned job id (unique across restarts — recovery
        /// resumes the id counter past the largest journaled id).
        job_id: u64,
        /// Submitting tenant.
        tenant: String,
        /// The market the job is tuned against. Absent in pre-market
        /// journals ⇒ decodes to the default market.
        market: MarketId,
        /// The job's task set.
        task_set: TaskSet,
        /// Total budget in units.
        budget: u64,
        /// The tenant's market belief.
        rate: RateSpec,
        /// Strategy override.
        strategy: StrategyChoice,
        /// How many times recovery has already replayed this job (0 on first
        /// submit; recovery re-journals with a bumped count before each
        /// replay and quarantines past the cap — see the service's boot
        /// path). Absent in pre-fault-tolerance journals ⇒ 0. The *latest*
        /// `Submitted` record per id wins during reduction.
        attempts: u32,
    },
    /// The job with this id was answered (successfully or with a reported
    /// solve error — either way it needs no replay).
    Completed {
        /// Service-assigned job id.
        job_id: u64,
    },
    /// Terminal failure: the job's solve panicked (poison job) or it
    /// exhausted its replay attempts. Like [`JournalRecord::Completed`] it
    /// retires the pending submit — recovery must never replay it again.
    Failed {
        /// Service-assigned job id.
        job_id: u64,
    },
}

impl Deserialize for JournalRecord {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Obj(pairs) = value else {
            return Err(serde::DeError::new(format!(
                "expected externally-tagged journal record, found {}",
                value.kind()
            )));
        };
        let [(tag, body)] = pairs.as_slice() else {
            return Err(serde::DeError::new(
                "expected single-variant journal record object",
            ));
        };
        match tag.as_str() {
            "Submitted" => Ok(JournalRecord::Submitted {
                job_id: Deserialize::deserialize_value(body.field("job_id")?)?,
                tenant: Deserialize::deserialize_value(body.field("tenant")?)?,
                // Absent in pre-market journals: recover onto the default
                // market instead of rejecting the record.
                market: match body.opt_field("market")? {
                    Some(market) => Deserialize::deserialize_value(market)?,
                    None => MarketId::DEFAULT,
                },
                task_set: Deserialize::deserialize_value(body.field("task_set")?)?,
                budget: Deserialize::deserialize_value(body.field("budget")?)?,
                rate: Deserialize::deserialize_value(body.field("rate")?)?,
                strategy: Deserialize::deserialize_value(body.field("strategy")?)?,
                // Absent in pre-fault-tolerance journals: a job never
                // replayed has 0 attempts.
                attempts: match body.opt_field("attempts")? {
                    Some(attempts) => Deserialize::deserialize_value(attempts)?,
                    None => 0,
                },
            }),
            "Completed" => Ok(JournalRecord::Completed {
                job_id: Deserialize::deserialize_value(body.field("job_id")?)?,
            }),
            "Failed" => Ok(JournalRecord::Failed {
                job_id: Deserialize::deserialize_value(body.field("job_id")?)?,
            }),
            other => Err(serde::DeError::new(format!(
                "unknown journal record variant `{other}`"
            ))),
        }
    }
}

/// A journaled job that was submitted but never completed — in flight when
/// the process died. Recovery re-enqueues these under their original ids.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job's original service-assigned id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// The market the job is tuned against (default for pre-market records).
    pub market: MarketId,
    /// The job's task set.
    pub task_set: TaskSet,
    /// Total budget in units.
    pub budget: u64,
    /// The tenant's market belief.
    pub rate: RateSpec,
    /// Strategy override.
    pub strategy: StrategyChoice,
    /// How many times recovery has already replayed this job (latest
    /// journaled `Submitted` record wins). The service quarantines jobs
    /// past its replay cap instead of re-enqueueing them.
    pub attempts: u32,
}

/// A family record that survived every load-time validation, paired with its
/// rebuilt rate model. The table itself is rehydrated lazily (first serve of
/// the family) from the retained compact record.
pub struct LoadedFamily {
    /// The validated record.
    pub record: FamilyRecord,
    /// The rate model rebuilt from [`FamilyRecord::rate`].
    pub rate_model: Arc<dyn RateModel>,
}

impl fmt::Debug for LoadedFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadedFamily")
            .field("fingerprint", &self.record.fingerprint)
            .field("coverage", &self.record.table.max_budget())
            .finish()
    }
}

/// What a [`PlanStore::open`] found on disk, after deduplication and
/// validation.
#[derive(Debug, Default)]
pub struct StoreSnapshot {
    /// Plan records, first-writer-wins per fingerprint (mirroring the cache's
    /// incumbent semantics).
    pub plans: Vec<PlanRecord>,
    /// Validated families, largest table coverage wins per fingerprint.
    pub families: Vec<LoadedFamily>,
    /// Journaled jobs submitted but never completed, in submit order.
    pub pending_jobs: Vec<PendingJob>,
    /// Largest job id seen anywhere in the journal (0 when empty); recovery
    /// resumes the id counter past it.
    pub max_job_id: u64,
    /// Journal records retired by the open-time rewrite (matched
    /// `Submitted`/`Completed` pairs and orphan completions collapsed into
    /// the id watermark). 0 when the journal was already minimal.
    pub retired_journal_records: u64,
    /// Per-stream damage accounting.
    pub report: LoadReport,
}

/// Damage accounting of a store load. All counters are "events survived":
/// every one of them degrades to cold solves, never to wrong plans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Streams whose header was missing-but-non-empty or from an unknown
    /// version; the whole file was ignored and truncated.
    pub corrupt_streams: u64,
    /// Streams whose record suffix failed a checksum or parse (truncated
    /// tail, bit flip); the suffix was dropped and truncated away.
    pub corrupt_tails: u64,
    /// Checksummed-valid records that failed semantic re-validation (family
    /// base-state mismatch, broken DP chain, invalid rate spec, ...).
    pub invalid_records: u64,
}

impl LoadReport {
    /// Whether the load saw any damage at all.
    pub fn clean(&self) -> bool {
        *self == LoadReport::default()
    }
}

/// Write-behind counters. Monotone; read with [`PlanStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records accepted onto the write-behind queue.
    pub enqueued: u64,
    /// Records the writer has retired (written, or dropped/failed — see the
    /// other counters). `enqueued - retired` is the current queue depth.
    pub retired: u64,
    /// Records dropped under backpressure (queue full, oldest evicted).
    pub dropped: u64,
    /// Records whose disk write failed (counted retired; the writer keeps
    /// going so the serve path never blocks on a sick disk). A record is
    /// counted here only after its retry budget is exhausted.
    pub write_errors: u64,
    /// `fsync` calls issued by the writer (one per stream file per sync
    /// point; always 0 under [`FsyncPolicy::Off`]).
    pub fsyncs: u64,
    /// Failed append attempts the writer retried (with backoff). Each lost
    /// record contributes up to [`RetryPolicy::max_retries`] of these.
    pub retries: u64,
    /// Times the writer dropped a stream's file handle and re-opened it from
    /// the path (truncating to the last durable prefix) after
    /// [`RetryPolicy::reopen_after`] consecutive failures.
    pub reopens: u64,
}

/// When the background writer calls `fsync` on the stream files. The writer
/// always flushes userspace buffers per batch; without an fsync a *power
/// loss* (as opposed to a process crash) can still lose the OS page-cache
/// tail. Stronger policies trade write throughput for that tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (the default): durability against process crashes only.
    #[default]
    Off,
    /// fsync every touched stream after each write batch: at most one
    /// serve-path record batch can be lost to a power cut.
    PerBatch,
    /// fsync all streams dirtied since the last sync once the given interval
    /// has elapsed (checked after each batch, and once more on close), so
    /// the power-loss window is bounded without paying a sync per batch.
    Interval(std::time::Duration),
}

/// An injectable fault layer on the store's write path, consulted by the
/// background writer immediately before every stream append. Returning an
/// error makes the append fail exactly as a real disk error would (retry,
/// backoff, reopen, degraded health); sleeping inside `before_write`
/// emulates slow I/O. Production stores leave this `None`; the chaos
/// harness (`crowdtune-chaos`) installs an armable implementation.
pub trait WriteFault: Send + Sync {
    /// Called with the target stream's label (`"plans"`, `"families"`,
    /// `"journal"`) and the exact line about to be appended. `Err` aborts
    /// the append before any byte reaches the file.
    fn before_write(&self, stream: &str, bytes: &[u8]) -> std::io::Result<()>;
}

/// Injectable sleep used by the writer's retry backoff, so backoff timing is
/// unit-testable without real clock waits.
pub trait Sleeper: Send + Sync {
    /// Sleeps for (at least) `duration`.
    fn sleep(&self, duration: std::time::Duration);
}

/// The default [`Sleeper`]: `std::thread::sleep`. Only ever called on the
/// background writer thread — the serve path never sleeps.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, duration: std::time::Duration) {
        std::thread::sleep(duration);
    }
}

/// Retry/self-healing policy of the background writer's append path.
///
/// A failed append is retried up to `max_retries` times with exponential
/// backoff plus deterministic jitter (see [`backoff_delay`]); after
/// `reopen_after` *consecutive* failures the writer additionally drops the
/// stream's file handle and re-opens it from the path, truncating to the
/// last durable prefix — the same cut recovery would make — so a poisoned
/// descriptor or a partially-written record can never corrupt the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts per record after the first failure (then the record is
    /// counted in [`StoreStats::write_errors`] and dropped).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: std::time::Duration,
    /// Cap on the exponential backoff (before jitter).
    pub max_delay: std::time::Duration,
    /// Consecutive failures after which the file handle is re-opened.
    pub reopen_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(100),
            reopen_after: 2,
        }
    }
}

/// The backoff before retry `attempt` (1-based): `base_delay · 2^(attempt-1)`
/// capped at `max_delay`, plus deterministic jitter in `[0, delay/2)` drawn
/// from `seed` — jitter de-synchronises retry storms across streams without
/// needing an entropy source. Pure, so backoff timing is unit-testable.
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32, seed: u64) -> std::time::Duration {
    let exponent = attempt.saturating_sub(1).min(20);
    let scaled = policy
        .base_delay
        .saturating_mul(1u32.checked_shl(exponent).unwrap_or(u32::MAX))
        .min(policy.max_delay);
    // splitmix64 on (seed, attempt): cheap, stateless, well-mixed.
    let mut z = seed
        .wrapping_add(u64::from(attempt))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let jitter_ns = (scaled.as_nanos() as u64 / 2).checked_rem(u64::MAX);
    let jitter = match jitter_ns {
        Some(half) if half > 0 => std::time::Duration::from_nanos(z % half),
        _ => std::time::Duration::ZERO,
    };
    scaled + jitter
}

/// Tunables of [`PlanStore::open_with`]. `..Default::default()` keeps the
/// standing defaults (bounded queue, no fsync, default retry policy, no
/// injected faults).
#[derive(Clone)]
pub struct StoreOptions {
    /// Bound on the write-behind queue ([`DEFAULT_QUEUE_CAPACITY`]).
    pub queue_capacity: usize,
    /// When the writer fsyncs the stream files ([`FsyncPolicy::Off`]).
    pub fsync: FsyncPolicy,
    /// Writer retry/self-healing policy ([`RetryPolicy::default`]).
    pub retry: RetryPolicy,
    /// Injectable write-path fault layer (`None` in production).
    pub write_fault: Option<Arc<dyn WriteFault>>,
    /// Injectable backoff sleep ([`ThreadSleeper`] by default).
    pub sleeper: Arc<dyn Sleeper>,
}

impl fmt::Debug for StoreOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreOptions")
            .field("queue_capacity", &self.queue_capacity)
            .field("fsync", &self.fsync)
            .field("retry", &self.retry)
            .field("write_fault", &self.write_fault.is_some())
            .finish()
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            fsync: FsyncPolicy::Off,
            retry: RetryPolicy::default(),
            write_fault: None,
            sleeper: Arc::new(ThreadSleeper),
        }
    }
}

/// Errors opening a store. Runtime write failures are *not* errors — they are
/// counted in [`StoreStats::write_errors`] and degrade durability, not
/// service.
#[derive(Debug)]
pub struct StoreError {
    context: String,
    source: std::io::Error,
}

impl StoreError {
    fn new(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The three streams, used to route queued records to their appender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    Plans,
    Families,
    Journal,
}

impl Stream {
    const ALL: [Stream; 3] = [Stream::Plans, Stream::Families, Stream::Journal];

    fn file_name(self) -> &'static str {
        match self {
            Stream::Plans => "plans.log",
            Stream::Families => "families.log",
            Stream::Journal => "journal.log",
        }
    }

    fn label(self) -> &'static str {
        match self {
            Stream::Plans => "plans",
            Stream::Families => "families",
            Stream::Journal => "journal",
        }
    }

    fn header(self) -> String {
        format!("{STORE_HEADER} {}", self.label())
    }
}

/// A queued write: the target stream and the already-serialized payload.
/// Serialization happens on the producer side so a record captured now is
/// immune to later mutation of the live object (a family table that keeps
/// extending, say).
struct QueuedRecord {
    stream: Stream,
    payload: String,
    /// Persistence-lag probe: enqueue instant plus the histogram to record
    /// the enqueue-to-retire latency into when the writer appends the
    /// record. `None` for untraced records.
    lag: Option<(std::time::Instant, Histogram)>,
    /// Causal-tracing probe: the job's live trace handle plus the span
    /// start stamp (tracer clock) taken at enqueue. The writer records a
    /// `store.persist` span at retire and then drops the handle — which may
    /// be the trace's last, triggering its sampling flush. `None` for
    /// untraced records.
    span: Option<(ActiveTrace, u64)>,
}

/// Queue state guarded by the store mutex.
struct QueueState {
    records: VecDeque<QueuedRecord>,
    closed: bool,
    enqueued: u64,
    retired: u64,
}

struct StoreShared {
    queue: Mutex<QueueState>,
    /// Signals the writer that records (or close) arrived.
    work_ready: Condvar,
    /// Signals flushers that the writer retired more records.
    drained: Condvar,
    // Obs-backed counters (registry-renderable). `enqueued`/`retired` mirror
    // the queue-state fields: the mutexed pair stays the coherent source for
    // `stats()` (depth = enqueued - retired must never be torn), while the
    // counters give scrapes the same monotone values without the lock.
    enqueued_total: Counter,
    retired_total: Counter,
    dropped: Counter,
    write_errors: Counter,
    fsyncs: Counter,
    retries: Counter,
    reopens: Counter,
    /// Set while the write path is losing records (a record exhausted its
    /// retry budget), cleared by the next successful append. Feeds the
    /// service's `Degraded { reasons }` health state.
    impaired: AtomicBool,
    capacity: usize,
    fsync: FsyncPolicy,
    retry: RetryPolicy,
    write_fault: Option<Arc<dyn WriteFault>>,
    sleeper: Arc<dyn Sleeper>,
}

/// The durable plan store: three append-only streams behind one background
/// writer. Cheap to share: wrap in an `Arc` (the service and the family
/// layer both hold one).
pub struct PlanStore {
    shared: Arc<StoreShared>,
    dir: PathBuf,
    writer: Option<JoinHandle<()>>,
}

impl fmt::Debug for PlanStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default bound on the write-behind queue. Each record is one serialized
/// line; at the default the queue tops out around a few MB of pending JSON
/// before drop-oldest kicks in.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

impl PlanStore {
    /// Opens (creating if absent) the store directory, replays all three
    /// streams, truncates any corrupt tails, and starts the background
    /// writer. Returns the store handle plus everything that was loaded.
    ///
    /// One store directory must be owned by one process at a time; the store
    /// performs no cross-process locking.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Arc<PlanStore>, StoreSnapshot), StoreError> {
        Self::open_with_capacity(dir, DEFAULT_QUEUE_CAPACITY)
    }

    /// [`PlanStore::open`] with an explicit write-behind queue bound.
    pub fn open_with_capacity(
        dir: impl AsRef<Path>,
        queue_capacity: usize,
    ) -> Result<(Arc<PlanStore>, StoreSnapshot), StoreError> {
        Self::open_with(
            dir,
            StoreOptions {
                queue_capacity,
                ..StoreOptions::default()
            },
        )
    }

    /// [`PlanStore::open`] with explicit [`StoreOptions`] (queue bound,
    /// fsync policy).
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<(Arc<PlanStore>, StoreSnapshot), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::new(format!("creating store dir {}", dir.display()), e))?;

        let mut report = LoadReport::default();
        let mut replayed: Vec<(Stream, ReplayedStream)> = Vec::new();
        for stream in Stream::ALL {
            let path = dir.join(stream.file_name());
            let stream_replay = replay_stream(&path, stream, &mut report)?;
            if stream_replay.sideline {
                // Preserve the unreadable bytes (newer format after a
                // rollback?) instead of destroying them; a previously
                // sidelined file of the same stream is replaced.
                let parked = dir.join(format!("{}.unreadable", stream.file_name()));
                std::fs::rename(&path, &parked)
                    .map_err(|e| StoreError::new(format!("sidelining {}", path.display()), e))?;
            }
            replayed.push((stream, stream_replay));
        }

        let mut snapshot = StoreSnapshot {
            report,
            ..StoreSnapshot::default()
        };
        for (stream, stream_replay) in &replayed {
            match stream {
                Stream::Plans => reduce_plans(&stream_replay.payloads, &mut snapshot),
                Stream::Families => reduce_families(&stream_replay.payloads, &mut snapshot),
                Stream::Journal => reduce_journal(&stream_replay.payloads, &mut snapshot),
            }
        }

        // Journal retirement: matched `Submitted`/`Completed` pairs carry no
        // recovery information — rewrite the journal as its reduction
        // (pending submits + an id watermark) whenever that strictly shrinks
        // it, so the journal's size tracks in-flight work instead of service
        // lifetime. Runs before the appender opens; the other two streams
        // keep their truncated-tail prefixes untouched.
        let journal = replayed
            .iter_mut()
            .find(|(stream, _)| *stream == Stream::Journal)
            .map(|(_, r)| r)
            .expect("journal stream replayed");
        let kept = rewrite_journal_if_smaller(&dir, journal, &snapshot)?;
        snapshot.retired_journal_records = kept;

        let mut appenders = Vec::new();
        for (stream, stream_replay) in &replayed {
            let path = dir.join(stream.file_name());
            let (file, durable_len) = open_stream(&path, *stream, stream_replay.good_prefix)?;
            appenders.push(StreamAppender {
                stream: *stream,
                path,
                file: Some(file),
                durable_len,
                dirty: false,
                needs_sync: false,
                consecutive_failures: 0,
            });
        }

        let shared = Arc::new(StoreShared {
            queue: Mutex::new(QueueState {
                records: VecDeque::new(),
                closed: false,
                enqueued: 0,
                retired: 0,
            }),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            enqueued_total: Counter::new(),
            retired_total: Counter::new(),
            dropped: Counter::new(),
            write_errors: Counter::new(),
            fsyncs: Counter::new(),
            retries: Counter::new(),
            reopens: Counter::new(),
            impaired: AtomicBool::new(false),
            capacity: options.queue_capacity.max(1),
            fsync: options.fsync,
            retry: options.retry,
            write_fault: options.write_fault,
            sleeper: options.sleeper,
        });
        let writer = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("store-writer".to_owned())
                .spawn(move || writer_loop(&shared, appenders))
                .map_err(|e| StoreError::new("spawning store writer", e))?
        };
        Ok((
            Arc::new(PlanStore {
                shared,
                dir,
                writer: Some(writer),
            }),
            snapshot,
        ))
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queues a plan snapshot for the exact-match stream.
    pub fn record_plan(&self, fingerprint: u64, plan: &TunedPlan) {
        let record = PlanRecord {
            fingerprint,
            plan: plan.clone(),
        };
        self.enqueue(Stream::Plans, &record, false);
    }

    /// [`PlanStore::record_plan`] with a persistence-lag probe: the
    /// enqueue-to-retire latency of this record is recorded into `lag_into`
    /// (in nanoseconds) once the background writer appends it. This is how
    /// the service attributes write-behind lag to the job's scenario and
    /// plan source.
    pub fn record_plan_traced(&self, fingerprint: u64, plan: &TunedPlan, lag_into: &Histogram) {
        self.record_plan_observed(fingerprint, plan, Some(lag_into), None);
    }

    /// The full-observability variant of [`PlanStore::record_plan`]: an
    /// optional persistence-lag probe (see [`PlanStore::record_plan_traced`])
    /// plus an optional causal-tracing probe — the job's live [`ActiveTrace`]
    /// and the `store.persist` span's start stamp. The writer thread records
    /// the span when the record retires (so the span covers queue wait plus
    /// the disk write, errored when the write failed) and then releases the
    /// trace handle, letting the trace's sampling flush run.
    pub fn record_plan_observed(
        &self,
        fingerprint: u64,
        plan: &TunedPlan,
        lag_into: Option<&Histogram>,
        span: Option<(ActiveTrace, u64)>,
    ) {
        let record = PlanRecord {
            fingerprint,
            plan: plan.clone(),
        };
        self.enqueue_observed(Stream::Plans, &record, false, lag_into.cloned(), span);
    }

    /// [`PlanStore::record_plan`], but blocking while the queue is full
    /// instead of dropping the oldest record. For flush paths, which have no
    /// latency constraint and must not lose working-set records to
    /// backpressure.
    pub fn record_plan_blocking(&self, fingerprint: u64, plan: &TunedPlan) {
        let record = PlanRecord {
            fingerprint,
            plan: plan.clone(),
        };
        self.enqueue(Stream::Plans, &record, true);
    }

    /// Queues a family snapshot. Callers re-record a family whenever its
    /// table grows; on load the record with the largest coverage wins.
    pub fn record_family(&self, record: &FamilyRecord) {
        self.enqueue(Stream::Families, record, false);
    }

    /// [`PlanStore::record_family`] with full-queue blocking (see
    /// [`PlanStore::record_plan_blocking`]).
    pub fn record_family_blocking(&self, record: &FamilyRecord) {
        self.enqueue(Stream::Families, record, true);
    }

    /// Queues a journal entry.
    pub fn record_journal(&self, record: &JournalRecord) {
        self.enqueue(Stream::Journal, record, false);
    }

    /// Blocks until every record enqueued before this call has been retired
    /// by the writer (written, or counted as a write error). Used by planned
    /// shutdowns and tests; crash durability is whatever the writer had
    /// already retired.
    pub fn flush(&self) {
        let mut queue = self.shared.queue.lock().expect("store queue poisoned");
        let target = queue.enqueued;
        while queue.retired < target && !queue.closed {
            queue = self
                .shared
                .drained
                .wait(queue)
                .expect("store queue poisoned");
        }
    }

    /// Current write-behind counters.
    pub fn stats(&self) -> StoreStats {
        let (enqueued, retired) = {
            let queue = self.shared.queue.lock().expect("store queue poisoned");
            (queue.enqueued, queue.retired)
        };
        StoreStats {
            enqueued,
            retired,
            dropped: self.shared.dropped.get(),
            write_errors: self.shared.write_errors.get(),
            fsyncs: self.shared.fsyncs.get(),
            retries: self.shared.retries.get(),
            reopens: self.shared.reopens.get(),
        }
    }

    /// Whether the write path is currently losing records: set when a record
    /// exhausts its retry budget, cleared automatically by the next
    /// successful append. While `true` the service reports
    /// `Degraded { store-writes-failing }` — serving continues (plans are
    /// answered from memory), only durability is impaired.
    pub fn write_path_impaired(&self) -> bool {
        self.shared.impaired.load(Ordering::Acquire)
    }

    /// Registers the store's write-behind counters into `registry` under the
    /// `crowdtune_store_*` names, backed by the same cells
    /// [`PlanStore::stats`] reports.
    pub fn register_metrics(&self, registry: &Registry) {
        // Retired before enqueued: a scrape must never observe
        // retired > enqueued (records retire only after being enqueued).
        registry.register_counter(
            "crowdtune_store_retired_total",
            "Write-behind records retired by the writer (written or failed).",
            &[],
            self.shared.retired_total.clone(),
        );
        registry.register_counter(
            "crowdtune_store_enqueued_total",
            "Records accepted onto the write-behind queue.",
            &[],
            self.shared.enqueued_total.clone(),
        );
        registry.register_counter(
            "crowdtune_store_dropped_total",
            "Records dropped under backpressure (queue full, oldest evicted).",
            &[],
            self.shared.dropped.clone(),
        );
        registry.register_counter(
            "crowdtune_store_write_errors_total",
            "Records or syncs whose disk operation failed.",
            &[],
            self.shared.write_errors.clone(),
        );
        registry.register_counter(
            "crowdtune_store_fsyncs_total",
            "fsync calls issued by the background writer.",
            &[],
            self.shared.fsyncs.clone(),
        );
        registry.register_counter(
            "crowdtune_store_write_retries_total",
            "Failed append attempts the writer retried with backoff.",
            &[],
            self.shared.retries.clone(),
        );
        registry.register_counter(
            "crowdtune_store_reopens_total",
            "Stream file handles re-opened after consecutive write failures.",
            &[],
            self.shared.reopens.clone(),
        );
    }

    fn enqueue<T: Serialize>(&self, stream: Stream, record: &T, block_when_full: bool) {
        self.enqueue_observed(stream, record, block_when_full, None, None);
    }

    /// [`PlanStore::enqueue`] with optional observability probes: when
    /// `lag_into` is given, the enqueue-to-retire latency of this record is
    /// recorded into that histogram by the writer thread; when `span` is
    /// given, the writer records a `store.persist` span into the carried
    /// trace at retire.
    fn enqueue_observed<T: Serialize>(
        &self,
        stream: Stream,
        record: &T,
        block_when_full: bool,
        lag_into: Option<Histogram>,
        span: Option<(ActiveTrace, u64)>,
    ) {
        let payload = match serde_json::to_string(record) {
            Ok(payload) => payload,
            Err(_) => {
                // The shim serializer is infallible for these types; treat a
                // failure like a write error rather than panicking the
                // serve path.
                self.shared.write_errors.inc();
                return;
            }
        };
        let mut queue = self.shared.queue.lock().expect("store queue poisoned");
        if queue.closed {
            return;
        }
        if block_when_full {
            // Flush path: wait for the writer instead of shedding — a
            // planned shutdown must persist the *full* working set.
            while queue.records.len() >= self.shared.capacity && !queue.closed {
                queue = self
                    .shared
                    .drained
                    .wait(queue)
                    .expect("store queue poisoned");
            }
            if queue.closed {
                return;
            }
        } else if queue.records.len() >= self.shared.capacity {
            // Drop-oldest backpressure: persistence lags, serving does not.
            queue.records.pop_front();
            queue.retired += 1;
            self.shared.retired_total.inc();
            self.shared.dropped.inc();
        }
        queue.records.push_back(QueuedRecord {
            stream,
            payload,
            lag: lag_into.map(|hist| (std::time::Instant::now(), hist)),
            span,
        });
        queue.enqueued += 1;
        self.shared.enqueued_total.inc();
        drop(queue);
        self.shared.work_ready.notify_one();
    }
}

impl Drop for PlanStore {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("store queue poisoned");
            queue.closed = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.drained.notify_all();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Renders one durable record line: `<fnv1a-64 hex of payload>\t<payload>\n`.
fn record_line(payload: &str) -> String {
    let mut hash = Fnv1a::new();
    hash.write_bytes(payload.as_bytes());
    format!("{:016x}\t{}\n", hash.finish(), payload)
}

/// One stream's append state inside the background writer. Writes go
/// straight to the [`File`] (one `write_all` per record line — no userspace
/// buffer, so a failed attempt can only ever leave *file* bytes behind,
/// which the dirty-cut below removes deterministically).
struct StreamAppender {
    stream: Stream,
    path: PathBuf,
    /// `None` after the self-healing path dropped a poisoned handle; the
    /// next append re-opens from `path`.
    file: Option<File>,
    /// Bytes known fully written: header + every successfully appended
    /// record. The truncation point of every retry and reopen.
    durable_len: u64,
    /// A failed attempt may have left partial bytes past `durable_len`; cut
    /// them before the next write touches the file.
    dirty: bool,
    /// Appended since the last fsync (only tracked when the policy syncs).
    needs_sync: bool,
    consecutive_failures: u32,
}

impl StreamAppender {
    /// Appends one record line with the full retry/self-healing treatment:
    /// bounded retries with exponential backoff + jitter, and a file-handle
    /// reopen (truncating to the durable prefix) after
    /// [`RetryPolicy::reopen_after`] consecutive failures. Returns whether
    /// the record made it to the file.
    fn append(&mut self, line: &[u8], shared: &StoreShared, seed: u64) -> bool {
        let mut attempt = 0u32;
        loop {
            match self.try_append(line, shared.write_fault.as_deref()) {
                Ok(()) => {
                    self.durable_len += line.len() as u64;
                    self.consecutive_failures = 0;
                    self.needs_sync = !matches!(shared.fsync, FsyncPolicy::Off);
                    return true;
                }
                Err(_) => {
                    self.dirty = true;
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= shared.retry.reopen_after && self.file.is_some()
                    {
                        // The handle itself may be the problem (revoked
                        // descriptor, stale network-filesystem handle):
                        // drop it and re-open from the path next attempt.
                        self.file = None;
                        shared.reopens.inc();
                    }
                    attempt += 1;
                    if attempt > shared.retry.max_retries {
                        return false;
                    }
                    shared.retries.inc();
                    shared
                        .sleeper
                        .sleep(backoff_delay(&shared.retry, attempt, seed));
                }
            }
        }
    }

    /// One write attempt: (re-)open the file if needed, cut any partial
    /// bytes from a previous failed attempt back to the durable prefix —
    /// the same cut recovery makes — then append the line.
    fn try_append(&mut self, line: &[u8], fault: Option<&dyn WriteFault>) -> std::io::Result<()> {
        if self.file.is_none() {
            let (file, durable_len) = open_stream(&self.path, self.stream, self.durable_len)
                .map_err(|error| error.source)?;
            self.durable_len = durable_len;
            self.dirty = false;
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("stream file just opened");
        if self.dirty {
            file.set_len(self.durable_len)?;
            file.seek(SeekFrom::Start(self.durable_len))?;
            self.dirty = false;
        }
        if let Some(fault) = fault {
            fault.before_write(self.stream.label(), line)?;
        }
        file.write_all(line)
    }
}

/// The background writer: drains the queue in batches, appends each record
/// to its stream (with retry/backoff/reopen self-healing, see
/// [`StreamAppender::append`]), then fsyncs per the configured
/// [`FsyncPolicy`]. On close it drains whatever is left before exiting, so
/// a graceful drop loses nothing.
fn writer_loop(shared: &StoreShared, mut appenders: Vec<StreamAppender>) {
    fn sync_dirty(shared: &StoreShared, appenders: &mut [StreamAppender]) {
        for appender in appenders.iter_mut().filter(|a| a.needs_sync) {
            appender.needs_sync = false;
            match appender.file.as_ref().map(File::sync_data) {
                Some(Ok(())) => shared.fsyncs.inc(),
                Some(Err(_)) => shared.write_errors.inc(),
                None => {}
            }
        }
    }
    let mut last_sync = std::time::Instant::now();
    // Jitter seed, advanced per record: deterministic (no entropy source)
    // but well-spread through the splitmix64 mix in `backoff_delay`.
    let mut seed = 0x5851_f42d_4c95_7f2d_u64;
    loop {
        let batch: Vec<QueuedRecord> = {
            let mut queue = shared.queue.lock().expect("store queue poisoned");
            loop {
                if !queue.records.is_empty() || queue.closed {
                    break;
                }
                // An interval policy must keep its bounded-window promise
                // even when the store goes idle: with dirty streams, sleep
                // only until the interval elapses (then fall through with an
                // empty batch to the sync below) instead of waiting
                // indefinitely for records that may never come.
                let unsynced = appenders.iter().any(|a| a.needs_sync);
                match (shared.fsync, unsynced) {
                    (FsyncPolicy::Interval(interval), true) => {
                        let elapsed = last_sync.elapsed();
                        if elapsed >= interval {
                            break;
                        }
                        let (reacquired, _timeout) = shared
                            .work_ready
                            .wait_timeout(queue, interval - elapsed)
                            .expect("store queue poisoned");
                        queue = reacquired;
                    }
                    _ => {
                        queue = shared.work_ready.wait(queue).expect("store queue poisoned");
                    }
                }
            }
            if queue.records.is_empty() && queue.closed {
                // Closed and drained: bound the power-loss window of an
                // interval policy by syncing whatever is still dirty.
                if !matches!(shared.fsync, FsyncPolicy::Off) {
                    sync_dirty(shared, &mut appenders);
                }
                return;
            }
            queue.records.drain(..).collect()
        };
        let count = batch.len() as u64;
        for record in batch {
            let appender = appenders
                .iter_mut()
                .find(|a| a.stream == record.stream)
                .expect("appender per stream");
            let line = record_line(&record.payload);
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let written = appender.append(line.as_bytes(), shared, seed);
            if written {
                if let Some((enqueued_at, hist)) = &record.lag {
                    hist.record(enqueued_at.elapsed().as_nanos() as u64);
                }
                // Writes succeed again: durability is restored, the health
                // state flips back on its own.
                shared.impaired.store(false, Ordering::Release);
            } else {
                shared.write_errors.inc();
                shared.impaired.store(true, Ordering::Release);
            }
            if let Some((trace, start_ns)) = record.span {
                let status = if written {
                    SpanStatus::Ok
                } else {
                    SpanStatus::Error
                };
                trace.span_with(
                    "store.persist",
                    None,
                    start_ns,
                    trace.now_ns(),
                    status,
                    vec![("stream", AttrValue::Str(record.stream.label().to_owned()))],
                );
                // Dropping the handle here may be the trace's completion:
                // the persist span extends the trace past the HTTP response.
            }
        }
        match shared.fsync {
            FsyncPolicy::Off => {}
            FsyncPolicy::PerBatch => sync_dirty(shared, &mut appenders),
            FsyncPolicy::Interval(interval) => {
                if last_sync.elapsed() >= interval {
                    sync_dirty(shared, &mut appenders);
                    last_sync = std::time::Instant::now();
                }
            }
        }
        let mut queue = shared.queue.lock().expect("store queue poisoned");
        queue.retired += count;
        shared.retired_total.add(count);
        drop(queue);
        shared.drained.notify_all();
    }
}

/// Open-time journal retirement: when the replayed journal holds more
/// records than its reduction — pending `Submitted`s plus (when needed) one
/// `Completed` id watermark — the file is rewritten as that reduction and
/// the number of retired records is returned. The watermark preserves
/// [`StoreSnapshot::max_job_id`] across the rewrite, so recovered services
/// keep assigning fresh ids; it is itself an orphan completion, which the
/// *next* open's reduction recognises and rewrites, keeping the journal at
/// fixed size across restarts.
fn rewrite_journal_if_smaller(
    dir: &Path,
    journal: &mut ReplayedStream,
    snapshot: &StoreSnapshot,
) -> Result<u64, StoreError> {
    let max_pending_id = snapshot.pending_jobs.iter().map(|job| job.job_id).max();
    let watermark = match max_pending_id {
        _ if snapshot.max_job_id == 0 => None,
        Some(max_pending) if max_pending >= snapshot.max_job_id => None,
        _ => Some(JournalRecord::Completed {
            job_id: snapshot.max_job_id,
        }),
    };
    let kept = snapshot.pending_jobs.len() + usize::from(watermark.is_some());
    if journal.payloads.len() <= kept {
        return Ok(0);
    }
    let mut content = format!("{}\n", Stream::Journal.header());
    for job in &snapshot.pending_jobs {
        let record = JournalRecord::Submitted {
            job_id: job.job_id,
            tenant: job.tenant.clone(),
            market: job.market,
            task_set: job.task_set.clone(),
            budget: job.budget,
            rate: job.rate.clone(),
            strategy: job.strategy,
            attempts: job.attempts,
        };
        let payload = serde_json::to_string(&record)
            .map_err(|e| StoreError::new("re-serializing journal", std::io::Error::other(e)))?;
        content.push_str(&record_line(&payload));
    }
    if let Some(record) = &watermark {
        let payload = serde_json::to_string(record)
            .map_err(|e| StoreError::new("re-serializing journal", std::io::Error::other(e)))?;
        content.push_str(&record_line(&payload));
    }
    let path = dir.join(Stream::Journal.file_name());
    // Write-then-rename, never truncate-in-place: the pending records being
    // rewritten are already durable, and a crash mid-rewrite must not be the
    // one thing that loses them. The temp file is synced before the rename
    // so the replacement is complete before it becomes visible, and the
    // directory entry is synced (best-effort) so the rename itself survives
    // a power cut.
    let tmp = dir.join(format!("{}.rewrite", Stream::Journal.file_name()));
    {
        let mut file = File::create(&tmp)
            .map_err(|e| StoreError::new(format!("creating {}", tmp.display()), e))?;
        file.write_all(content.as_bytes())
            .map_err(|e| StoreError::new(format!("writing {}", tmp.display()), e))?;
        file.sync_data()
            .map_err(|e| StoreError::new(format!("syncing {}", tmp.display()), e))?;
    }
    std::fs::rename(&tmp, &path)
        .map_err(|e| StoreError::new(format!("renaming over {}", path.display()), e))?;
    if let Ok(dir_handle) = File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    journal.good_prefix = content.len() as u64;
    Ok((journal.payloads.len() - kept) as u64)
}

/// The outcome of replaying one stream: the checksummed-valid record
/// payloads, plus what the appender must do before writing resumes.
struct ReplayedStream {
    payloads: Vec<String>,
    /// Byte length of the good prefix; anything after it is corrupt and is
    /// truncated away before appending resumes.
    good_prefix: u64,
    /// The whole file is unreadable (unknown header version): it must be
    /// **sidelined, not truncated** — the data may belong to a newer store
    /// format, and a binary rollback must not destroy it.
    sideline: bool,
}

impl ReplayedStream {
    fn empty() -> Self {
        ReplayedStream {
            payloads: Vec::new(),
            good_prefix: 0,
            sideline: false,
        }
    }
}

/// Reads one stream; see [`ReplayedStream`] for what the caller must do with
/// the result.
fn replay_stream(
    path: &Path,
    stream: Stream,
    report: &mut LoadReport,
) -> Result<ReplayedStream, StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)
                .map_err(|e| StoreError::new(format!("reading {}", path.display()), e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayedStream::empty()),
        Err(e) => return Err(StoreError::new(format!("opening {}", path.display()), e)),
    }
    if bytes.is_empty() {
        return Ok(ReplayedStream::empty());
    }

    let header = stream.header();
    let mut offset = match bytes.iter().position(|&b| b == b'\n') {
        Some(end) if bytes[..end] == *header.as_bytes() => end + 1,
        _ => {
            // Unknown version or mangled header: the whole file is
            // unreadable here. Start the stream cold, but keep the bytes
            // (sidelined) — they may be a newer format after a rollback.
            report.corrupt_streams += 1;
            return Ok(ReplayedStream {
                payloads: Vec::new(),
                good_prefix: 0,
                sideline: true,
            });
        }
    };

    let mut payloads = Vec::new();
    while offset < bytes.len() {
        let line_end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| offset + i);
        let Some(line_end) = line_end else {
            // Unterminated final line: even if its checksum happens to pass
            // (a crash can land exactly at the end of a payload, before the
            // newline), accepting it would leave `good_prefix` without a
            // terminator and the next append would merge onto this line —
            // corrupting *both* records at the following recovery. Drop it.
            report.corrupt_tails += 1;
            break;
        };
        match parse_record_line(&bytes[offset..line_end]) {
            Some(payload) => {
                payloads.push(payload);
                offset = line_end + 1;
            }
            None => {
                // Truncated tail or bit flip: drop this line and everything
                // after it.
                report.corrupt_tails += 1;
                break;
            }
        }
    }
    Ok(ReplayedStream {
        payloads,
        good_prefix: offset as u64,
        sideline: false,
    })
}

/// Checks one `<checksum>\t<payload>` line, returning the payload when the
/// checksum matches and the payload is valid UTF-8.
fn parse_record_line(line: &[u8]) -> Option<String> {
    let tab = line.iter().position(|&b| b == b'\t')?;
    let (checksum_hex, payload) = (&line[..tab], &line[tab + 1..]);
    let checksum_hex = std::str::from_utf8(checksum_hex).ok()?;
    let expected = u64::from_str_radix(checksum_hex, 16).ok()?;
    let mut hash = Fnv1a::new();
    hash.write_bytes(payload);
    if hash.finish() != expected {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

/// Opens a stream for appending after its good prefix, truncating any
/// corrupt (or partially-written) tail away and writing the header into
/// fresh/unreadable files. Returns the file positioned at the end plus the
/// resulting durable length (`good_prefix`, or the header length on a fresh
/// file). Used at store open and by the writer's self-healing reopen.
fn open_stream(path: &Path, stream: Stream, good_prefix: u64) -> Result<(File, u64), StoreError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(|e| StoreError::new(format!("opening {} for append", path.display()), e))?;
    file.set_len(good_prefix)
        .map_err(|e| StoreError::new(format!("truncating {}", path.display()), e))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| StoreError::new(format!("seeking {}", path.display()), e))?;
    let mut durable_len = good_prefix;
    if good_prefix == 0 {
        let header = format!("{}\n", stream.header());
        file.write_all(header.as_bytes())
            .map_err(|e| StoreError::new(format!("writing header to {}", path.display()), e))?;
        durable_len = header.len() as u64;
    }
    Ok((file, durable_len))
}

/// Parses and deduplicates plan records: first writer wins per fingerprint,
/// mirroring the cache's incumbent semantics (equal fingerprints imply
/// bit-identical plans anyway).
fn reduce_plans(payloads: &[String], snapshot: &mut StoreSnapshot) {
    let mut seen: HashSet<u64> = HashSet::new();
    for payload in payloads {
        let Ok(record) = serde_json::from_str::<PlanRecord>(payload) else {
            snapshot.report.invalid_records += 1;
            continue;
        };
        if seen.insert(record.fingerprint) {
            snapshot.plans.push(record);
        }
    }
}

/// Parses, deduplicates (largest table coverage wins) and semantically
/// re-validates family records.
fn reduce_families(payloads: &[String], snapshot: &mut StoreSnapshot) {
    let mut best: HashMap<u64, FamilyRecord> = HashMap::new();
    for payload in payloads {
        let Ok(record) = serde_json::from_str::<FamilyRecord>(payload) else {
            snapshot.report.invalid_records += 1;
            continue;
        };
        match best.entry(record.fingerprint) {
            Entry::Vacant(slot) => {
                slot.insert(record);
            }
            Entry::Occupied(mut slot) => {
                if record.table.max_budget() > slot.get().table.max_budget() {
                    slot.insert(record);
                }
            }
        }
    }
    let mut families: Vec<FamilyRecord> = best.into_values().collect();
    families.sort_by_key(|record| record.fingerprint);
    for record in families {
        match validate_family(record) {
            Some(loaded) => snapshot.families.push(loaded),
            None => snapshot.report.invalid_records += 1,
        }
    }
}

/// The load-time family validation described in the module docs. `None`
/// means "discard the record and let the family re-seed cold".
fn validate_family(record: FamilyRecord) -> Option<LoadedFamily> {
    let rate_model = record.rate.build().ok()?;
    // Unit costs must be exactly the group shapes' `n_i · k_i`.
    if record.table.unit_costs.len() != record.groups.len() {
        return None;
    }
    for (&cost, &(size, repetitions)) in record.table.unit_costs.iter().zip(&record.groups) {
        if size == 0 || repetitions == 0 || cost != size * u64::from(repetitions) {
            return None;
        }
    }
    // Full DP-chain validation (decisions affordable, spend chain
    // consistent, objectives finite). The rebuilt table is discarded —
    // rehydration is lazy — but a record that cannot rebuild must not reach
    // the archive.
    DpTable::from_snapshot(&record.table).ok()?;
    // The base-state objective check of `DpTable::extend_to`, run eagerly:
    // re-evaluate the level-0 objective (one unit per repetition of every
    // group) against the reloaded curve and require bit equality. This is
    // what catches a rate spec that no longer matches the table — wrong
    // tables are discarded, never extended.
    let rate = rate_model.on_hold_rate(1.0);
    if !rate.is_finite() || rate <= 0.0 {
        return None;
    }
    let mut base = 0.0;
    for &(size, repetitions) in &record.groups {
        base += group_phase1_expected(size, repetitions, rate).ok()?;
    }
    if Some(base.to_bits()) != record.table.base_objective_bits() {
        return None;
    }
    Some(LoadedFamily { record, rate_model })
}

/// Replays the journal: submits without a matching terminal record
/// (`Completed` or `Failed`) become [`PendingJob`]s, in submit order.
/// Duplicate `Submitted` records per id (recovery re-journals with a bumped
/// `attempts` before each replay) collapse to the **latest** record, keeping
/// the position of the first.
fn reduce_journal(payloads: &[String], snapshot: &mut StoreSnapshot) {
    let mut pending: Vec<PendingJob> = Vec::new();
    // Maps ids to `pending` slots so a re-submit overwrites in place.
    // HashMap/HashSet, not Vec: the journal is append-only and uncompacted,
    // so after N served jobs a linear `contains` would make recovery O(N²).
    let mut slot_of: HashMap<u64, usize> = HashMap::new();
    let mut terminal: HashSet<u64> = HashSet::new();
    for payload in payloads {
        let Ok(record) = serde_json::from_str::<JournalRecord>(payload) else {
            snapshot.report.invalid_records += 1;
            continue;
        };
        match record {
            JournalRecord::Submitted {
                job_id,
                tenant,
                market,
                task_set,
                budget,
                rate,
                strategy,
                attempts,
            } => {
                snapshot.max_job_id = snapshot.max_job_id.max(job_id);
                let job = PendingJob {
                    job_id,
                    tenant,
                    market,
                    task_set,
                    budget,
                    rate,
                    strategy,
                    attempts,
                };
                match slot_of.entry(job_id) {
                    Entry::Vacant(slot) => {
                        slot.insert(pending.len());
                        pending.push(job);
                    }
                    Entry::Occupied(slot) => pending[*slot.get()] = job,
                }
            }
            JournalRecord::Completed { job_id } | JournalRecord::Failed { job_id } => {
                snapshot.max_job_id = snapshot.max_job_id.max(job_id);
                terminal.insert(job_id);
            }
        }
    }
    pending.retain(|job| !terminal.contains(&job.job_id));
    snapshot.pending_jobs = pending;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::{Allocation, Payment};
    use crowdtune_core::problem::{LatencyTarget, TuningResult};
    use crowdtune_core::rate::LinearRate;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A process-unique scratch directory (no tempfile crate offline).
    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "crowdtune-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn plan(tag: u64) -> TunedPlan {
        TunedPlan {
            result: TuningResult::new(
                "RA",
                Allocation::uniform(&[2, 3], Payment::units(tag)),
                Some(tag as f64 * 0.37),
                LatencyTarget::GroupSumOnHold,
            ),
            expected_latency: tag as f64 * 1.21,
            expected_on_hold_latency: tag as f64 * 0.5,
        }
    }

    #[test]
    fn fresh_store_is_empty_and_round_trips_records() {
        let dir = scratch_dir("roundtrip");
        {
            let (store, snapshot) = PlanStore::open(&dir).unwrap();
            assert!(snapshot.report.clean());
            assert!(snapshot.plans.is_empty());
            store.record_plan(7, &plan(1));
            store.record_plan(9, &plan(2));
            store.record_plan(7, &plan(3)); // duplicate key: incumbent wins on load
            store.record_journal(&JournalRecord::Submitted {
                job_id: 4,
                tenant: "acme".to_owned(),
                market: MarketId::DEFAULT,
                task_set: {
                    let mut set = TaskSet::new();
                    let ty = set.add_type("vote", 2.0).unwrap();
                    set.add_tasks(ty, 3, 2).unwrap();
                    set
                },
                budget: 40,
                rate: RateSpec::Linear(LinearRate::unit_slope()),
                strategy: StrategyChoice::Auto,
                attempts: 0,
            });
            store.record_journal(&JournalRecord::Submitted {
                job_id: 5,
                tenant: "acme".to_owned(),
                market: MarketId::DEFAULT,
                task_set: {
                    let mut set = TaskSet::new();
                    let ty = set.add_type("vote", 2.0).unwrap();
                    set.add_tasks(ty, 3, 2).unwrap();
                    set
                },
                budget: 60,
                rate: RateSpec::Linear(LinearRate::unit_slope()),
                strategy: StrategyChoice::Auto,
                attempts: 0,
            });
            store.record_journal(&JournalRecord::Completed { job_id: 4 });
            store.flush();
            let stats = store.stats();
            assert_eq!(stats.enqueued, 6);
            assert_eq!(stats.retired, 6);
            assert_eq!(stats.dropped, 0);
            assert_eq!(stats.write_errors, 0);
        }
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert_eq!(snapshot.plans.len(), 2);
        let by_key: HashMap<u64, &TunedPlan> = snapshot
            .plans
            .iter()
            .map(|r| (r.fingerprint, &r.plan))
            .collect();
        assert_eq!(by_key[&7], &plan(1), "first writer wins");
        assert_eq!(
            by_key[&7].expected_latency.to_bits(),
            plan(1).expected_latency.to_bits()
        );
        assert_eq!(by_key[&9], &plan(2));
        // Job 4 completed; job 5 is pending, and the id counter resumes past
        // the largest journaled id.
        assert_eq!(snapshot.pending_jobs.len(), 1);
        assert_eq!(snapshot.pending_jobs[0].job_id, 5);
        assert_eq!(snapshot.pending_jobs[0].budget, 60);
        assert_eq!(snapshot.max_job_id, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_queue_drops_oldest_under_backpressure() {
        let dir = scratch_dir("backpressure");
        // Enqueue far more than the tiny capacity in a tight loop: whenever
        // the producer outruns the writer the queue drops its oldest entry
        // instead of blocking the (serve-path) producer.
        let (store, _) = PlanStore::open_with_capacity(&dir, 2).unwrap();
        for i in 0..64u64 {
            store.record_plan(i, &plan(i));
        }
        store.flush();
        let stats = store.stats();
        assert_eq!(stats.enqueued, 64);
        assert_eq!(stats.retired, 64);
        // With capacity 2 and a racing writer some records persist and some
        // drop; the invariant is accounting consistency, not a drop count.
        assert_eq!(stats.write_errors, 0);
        drop(store);
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert!(!snapshot.plans.is_empty(), "some records persisted");
        assert!(snapshot.plans.len() <= 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn journal_submit(job_id: u64, budget: u64) -> JournalRecord {
        JournalRecord::Submitted {
            job_id,
            tenant: "acme".to_owned(),
            market: MarketId::DEFAULT,
            task_set: {
                let mut set = TaskSet::new();
                let ty = set.add_type("vote", 2.0).unwrap();
                set.add_tasks(ty, 3, 2).unwrap();
                set
            },
            budget,
            rate: RateSpec::Linear(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
            attempts: 0,
        }
    }

    /// Version back-compat: a journal written before markets existed (no
    /// `market` field on `Submitted` records) must recover **cleanly** —
    /// zero corrupt streams, zero corrupt tails, zero invalid records — with
    /// every pending job assigned the default market.
    #[test]
    fn pre_market_journal_recovers_onto_the_default_market() {
        let dir = scratch_dir("premarket");
        std::fs::create_dir_all(&dir).unwrap();
        // Produce fixture bytes identical to the pre-market format by
        // serializing current records and stripping the `market` key from
        // the Submitted body before writing the checksummed line.
        let mut content = format!("{}\n", Stream::Journal.header());
        for record in [journal_submit(3, 44), journal_submit(7, 61)] {
            let mut value = record.serialize_value();
            let serde::Value::Obj(variants) = &mut value else {
                panic!("journal records serialize as externally-tagged objects");
            };
            let serde::Value::Obj(body) = &mut variants[0].1 else {
                panic!("the Submitted body serializes as an object");
            };
            let fields = body.len();
            body.retain(|(key, _)| key != "market");
            assert_eq!(body.len(), fields - 1, "fixture must strip the field");
            content.push_str(&record_line(&serde_json::to_string(&value).unwrap()));
        }
        let completed = serde_json::to_string(&JournalRecord::Completed { job_id: 3 }).unwrap();
        content.push_str(&record_line(&completed));
        std::fs::write(dir.join(Stream::Journal.file_name()), content).unwrap();

        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean(), "{:?}", snapshot.report);
        assert_eq!(snapshot.report.invalid_records, 0);
        assert_eq!(snapshot.pending_jobs.len(), 1);
        let job = &snapshot.pending_jobs[0];
        assert_eq!(job.job_id, 7);
        assert_eq!(job.budget, 61);
        assert_eq!(
            job.market,
            MarketId::DEFAULT,
            "pre-market records recover onto the default market"
        );
        assert_eq!(snapshot.max_job_id, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The fsync knob: `PerBatch` syncs every touched stream (observable in
    /// the new counter), `Off` — the default — never does, and neither mode
    /// changes what a reload sees.
    #[test]
    fn fsync_policy_per_batch_syncs_and_off_does_not() {
        let dir = scratch_dir("fsync");
        {
            let (store, _) = PlanStore::open_with(
                &dir,
                StoreOptions {
                    fsync: FsyncPolicy::PerBatch,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            store.record_plan(1, &plan(1));
            store.record_plan(2, &plan(2));
            store.flush();
            let stats = store.stats();
            assert!(stats.fsyncs >= 1, "per-batch policy must fsync: {stats:?}");
            assert_eq!(stats.write_errors, 0);
        }
        {
            // An interval of zero degenerates to per-batch: every batch
            // crosses the (elapsed) interval.
            let (store, snapshot) = PlanStore::open_with(
                &dir,
                StoreOptions {
                    fsync: FsyncPolicy::Interval(std::time::Duration::ZERO),
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(snapshot.plans.len(), 2);
            store.record_plan(3, &plan(3));
            store.flush();
            assert!(store.stats().fsyncs >= 1);
        }
        let (store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.plans.len(), 3, "all policies persist identically");
        store.record_plan(4, &plan(4));
        store.flush();
        assert_eq!(store.stats().fsyncs, 0, "default policy never fsyncs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The interval promise holds for an *idle* store too: a batch written
    /// just before the workload stops must still be synced once the
    /// interval elapses, without waiting for further records (the writer
    /// sleeps with a timeout while streams are dirty).
    #[test]
    fn fsync_interval_syncs_an_idle_store() {
        let dir = scratch_dir("fsync-idle");
        let (store, _) = PlanStore::open_with(
            &dir,
            StoreOptions {
                fsync: FsyncPolicy::Interval(std::time::Duration::from_millis(20)),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.record_plan(1, &plan(1));
        store.flush();
        // No more records arrive. The dirty stream must be synced within
        // the interval (generous deadline for slow CI).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.stats().fsyncs == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            store.stats().fsyncs >= 1,
            "idle store must still sync on the interval: {:?}",
            store.stats()
        );
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A long-interval policy holds its syncs until close: the final drain
    /// bounds the power-loss window even when the interval never elapsed.
    #[test]
    fn fsync_interval_syncs_dirty_streams_on_close() {
        let dir = scratch_dir("fsync-close");
        let (store, _) = PlanStore::open_with(
            &dir,
            StoreOptions {
                fsync: FsyncPolicy::Interval(std::time::Duration::from_secs(3600)),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.record_plan(1, &plan(1));
        store.flush();
        drop(store);
        let (store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.plans.len(), 1);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Open-time journal retirement: matched `Submitted`/`Completed` pairs
    /// are rewritten away, the journal file shrinks across restarts (down to
    /// the pending records plus one id watermark), and neither the pending
    /// set nor the id counter changes.
    #[test]
    fn journal_retires_matched_pairs_at_open() {
        let dir = scratch_dir("journal-retire");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            for id in 0..32u64 {
                store.record_journal(&journal_submit(id, 40 + id));
                // Jobs 0..30 complete; job 31 stays in flight.
                if id != 31 {
                    store.record_journal(&JournalRecord::Completed { job_id: id });
                }
            }
            store.flush();
        }
        let grown = std::fs::metadata(dir.join("journal.log")).unwrap().len();
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.retired_journal_records, 62, "31 matched pairs");
        assert_eq!(snapshot.pending_jobs.len(), 1);
        assert_eq!(snapshot.pending_jobs[0].job_id, 31);
        assert_eq!(snapshot.max_job_id, 31);
        let shrunk = std::fs::metadata(dir.join("journal.log")).unwrap().len();
        assert!(
            shrunk < grown / 8,
            "journal must shrink substantially ({grown} -> {shrunk})"
        );
        // A second restart is already minimal: nothing further retires and
        // the recovery view is unchanged.
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.retired_journal_records, 0);
        assert_eq!(snapshot.pending_jobs.len(), 1);
        assert_eq!(snapshot.max_job_id, 31);
        assert_eq!(
            std::fs::metadata(dir.join("journal.log")).unwrap().len(),
            shrunk
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// When every journaled job completed, the rewrite leaves only the id
    /// watermark — and the watermark keeps the id counter monotone across
    /// restarts (ids are never reused while any record could reference them).
    #[test]
    fn journal_watermark_preserves_the_id_counter() {
        let dir = scratch_dir("journal-watermark");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            for id in 0..8u64 {
                store.record_journal(&journal_submit(id, 40));
                store.record_journal(&JournalRecord::Completed { job_id: id });
            }
            store.flush();
        }
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.retired_journal_records, 15, "16 records -> 1");
        assert!(snapshot.pending_jobs.is_empty());
        assert_eq!(snapshot.max_job_id, 8 - 1, "watermark keeps the max id");
        // Stable from here on: the watermark survives restarts unchanged.
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.retired_journal_records, 0);
        assert_eq!(snapshot.max_job_id, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_drops_only_the_suffix() {
        let dir = scratch_dir("truncate");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            for i in 0..4u64 {
                store.record_plan(i, &plan(i));
            }
            store.flush();
        }
        let path = dir.join("plans.log");
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-way through the last record (simulating a crash mid-write).
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.report.corrupt_tails, 1);
        assert_eq!(snapshot.plans.len(), 3, "good prefix survives");
        // Appending after recovery lands cleanly after the truncated point.
        store.record_plan(99, &plan(99));
        store.flush();
        drop(store);
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert_eq!(snapshot.plans.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_invalidates_the_record_and_its_suffix() {
        let dir = scratch_dir("bitflip");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            for i in 0..5u64 {
                store.record_plan(i, &plan(i));
            }
            store.flush();
        }
        let path = dir.join("plans.log");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the third record's payload.
        let mut newlines = 0usize;
        let mut target = None;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                newlines += 1;
                if newlines == 3 {
                    target = Some(i + 24);
                    break;
                }
            }
        }
        let target = target.unwrap();
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.report.corrupt_tails, 1);
        assert_eq!(
            snapshot.plans.len(),
            2,
            "records before the flipped one survive; the rest are dropped"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_starts_the_stream_cold() {
        let dir = scratch_dir("version");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            store.record_plan(1, &plan(1));
            store.flush();
        }
        let path = dir.join("plans.log");
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replace("crowdtune-store v1", "crowdtune-store v2");
        assert_ne!(text, bumped);
        std::fs::write(&path, bumped).unwrap();
        let (store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.report.corrupt_streams, 1);
        assert!(snapshot.plans.is_empty(), "unknown version loads nothing");
        // The unreadable bytes are sidelined, not destroyed: a rolled-back
        // binary must never wipe a newer format's durable state.
        let parked = std::fs::read_to_string(dir.join("plans.log.unreadable")).unwrap();
        assert!(parked.starts_with("crowdtune-store v2"));
        // The stream restarts under the current header and works again.
        store.record_plan(2, &plan(2));
        store.flush();
        drop(store);
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert_eq!(snapshot.plans.len(), 1);
        assert_eq!(snapshot.plans[0].fingerprint, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash can cut a stream exactly at the end of a payload, before its
    /// newline: the checksum of that line passes, but accepting it would
    /// make the next append merge onto it and corrupt both records at the
    /// following recovery. The unterminated line must be dropped instead.
    #[test]
    fn unterminated_final_line_is_dropped_even_with_a_valid_checksum() {
        let dir = scratch_dir("no-newline");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            for i in 0..3u64 {
                store.record_plan(i, &plan(i));
            }
            store.flush();
        }
        let path = dir.join("plans.log");
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.last(), Some(&b'\n'));
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        // First recovery: the final record is checksum-valid but
        // unterminated — dropped and truncated away.
        let (store, snapshot) = PlanStore::open(&dir).unwrap();
        assert_eq!(snapshot.report.corrupt_tails, 1);
        assert_eq!(snapshot.plans.len(), 2);
        // Appends land on a clean prefix: the next recovery sees every
        // surviving record plus the new one, with no merged-line damage.
        store.record_plan(9, &plan(9));
        store.flush();
        drop(store);
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert_eq!(snapshot.plans.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Backoff is pure and bounded: doubling from `base_delay`, capped at
    /// `max_delay`, jitter strictly inside `[0, delay/2)`, and the same
    /// `(attempt, seed)` always yields the same delay — so retry timing is
    /// testable without a clock.
    #[test]
    fn backoff_delay_doubles_caps_and_jitters_deterministically() {
        let policy = RetryPolicy::default();
        for seed in [0u64, 1, 0xdead_beef_cafe] {
            for attempt in 1..=10u32 {
                let base_ms = 1u128 << (attempt - 1).min(20);
                let scaled_ms = base_ms.min(100);
                let delay = backoff_delay(&policy, attempt, seed);
                assert!(
                    delay.as_millis() >= scaled_ms,
                    "attempt {attempt}: {delay:?} below the exponential floor"
                );
                assert!(
                    delay.as_nanos() < scaled_ms * 1_000_000 * 3 / 2,
                    "attempt {attempt}: {delay:?} exceeds floor + 50% jitter"
                );
                assert_eq!(
                    delay,
                    backoff_delay(&policy, attempt, seed),
                    "same (attempt, seed) must be deterministic"
                );
            }
        }
        // The jitter actually draws from the seed: two seeds disagree
        // somewhere in the ladder.
        assert!(
            (1..=10).any(|a| backoff_delay(&policy, a, 1) != backoff_delay(&policy, a, 2)),
            "jitter ignores the seed"
        );
    }

    /// Chaos-style injectable fault: fails the next `failures_left` appends,
    /// then succeeds forever (until re-armed).
    #[derive(Debug, Default)]
    struct FlakyFault {
        failures_left: Mutex<u32>,
    }

    impl FlakyFault {
        fn arm(self: &Arc<Self>, failures: u32) {
            *self.failures_left.lock().unwrap() = failures;
        }
    }

    impl WriteFault for FlakyFault {
        fn before_write(&self, _stream: &str, _bytes: &[u8]) -> std::io::Result<()> {
            let mut left = self.failures_left.lock().unwrap();
            if *left > 0 {
                *left = left.saturating_sub(1);
                return Err(std::io::Error::other("injected write failure"));
            }
            Ok(())
        }
    }

    /// Injected clock for the writer's backoff: records every requested
    /// delay instead of sleeping, so retry timing is asserted exactly.
    #[derive(Debug, Default)]
    struct RecordingSleeper {
        slept: Mutex<Vec<std::time::Duration>>,
    }

    impl Sleeper for RecordingSleeper {
        fn sleep(&self, duration: std::time::Duration) {
            self.slept.lock().unwrap().push(duration);
        }
    }

    fn faulted_options(fault: &Arc<FlakyFault>, sleeper: &Arc<RecordingSleeper>) -> StoreOptions {
        StoreOptions {
            write_fault: Some(fault.clone() as Arc<dyn WriteFault>),
            sleeper: sleeper.clone(),
            ..StoreOptions::default()
        }
    }

    /// Transient write failures are absorbed by the retry path: the record
    /// still persists, the backoff ladder ran (observable through the
    /// injected sleeper), the handle was re-opened after the consecutive-
    /// failure threshold, and the write path never reports impairment.
    #[test]
    fn transient_write_failures_retry_reopen_and_persist() {
        let dir = scratch_dir("retry");
        let fault = Arc::new(FlakyFault::default());
        let sleeper = Arc::new(RecordingSleeper::default());
        {
            let (store, _) = PlanStore::open_with(&dir, faulted_options(&fault, &sleeper)).unwrap();
            fault.arm(2); // default reopen_after = 2, max_retries = 4
            store.record_plan(1, &plan(1));
            store.flush();
            let stats = store.stats();
            assert_eq!(stats.retries, 2, "{stats:?}");
            assert_eq!(stats.reopens, 1, "two consecutive failures re-open");
            assert_eq!(stats.write_errors, 0, "the record survived retries");
            assert!(!store.write_path_impaired());
            let slept = sleeper.slept.lock().unwrap().clone();
            assert_eq!(slept.len(), 2, "one backoff per retry");
            // Exponential ladder with jitter < 50%: 1ms then 2ms bases.
            assert!(slept[0] >= std::time::Duration::from_millis(1));
            assert!(slept[0] < std::time::Duration::from_micros(1500));
            assert!(slept[1] >= std::time::Duration::from_millis(2));
            assert!(slept[1] < std::time::Duration::from_millis(3));
        }
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean(), "{:?}", snapshot.report);
        assert_eq!(snapshot.plans.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A record that exhausts its retry budget is dropped and flips the
    /// write path to impaired (the health surface's store signal); the next
    /// successful append heals it automatically, and the stream stays
    /// byte-clean throughout — failed attempts never leave partial bytes.
    #[test]
    fn exhausted_retries_impair_and_the_next_success_heals() {
        let dir = scratch_dir("impair");
        let fault = Arc::new(FlakyFault::default());
        let sleeper = Arc::new(RecordingSleeper::default());
        {
            let (store, _) = PlanStore::open_with(&dir, faulted_options(&fault, &sleeper)).unwrap();
            fault.arm(u32::MAX); // persistent outage
            store.record_plan(1, &plan(1));
            store.flush();
            let stats = store.stats();
            assert_eq!(stats.write_errors, 1, "{stats:?}");
            assert_eq!(stats.retries, 4, "full retry budget spent");
            assert!(store.write_path_impaired(), "outage must impair");
            fault.arm(0); // the disk comes back
            store.record_plan(2, &plan(2));
            store.flush();
            assert!(
                !store.write_path_impaired(),
                "first successful append heals the write path"
            );
            assert_eq!(store.stats().write_errors, 1);
        }
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean(), "{:?}", snapshot.report);
        assert_eq!(snapshot.plans.len(), 1, "only the healed record persisted");
        assert_eq!(snapshot.plans[0].fingerprint, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Version back-compat for the fault-tolerance journal extensions: a
    /// journal written before `attempts` existed decodes with `attempts: 0`,
    /// and the new terminal `Failed` record retires a pending job exactly
    /// like `Completed` does.
    #[test]
    fn pre_attempts_journal_decodes_and_failed_is_terminal() {
        let dir = scratch_dir("attempts-compat");
        std::fs::create_dir_all(&dir).unwrap();
        let mut content = format!("{}\n", Stream::Journal.header());
        for record in [journal_submit(3, 44), journal_submit(7, 61)] {
            let mut value = record.serialize_value();
            let serde::Value::Obj(variants) = &mut value else {
                panic!("journal records serialize as externally-tagged objects");
            };
            let serde::Value::Obj(body) = &mut variants[0].1 else {
                panic!("the Submitted body serializes as an object");
            };
            let fields = body.len();
            body.retain(|(key, _)| key != "attempts");
            assert_eq!(body.len(), fields - 1, "fixture must strip the field");
            content.push_str(&record_line(&serde_json::to_string(&value).unwrap()));
        }
        let failed = serde_json::to_string(&JournalRecord::Failed { job_id: 3 }).unwrap();
        content.push_str(&record_line(&failed));
        std::fs::write(dir.join(Stream::Journal.file_name()), content).unwrap();

        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean(), "{:?}", snapshot.report);
        assert_eq!(snapshot.report.invalid_records, 0);
        assert_eq!(
            snapshot.pending_jobs.len(),
            1,
            "`Failed` retires job 3 terminally"
        );
        let job = &snapshot.pending_jobs[0];
        assert_eq!(job.job_id, 7);
        assert_eq!(job.attempts, 0, "pre-attempts records decode as attempt 0");
        assert_eq!(
            snapshot.max_job_id, 7,
            "failed ids still advance the id counter"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Replay re-journaling relies on last-Submitted-wins: a job re-recorded
    /// with a bumped attempt count reduces to one pending entry carrying the
    /// latest count, in first-submission order.
    #[test]
    fn latest_submitted_record_wins_with_stable_order() {
        let dir = scratch_dir("attempts-dedupe");
        {
            let (store, _) = PlanStore::open(&dir).unwrap();
            store.record_journal(&journal_submit(1, 10));
            store.record_journal(&journal_submit(2, 20));
            // The replay bump: job 1 re-submitted with two attempts burned.
            let bumped = match journal_submit(1, 10) {
                JournalRecord::Submitted {
                    job_id,
                    tenant,
                    market,
                    task_set,
                    budget,
                    rate,
                    strategy,
                    ..
                } => JournalRecord::Submitted {
                    job_id,
                    tenant,
                    market,
                    task_set,
                    budget,
                    rate,
                    strategy,
                    attempts: 2,
                },
                _ => unreachable!(),
            };
            store.record_journal(&bumped);
            store.flush();
        }
        let (_store, snapshot) = PlanStore::open(&dir).unwrap();
        assert!(snapshot.report.clean());
        assert_eq!(snapshot.pending_jobs.len(), 2, "no duplicate pending entry");
        assert_eq!(
            snapshot.pending_jobs[0].job_id, 1,
            "first-submission order survives the overwrite"
        );
        assert_eq!(snapshot.pending_jobs[0].attempts, 2, "latest record wins");
        assert_eq!(snapshot.pending_jobs[1].job_id, 2);
        assert_eq!(snapshot.pending_jobs[1].attempts, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Sharded LRU cache of tuned plans.
//!
//! Tuning traffic is heavily repetitive — the same crowd workloads (filter
//! votes, sort votes, standard repetition profiles) arrive from many tenants
//! with identical budgets and market beliefs — so repeated solves of the
//! `O(n·B')` dynamic program are pure waste. The cache maps a
//! [`PlanFingerprint`] to the
//! `Arc<TunedPlan>` produced by the first solve; a hit returns the *same*
//! plan object, so cached responses are bit-identical to the cold solve by
//! construction. Jobs that repeat the workload but not the budget miss here
//! and are picked up by the cross-budget
//! [`PlanFamilies`](crate::family::PlanFamilies) layer behind it.
//!
//! Sharding: entries are distributed over `2^k` independently locked shards
//! by the low bits of the fingerprint, so concurrent tuner workers rarely
//! contend. Each shard runs strict LRU via a monotone recency tick.

use crate::fingerprint::PlanFingerprint;
use crowdtune_core::tuner::TunedPlan;
use crowdtune_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counters exposed by the cache. Monotone; read with [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache was never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, (Arc<TunedPlan>, u64)>,
    tick: u64,
}

/// Sharded LRU plan cache. Cheap to share: wrap in an `Arc`.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    // Obs-backed counters: the same cells the service registry renders, so
    // `stats()` and a Prometheus scrape can never disagree on a counter.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PlanCache {
    /// Creates a cache with `shards` independently locked shards (rounded up
    /// to a power of two) holding at most `capacity_per_shard` plans each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        PlanCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// A default sizing suitable for tests and examples: 8 shards × 128
    /// plans.
    pub fn with_default_sizing() -> Self {
        PlanCache::new(8, 128)
    }

    fn shard_for(&self, key: PlanFingerprint) -> &Mutex<Shard> {
        let index = (key.0 as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Looks up a plan, refreshing its recency on a hit.
    pub fn get(&self, key: PlanFingerprint) -> Option<Arc<TunedPlan>> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&key.0) {
            Some((plan, last_used)) => {
                *last_used = tick;
                let plan = plan.clone();
                drop(shard);
                self.hits.inc();
                Some(plan)
            }
            None => {
                drop(shard);
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts a plan, evicting the least recently used entry of the shard
    /// if it is full. Returns the plan that is now cached under the key
    /// (first writer wins on races, keeping hits bit-stable).
    pub fn insert(&self, key: PlanFingerprint, plan: Arc<TunedPlan>) -> Arc<TunedPlan> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some((existing, last_used)) = shard.entries.get_mut(&key.0) {
            // Another worker solved the same job concurrently; keep the
            // incumbent so every response for this key stays identical.
            *last_used = tick;
            return existing.clone();
        }
        if shard.entries.len() >= self.capacity_per_shard {
            // Eviction is an O(capacity) scan under the shard lock. With the
            // default sizing (≤512 entries) that is a few µs against a
            // multi-ms DP solve, and it only runs on miss-heavy inserts; an
            // intrusive LRU list is the upgrade path if shard capacities
            // grow by orders of magnitude.
            if let Some((&lru_key, _)) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
            {
                shard.entries.remove(&lru_key);
                self.evictions.inc();
            }
        }
        shard.entries.insert(key.0, (plan.clone(), tick));
        plan
    }

    /// Visits every resident entry (shard by shard, cloning the `Arc`s out
    /// before invoking the callback so no shard lock is held while it runs).
    /// This is the cache's flush hook: the durable service dumps the whole
    /// working set through it on planned shutdowns, catching up any plan
    /// whose write-behind record was dropped under backpressure. Recency is
    /// not perturbed.
    pub fn for_each_entry(&self, mut visit: impl FnMut(PlanFingerprint, &Arc<TunedPlan>)) {
        for shard in &self.shards {
            let entries: Vec<(u64, Arc<TunedPlan>)> = {
                let shard = shard.lock().expect("cache shard poisoned");
                shard
                    .entries
                    .iter()
                    .map(|(&key, (plan, _))| (key, plan.clone()))
                    .collect()
            };
            for (key, plan) in entries {
                visit(PlanFingerprint(key), &plan);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
        }
    }

    /// Registers the cache's counters into `registry` under the
    /// `crowdtune_cache_*` names. The registry renders the very cells the
    /// cache increments — no copying, no divergence from [`PlanCache::stats`].
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "crowdtune_cache_hits_total",
            "Plan-cache lookups answered by a live entry.",
            &[],
            self.hits.clone(),
        );
        registry.register_counter(
            "crowdtune_cache_misses_total",
            "Plan-cache lookups that missed.",
            &[],
            self.misses.clone(),
        );
        registry.register_counter(
            "crowdtune_cache_evictions_total",
            "Plan-cache entries displaced by the LRU policy.",
            &[],
            self.evictions.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::{Allocation, Payment};
    use crowdtune_core::problem::{LatencyTarget, TuningResult};

    fn plan(tag: u64) -> Arc<TunedPlan> {
        Arc::new(TunedPlan {
            result: TuningResult::new(
                "EA",
                Allocation::uniform(&[1], Payment::units(tag)),
                Some(tag as f64),
                LatencyTarget::ExpectedMaxOnHold,
            ),
            expected_latency: tag as f64,
            expected_on_hold_latency: tag as f64 / 2.0,
        })
    }

    #[test]
    fn get_insert_and_stats() {
        let cache = PlanCache::new(4, 8);
        let key = PlanFingerprint(42);
        assert!(cache.get(key).is_none());
        cache.insert(key, plan(1));
        let hit = cache.get(key).unwrap();
        assert_eq!(hit.expected_latency, 1.0);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = PlanCache::new(1, 8);
        let key = PlanFingerprint(7);
        let first = cache.insert(key, plan(1));
        let second = cache.insert(key, plan(2));
        assert!(Arc::ptr_eq(&first, &second), "incumbent plan must survive");
        assert!(Arc::ptr_eq(&cache.get(key).unwrap(), &first));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(1, 2);
        cache.insert(PlanFingerprint(1), plan(1));
        cache.insert(PlanFingerprint(2), plan(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(PlanFingerprint(1)).is_some());
        cache.insert(PlanFingerprint(3), plan(3));
        assert!(cache.get(PlanFingerprint(1)).is_some());
        assert!(cache.get(PlanFingerprint(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(PlanFingerprint(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = PlanCache::new(3, 1);
        assert_eq!(cache.shards.len(), 4);
        // Keys differing only in high bits land in one shard without panics.
        cache.insert(PlanFingerprint(0b100), plan(1));
        cache.insert(PlanFingerprint(0b1000100), plan(2));
        assert_eq!(cache.stats().entries, 1, "same shard, capacity 1: evicted");
    }
}

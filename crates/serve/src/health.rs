//! Service-wide health: a small state machine evaluated from live fault
//! signals.
//!
//! The service does not *latch* health transitions — [`HealthState::evaluate`]
//! is a pure function of the current [`HealthSignals`], recomputed on every
//! probe. That gives the required automatic recovery for free: when the store
//! writer's next append succeeds it clears the impairment flag, and the next
//! health probe reports [`HealthState::Healthy`] again without anyone having
//! to "reset" anything.
//!
//! Precedence: `Draining` wins over everything (the operator asked the
//! service to go away; degraded-ness of a service that is leaving is not
//! actionable), then `Degraded` with the full list of reasons, then
//! `Healthy`.

/// Why a service reports [`HealthState::Degraded`]. The gateway serializes
/// these into the `/healthz` body via [`HealthReason::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthReason {
    /// The durable store's write path has exhausted a record's retry budget
    /// and not succeeded since: durability is impaired (served plans are
    /// correct but might not survive a crash).
    StoreWritesFailing,
    /// Fewer worker threads are alive than the configured pool size — jobs
    /// still complete, but throughput is reduced until the supervisor
    /// finishes respawning.
    WorkerPoolDegraded,
    /// The job queue is at ≥ 90% of its admission bound; submissions are
    /// about to be refused with 429s.
    QueueSaturated,
}

impl HealthReason {
    /// Stable machine-readable label (the `/healthz` wire form).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthReason::StoreWritesFailing => "store-writes-failing",
            HealthReason::WorkerPoolDegraded => "worker-pool-degraded",
            HealthReason::QueueSaturated => "queue-saturated",
        }
    }
}

/// The live fault signals health is computed from — a plain snapshot so the
/// evaluation itself is pure and unit-testable without a running service.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSignals {
    /// Whether a graceful drain has begun (refusing new work).
    pub draining: bool,
    /// Whether the store's write path is currently impaired (see
    /// [`crate::PlanStore::write_path_impaired`]).
    pub store_impaired: bool,
    /// Worker threads currently alive.
    pub live_workers: usize,
    /// Worker threads the pool was configured with.
    pub target_workers: usize,
    /// Jobs currently waiting in the queue.
    pub pending: usize,
    /// The queue's global admission bound.
    pub max_pending: usize,
}

/// The service-wide health state surfaced at `/healthz` and as the
/// `crowdtune_health_state` gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthState {
    /// Everything nominal: serving, durable, full pool, queue headroom.
    Healthy,
    /// Still serving, but impaired — the reasons say how. Probes should keep
    /// routing traffic here (HTTP 200): plans served in a degraded state are
    /// still bit-correct.
    Degraded {
        /// Every currently-firing degradation signal, in a stable order.
        reasons: Vec<HealthReason>,
    },
    /// A graceful drain is in progress: new submissions are refused, probes
    /// should route traffic elsewhere (HTTP 503).
    Draining,
}

impl HealthState {
    /// Evaluates health from a snapshot of the fault signals. Pure: same
    /// signals, same state.
    pub fn evaluate(signals: &HealthSignals) -> HealthState {
        if signals.draining {
            return HealthState::Draining;
        }
        let mut reasons = Vec::new();
        if signals.store_impaired {
            reasons.push(HealthReason::StoreWritesFailing);
        }
        if signals.live_workers < signals.target_workers {
            reasons.push(HealthReason::WorkerPoolDegraded);
        }
        // Saturated at ≥ 90% of the bound, computed in integers:
        // pending/max ≥ 9/10  ⇔  pending·10 ≥ max·9.
        if signals.max_pending > 0 && signals.pending * 10 >= signals.max_pending * 9 {
            reasons.push(HealthReason::QueueSaturated);
        }
        if reasons.is_empty() {
            HealthState::Healthy
        } else {
            HealthState::Degraded { reasons }
        }
    }

    /// Stable machine-readable label (the `/healthz` `status` field).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Draining => "draining",
        }
    }

    /// Numeric code for the `crowdtune_health_state` gauge: 0 healthy,
    /// 1 degraded, 2 draining.
    pub fn code(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded { .. } => 1,
            HealthState::Draining => 2,
        }
    }

    /// The degradation reasons (empty unless `Degraded`).
    pub fn reasons(&self) -> &[HealthReason] {
        match self {
            HealthState::Degraded { reasons } => reasons,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> HealthSignals {
        HealthSignals {
            draining: false,
            store_impaired: false,
            live_workers: 4,
            target_workers: 4,
            pending: 0,
            max_pending: 100,
        }
    }

    #[test]
    fn nominal_is_healthy() {
        assert_eq!(HealthState::evaluate(&nominal()), HealthState::Healthy);
        assert_eq!(HealthState::Healthy.code(), 0);
        assert_eq!(HealthState::Healthy.label(), "healthy");
        assert!(HealthState::Healthy.reasons().is_empty());
    }

    #[test]
    fn draining_wins_over_everything() {
        let state = HealthState::evaluate(&HealthSignals {
            draining: true,
            store_impaired: true,
            live_workers: 0,
            ..nominal()
        });
        assert_eq!(state, HealthState::Draining);
        assert_eq!(state.code(), 2);
        assert_eq!(state.label(), "draining");
        assert!(state.reasons().is_empty());
    }

    #[test]
    fn store_impairment_degrades_and_recovers() {
        let degraded = HealthState::evaluate(&HealthSignals {
            store_impaired: true,
            ..nominal()
        });
        assert_eq!(degraded.label(), "degraded");
        assert_eq!(degraded.code(), 1);
        assert_eq!(degraded.reasons(), &[HealthReason::StoreWritesFailing]);
        // Evaluation is pure: the signal clearing *is* the recovery.
        assert_eq!(HealthState::evaluate(&nominal()), HealthState::Healthy);
    }

    #[test]
    fn dead_workers_degrade_until_respawned() {
        let state = HealthState::evaluate(&HealthSignals {
            live_workers: 3,
            ..nominal()
        });
        assert_eq!(state.reasons(), &[HealthReason::WorkerPoolDegraded]);
    }

    #[test]
    fn queue_saturation_threshold_is_ninety_percent() {
        let below = HealthState::evaluate(&HealthSignals {
            pending: 89,
            ..nominal()
        });
        assert_eq!(below, HealthState::Healthy);
        let at = HealthState::evaluate(&HealthSignals {
            pending: 90,
            ..nominal()
        });
        assert_eq!(at.reasons(), &[HealthReason::QueueSaturated]);
        // An unbounded-looking zero max never divides by zero or saturates.
        let zero = HealthState::evaluate(&HealthSignals {
            pending: 10,
            max_pending: 0,
            ..nominal()
        });
        assert_eq!(zero, HealthState::Healthy);
    }

    #[test]
    fn reasons_accumulate_in_stable_order() {
        let state = HealthState::evaluate(&HealthSignals {
            store_impaired: true,
            live_workers: 1,
            pending: 100,
            ..nominal()
        });
        assert_eq!(
            state.reasons(),
            &[
                HealthReason::StoreWritesFailing,
                HealthReason::WorkerPoolDegraded,
                HealthReason::QueueSaturated,
            ]
        );
        assert_eq!(
            state
                .reasons()
                .iter()
                .map(|reason| reason.as_str())
                .collect::<Vec<_>>(),
            vec![
                "store-writes-failing",
                "worker-pool-degraded",
                "queue-saturated"
            ]
        );
    }
}

//! The tuning service: a pool of tuner workers draining the multi-tenant
//! [`JobQueue`], with two reuse layers in front of the solver — the
//! exact-match sharded [`PlanCache`] and the cross-budget
//! [`PlanFamilies`] store.
//!
//! Submissions return a [`JobHandle`] immediately; the plan is delivered
//! through it when a worker finishes (or straight from the cache). The
//! service is deliberately transport-agnostic — an HTTP/gRPC front-end is a
//! thin layer over [`TuningService::submit`] (see ROADMAP).

use crate::cache::{CacheStats, PlanCache};
use crate::family::{FamilyServe, FamilyStats, PlanFamilies};
use crate::fingerprint::{FamilyFingerprint, PlanFingerprint};
use crate::health::{HealthSignals, HealthState};
use crate::queue::{AdmissionError, AdmissionPolicy, JobQueue};
use crate::retuner::{RetunePolicy, Retuner};
use crate::router::{MarketRouter, RoutedPlan};
use crate::store::{JournalRecord, PlanStore, StoreError, StoreOptions, StoreSnapshot, StoreStats};
use crowdtune_core::algorithms::MAX_TABLE_PAYMENT;
use crowdtune_core::error::CoreError;
use crowdtune_core::market::MarketId;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, Scenario};
use crowdtune_core::rate::{LinearRate, RateModel, TabulatedRate};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use crowdtune_market::MarketRegistry;
use crowdtune_obs::{
    ActiveTrace, Counter, Gauge, Histogram, JobTrace, LogLevel, Logger, LoggerConfig, Registry,
    SlowestRing, TraceContext, Tracer, TracerConfig,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tuning job as submitted by a tenant.
#[derive(Clone)]
pub struct JobRequest {
    /// Tenant identifier; fairness and per-tenant admission are keyed on it.
    pub tenant: String,
    /// The market the job is tuned against. Jobs naming a market the
    /// service does not know are rejected at the door; services started
    /// without an explicit registry run one default market, so
    /// [`MarketId::DEFAULT`] always exists.
    pub market: MarketId,
    /// The job's atomic tasks.
    pub task_set: TaskSet,
    /// Total budget.
    pub budget: Budget,
    /// The tenant's current market belief.
    pub rate_model: Arc<dyn RateModel>,
    /// Strategy override; `Auto` picks EA/RA/HA per scenario.
    pub strategy: StrategyChoice,
}

impl fmt::Debug for JobRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobRequest")
            .field("tenant", &self.tenant)
            .field("market", &self.market)
            .field("tasks", &self.task_set.len())
            .field("budget", &self.budget)
            .finish()
    }
}

/// Which reuse layer (if any) answered a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Exact-match hit in the [`PlanCache`]: same workload, same budget.
    CacheHit,
    /// Answered from a resident plan family: same workload, different
    /// budget — a prefix read or in-place extension of the family's shared
    /// DP table.
    FamilyHit,
    /// A full cold solve (which seeds the family for eligible jobs).
    ColdSolve,
}

/// A completed tuning job.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// Service-assigned job id.
    pub job_id: u64,
    /// The tuned plan. Cache hits share the same `Arc` as the original cold
    /// solve, and family hits are bit-identical to a cold solve at the job's
    /// budget by construction.
    pub plan: Arc<TunedPlan>,
    /// Which reuse layer answered the job.
    pub source: PlanSource,
}

impl ServedPlan {
    /// Whether the plan was reused (exact-match or family) rather than
    /// solved cold.
    pub fn reused(&self) -> bool {
        self.source != PlanSource::ColdSolve
    }
}

/// Errors a submission can surface.
#[derive(Debug)]
pub enum ServeError {
    /// Refused at the door by admission control.
    Admission(AdmissionError),
    /// The solver rejected the problem (e.g. insufficient budget).
    Tuning(CoreError),
    /// The worker processing the job disappeared (service shut down).
    WorkerGone,
    /// The job's solve panicked inside the worker (a hostile objective or
    /// rate model). The worker caught it and keeps serving — only this job
    /// failed, and its journal record is retired with a terminal `Failed`
    /// entry so recovery never replays the poison job.
    WorkerPanic {
        /// The panic payload rendered to text (when it carried one).
        detail: String,
    },
    /// The worker thread serving the job died mid-job (e.g. a chaos-injected
    /// [`WorkerDeath`]). The supervisor respawns the worker; this job fails
    /// with its journal record retired.
    WorkerLost,
    /// The durable store could not be opened (I/O failure). Runtime write
    /// failures never surface here — they only degrade durability (see
    /// [`StoreStats::write_errors`]).
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Admission(e) => write!(f, "admission: {e}"),
            ServeError::Tuning(e) => write!(f, "tuning: {e}"),
            ServeError::WorkerGone => f.write_str("service shut down before the job completed"),
            ServeError::WorkerPanic { detail } => {
                write!(f, "the job's solve panicked in the worker: {detail}")
            }
            ServeError::WorkerLost => {
                f.write_str("the worker thread serving the job died (respawned)")
            }
            ServeError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

/// Panic payload that instructs a worker thread to die instead of surviving
/// the panic: `std::panic::panic_any(WorkerDeath)` inside a solve kills the
/// worker (the supervisor respawns it, the job fails with
/// [`ServeError::WorkerLost`]), where any other panic payload is contained
/// to the job. Exists for the chaos harness — production code never throws
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDeath;

impl std::error::Error for ServeError {}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Handle to a submitted job; resolves to the plan.
#[derive(Debug)]
pub struct JobHandle {
    /// Service-assigned job id.
    pub job_id: u64,
    receiver: mpsc::Receiver<Result<ServedPlan, ServeError>>,
}

/// A completion hook for event-driven front-ends: invoked with the job id
/// exactly once, after the outcome is deliverable via
/// [`JobHandle::try_result`]. See [`TuningService::submit_with_notify`].
pub type CompletionNotify = Arc<dyn Fn(u64) + Send + Sync>;

/// Fires the completion hook exactly once — normally right after the worker
/// delivers the outcome, but also on drop, so a job discarded while still
/// queued (service drain, queue teardown) still wakes its observer instead
/// of leaving an event loop parked on a notification that never comes (the
/// observer then reads [`ServeError::WorkerGone`] from the dropped channel).
struct NotifyOnce {
    job_id: u64,
    hook: Option<CompletionNotify>,
}

impl NotifyOnce {
    fn fire(&mut self) {
        if let Some(hook) = self.hook.take() {
            hook(self.job_id);
        }
    }
}

impl Drop for NotifyOnce {
    fn drop(&mut self) {
        self.fire();
    }
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(self) -> Result<ServedPlan, ServeError> {
        self.receiver.recv().unwrap_or(Err(ServeError::WorkerGone))
    }

    /// Non-blocking poll: `None` while the job is still in flight, the
    /// outcome once a worker delivered it. The outcome is delivered **once**
    /// — a transport front-end polling on behalf of a client must retain it;
    /// a later call reports [`ServeError::WorkerGone`].
    pub fn try_result(&self) -> Option<Result<ServedPlan, ServeError>> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerGone)),
        }
    }
}

/// Sizing of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of tuner worker threads.
    pub workers: usize,
    /// Queue depth limits.
    pub admission: AdmissionPolicy,
    /// Number of plan-cache shards.
    pub cache_shards: usize,
    /// Plans retained per shard.
    pub cache_capacity_per_shard: usize,
    /// Number of plan-family shards (each LRU-bounded; with a durable store
    /// attached, evicted families remain rehydratable from their persisted
    /// snapshots).
    pub family_shards: usize,
    /// Whether the telemetry spine records (stage stamps, per-stage
    /// histograms, the slowest-trace ring). On by default; switched off only
    /// by the instrumentation-overhead benchmark guard. Counters and the
    /// registry itself stay live either way — they are the same cells the
    /// legacy stats snapshots read.
    pub telemetry: bool,
    /// Completed traces retained by the slowest-trace ring
    /// (see [`TuningService::slowest_traces`]).
    pub slowest_capacity: usize,
    /// Whether causal request tracing records span trees (requires
    /// `telemetry`; the effective setting is `telemetry && tracing`). With
    /// tracing on, every job accumulates spans into an [`ActiveTrace`] and
    /// the [`Tracer`]'s head/tail sampling decides at completion whether the
    /// tree is kept (see [`TuningService::tracer`]).
    pub tracing: bool,
    /// Sampling and capacity policy of the tracer (head-sample rate, slow
    /// threshold, span-store ring size).
    pub tracing_config: TracerConfig,
    /// Level, rate-limit and ring policy of the structured logger. The
    /// logger is always live (its counters are part of the exposition
    /// contract); the level floor and rate limit bound its cost.
    pub logging: LoggerConfig,
    /// Whether re-tuners built via [`TuningService::retuner`] auto-feed
    /// their acceptance observations into the service's
    /// [`MarketRegistry`] drift detector, so confirmed drift on a served
    /// job's own repetitions becomes registry evidence without manual
    /// wiring.
    pub feed_drift_evidence: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            admission: AdmissionPolicy::default(),
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            family_shards: 8,
            telemetry: true,
            slowest_capacity: 32,
            tracing: true,
            tracing_config: TracerConfig::default(),
            logging: LoggerConfig::default(),
            feed_drift_evidence: true,
        }
    }
}

/// Service-level counters (monotone), backed by registry-shared cells: the
/// Prometheus scrape and [`TuningService::metrics`] read the same atomics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: Counter,
    rejected: Counter,
    cache_hits: Counter,
    family_hits: Counter,
    cold_solves: Counter,
    solve_errors: Counter,
    worker_panics: Counter,
    worker_restarts: Counter,
}

impl ServiceMetrics {
    /// Registers the counter cells. Order is the scrape contract: the
    /// per-source "parts" (and failures) come before the `submitted`
    /// "whole", and every part increment strictly follows the matching
    /// `submitted` increment, so a concurrent scrape can never observe
    /// `cache + family + cold + failed > submitted`.
    fn register(&self, registry: &Registry) {
        for (source, cell) in [
            ("cache", &self.cache_hits),
            ("family", &self.family_hits),
            ("cold", &self.cold_solves),
        ] {
            registry.register_counter(
                "crowdtune_jobs_answered_total",
                "Jobs answered, by the reuse layer that produced the plan.",
                &[("source", source)],
                cell.clone(),
            );
        }
        registry.register_counter(
            "crowdtune_jobs_failed_total",
            "Jobs whose solve failed.",
            &[],
            self.solve_errors.clone(),
        );
        registry.register_counter(
            "crowdtune_jobs_submitted_total",
            "Jobs accepted into the queue.",
            &[],
            self.submitted.clone(),
        );
        registry.register_counter(
            "crowdtune_jobs_rejected_total",
            "Jobs refused by admission control (or shed while draining).",
            &[],
            self.rejected.clone(),
        );
        registry.register_counter(
            "crowdtune_worker_panics_total",
            "Job solves that panicked inside a worker (caught and contained).",
            &[],
            self.worker_panics.clone(),
        );
        registry.register_counter(
            "crowdtune_worker_restarts_total",
            "Dead worker threads respawned by the supervisor.",
            &[],
            self.worker_restarts.clone(),
        );
    }
}

/// Scenario label values, indexed by [`scenario_index`].
const SCENARIO_LABELS: [&str; 3] = ["EA", "RA", "HA"];
/// Plan-source label values, indexed by [`source_index`].
const SOURCE_LABELS: [&str; 3] = ["cache", "family", "cold"];

fn scenario_index(scenario: Scenario) -> usize {
    match scenario {
        Scenario::Homogeneous => 0,
        Scenario::Repetition => 1,
        Scenario::Heterogeneous => 2,
    }
}

fn source_index(source: PlanSource) -> usize {
    match source {
        PlanSource::CacheHit => 0,
        PlanSource::FamilyHit => 1,
        PlanSource::ColdSolve => 2,
    }
}

/// Per-stage latency histograms, indexed `[market][scenario][source]`. The
/// market axis is bounded by the registry's static market set, so the label
/// cardinality is fixed at boot.
struct StageHists {
    queue_wait: Vec<[[Histogram; 3]; 3]>,
    solve: Vec<[[Histogram; 3]; 3]>,
    estimate: Vec<[[Histogram; 3]; 3]>,
    total: Vec<[[Histogram; 3]; 3]>,
    lock_wait: Vec<[[Histogram; 3]; 3]>,
    persist_lag: Vec<[[Histogram; 3]; 3]>,
}

/// One `{market, scenario, source}`-labelled family of nanosecond
/// histograms, exposed in seconds (scale `1e9`).
fn stage_family(
    registry: &Registry,
    name: &str,
    help: &str,
    markets: &[String],
) -> Vec<[[Histogram; 3]; 3]> {
    markets
        .iter()
        .map(|market| {
            std::array::from_fn(|si| {
                std::array::from_fn(|pi| {
                    registry.histogram(
                        name,
                        help,
                        &[
                            ("market", market.as_str()),
                            ("scenario", SCENARIO_LABELS[si]),
                            ("source", SOURCE_LABELS[pi]),
                        ],
                        1e9,
                    )
                })
            })
        })
        .collect()
}

/// The service's telemetry spine: the registry every layer publishes into,
/// the per-stage histograms, and the slowest-trace ring. With `enabled ==
/// false` every stamp helper returns 0 and per-job recording is skipped —
/// the hot path pays one branch (the overhead-guard configuration).
struct Telemetry {
    enabled: bool,
    /// Epoch for every [`JobTrace`] stamp taken by this service.
    epoch: Instant,
    registry: Arc<Registry>,
    /// Market names in registry order; the market axis of every stage
    /// histogram family is indexed by position in this list.
    market_names: Vec<String>,
    stage: StageHists,
    slowest: SlowestRing,
    /// The causal-tracing engine; `None` when telemetry or tracing is off —
    /// the hot path then pays exactly what it paid before spans existed.
    tracer: Option<Arc<Tracer>>,
    /// The structured JSON-lines logger (always live; level floor and rate
    /// limit bound its cost).
    logger: Arc<Logger>,
    pending_gauge: Gauge,
    draining_gauge: Gauge,
    cache_entries_gauge: Gauge,
    families_resident_gauge: Gauge,
    store_depth_gauge: Gauge,
    health_gauge: Gauge,
    workers_live_gauge: Gauge,
}

impl Telemetry {
    fn new(
        config: &ServiceConfig,
        registry: Arc<Registry>,
        market_names: Vec<String>,
    ) -> Telemetry {
        let stage = StageHists {
            queue_wait: stage_family(
                &registry,
                "crowdtune_job_queue_wait_seconds",
                "Time from tenant-lane visibility to worker pickup.",
                &market_names,
            ),
            solve: stage_family(
                &registry,
                "crowdtune_job_solve_seconds",
                "Time producing the plan (family-lock wait included).",
                &market_names,
            ),
            estimate: stage_family(
                &registry,
                "crowdtune_job_estimate_seconds",
                "Time attaching the analytic latency estimates to the plan.",
                &market_names,
            ),
            total: stage_family(
                &registry,
                "crowdtune_job_total_seconds",
                "End-to-end time from admission to response.",
                &market_names,
            ),
            lock_wait: stage_family(
                &registry,
                "crowdtune_job_family_lock_wait_seconds",
                "Time blocked on the plan-family entry lock.",
                &market_names,
            ),
            persist_lag: stage_family(
                &registry,
                "crowdtune_job_persist_lag_seconds",
                "Write-behind lag from plan enqueue to durable write.",
                &market_names,
            ),
        };
        let pending_gauge = registry.gauge(
            "crowdtune_jobs_pending",
            "Jobs currently waiting in the queue.",
            &[],
        );
        let draining_gauge = registry.gauge(
            "crowdtune_service_draining",
            "1 once a graceful drain has begun, else 0.",
            &[],
        );
        let cache_entries_gauge = registry.gauge(
            "crowdtune_cache_entries",
            "Plans resident in the exact-match cache.",
            &[],
        );
        let families_resident_gauge = registry.gauge(
            "crowdtune_families_resident",
            "Plan families resident in memory.",
            &[],
        );
        let store_depth_gauge = registry.gauge(
            "crowdtune_store_queue_depth",
            "Write-behind records waiting for the store writer.",
            &[],
        );
        let health_gauge = registry.gauge(
            "crowdtune_health_state",
            "Service health: 0 healthy, 1 degraded, 2 draining.",
            &[],
        );
        let workers_live_gauge = registry.gauge(
            "crowdtune_workers_live",
            "Tuner worker threads currently alive.",
            &[],
        );
        let tracer = (config.telemetry && config.tracing)
            .then(|| Tracer::new(&registry, config.tracing_config));
        let logger = Logger::new(&registry, config.logging);
        Telemetry {
            enabled: config.telemetry,
            epoch: Instant::now(),
            market_names,
            stage,
            slowest: SlowestRing::new(config.slowest_capacity),
            tracer,
            logger,
            pending_gauge,
            draining_gauge,
            cache_entries_gauge,
            families_resident_gauge,
            store_depth_gauge,
            health_gauge,
            workers_live_gauge,
            registry,
        }
    }

    /// Nanoseconds since the service epoch — 0 when telemetry is off (a
    /// zero stamp marks "not recorded" in a [`JobTrace`]). With tracing on,
    /// the tracer's epoch is the service epoch, so stage stamps and span
    /// boundaries live on one clock and [`JobTrace::record_spans`] can reuse
    /// the stamps verbatim.
    fn now_ns(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        match &self.tracer {
            Some(tracer) => tracer.now_ns(),
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Histogram indices for a labelled trace; `None` when telemetry was
    /// off, the job never produced a plan (labels unset), or the trace
    /// names a market this service does not track (e.g. a replay from a
    /// registry that shrank across a restart).
    fn market_scenario_source(&self, trace: &JobTrace) -> Option<(usize, usize, usize)> {
        let mi = self
            .market_names
            .iter()
            .position(|name| *name == trace.market)?;
        let si = SCENARIO_LABELS.iter().position(|&s| s == trace.scenario)?;
        let pi = SOURCE_LABELS.iter().position(|&s| s == trace.source)?;
        Some((mi, si, pi))
    }

    /// Folds a completed trace into the per-stage histograms and offers it
    /// to the slowest ring.
    fn record_job(&self, trace: JobTrace) {
        if let Some((mi, si, pi)) = self.market_scenario_source(&trace) {
            self.stage.queue_wait[mi][si][pi].record(trace.queue_wait_ns());
            self.stage.solve[mi][si][pi].record(trace.solve_ns());
            self.stage.estimate[mi][si][pi].record(trace.estimate_ns());
            self.stage.total[mi][si][pi].record(trace.total_ns());
            if trace.family_lock_wait_ns > 0 {
                self.stage.lock_wait[mi][si][pi].record(trace.family_lock_wait_ns);
            }
        }
        // Failed/panicked jobs never set scenario/source labels, so they
        // skip the per-stage histograms above — but the slowest ring must
        // still see them: the worst outcomes are exactly what
        // `/v1/debug/slowest` exists to surface. They carry a non-`"ok"`
        // [`JobTrace::status`].
        self.slowest.offer(trace);
    }

    /// The persist-lag histogram matching the trace's labels, if any.
    fn persist_hist(&self, trace: &JobTrace) -> Option<&Histogram> {
        self.market_scenario_source(trace)
            .map(|(mi, si, pi)| &self.stage.persist_lag[mi][si][pi])
    }
}

/// A point-in-time snapshot of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs answered by an exact-match plan-cache hit.
    pub cache_hits: u64,
    /// Jobs answered from a resident plan family (cross-budget reuse).
    pub family_hits: u64,
    /// Jobs answered by a full cold solve.
    pub cold_solves: u64,
    /// Jobs whose solve failed.
    pub solve_errors: u64,
    /// Job solves that panicked inside a worker (contained; counted in
    /// `solve_errors` too).
    pub worker_panics: u64,
    /// Dead worker threads respawned by the supervisor.
    pub worker_restarts: u64,
}

impl MetricsSnapshot {
    /// Jobs answered, however they were served:
    /// `cache_hits + family_hits + cold_solves`.
    pub fn completed(&self) -> u64 {
        self.cache_hits + self.family_hits + self.cold_solves
    }
}

struct QueuedJob {
    id: u64,
    request: JobRequest,
    /// Whether a `Submitted` journal record exists for this job (fresh
    /// journaled submits and recovery replays). Jobs without one must not
    /// journal a completion either — orphan `Completed` records would grow
    /// the uncompacted journal forever.
    journaled: bool,
    respond: mpsc::Sender<Result<ServedPlan, ServeError>>,
    /// Completion hook fired once the outcome is deliverable (or on drop,
    /// if the job is discarded unserved).
    notify: NotifyOnce,
    /// Stage stamps accumulated as the job moves through the pipeline
    /// (all zero when telemetry is off).
    trace: JobTrace,
    /// The live causal trace the job's spans join (`None` when tracing is
    /// off). Either minted at submit (in-process callers) or handed in by
    /// the transport front-end so the job span tree lands in the request's
    /// own trace.
    span: Option<ActiveTrace>,
}

/// What [`TuningService::recover`] found and replayed. Read with
/// [`TuningService::recovery_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Plans loaded into the exact-match cache.
    pub loaded_plans: u64,
    /// Validated family snapshots loaded into the rehydration archive.
    pub loaded_families: u64,
    /// Journaled in-flight jobs re-enqueued under their original ids.
    pub replayed_jobs: u64,
    /// Replayed jobs refused by admission control (they stay journaled and
    /// are retried on the next recovery, with their replay-attempt count
    /// bumped).
    pub dropped_replays: u64,
    /// Journaled jobs quarantined at recovery: their replay-attempt count
    /// exceeded the cap (a poison job that keeps killing the process, or a
    /// replay that keeps being refused), so a terminal `Failed` record was
    /// journaled instead of re-enqueueing them.
    pub quarantined: u64,
    /// Streams skipped whole for an unknown/mangled header.
    pub corrupt_streams: u64,
    /// Truncated or bit-flipped record suffixes dropped during replay.
    pub corrupt_tails: u64,
    /// Checksummed-valid records that failed semantic re-validation.
    pub invalid_records: u64,
}

/// One coherent observability snapshot of the whole service — the shape a
/// transport front-end (e.g. the `crowdtune-gateway` metrics endpoint)
/// reports. Read with [`TuningService::status`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceStatus {
    /// Service-level counters.
    pub metrics: MetricsSnapshot,
    /// Exact-match plan-cache counters.
    pub cache: CacheStats,
    /// Plan-family counters.
    pub families: FamilyStats,
    /// Write-behind store counters (`None` without a store). Includes the
    /// backpressure loss counter [`StoreStats::dropped`], so operators can
    /// see write-behind records shed under load.
    pub store: Option<StoreStats>,
    /// What recovery loaded (`None` without a store).
    pub recovery: Option<RecoveryStats>,
    /// Jobs currently waiting in the queue.
    pub pending: usize,
    /// Whether [`TuningService::begin_drain`] was called.
    pub draining: bool,
}

/// Replay-attempt cap: a journaled job that recovery has already replayed
/// this many times (it keeps killing the process, or keeps being refused
/// by admission) is quarantined — a terminal `Failed` record retires it and
/// [`RecoveryStats::quarantined`] counts it — instead of being replayed
/// forever.
pub const REPLAY_ATTEMPT_LIMIT: u32 = 3;

/// Everything a worker thread reads, `Arc`-shared with the supervisor so a
/// dead worker can be respawned with identical wiring.
struct WorkerContext {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Arc<PlanCache>,
    families: Arc<PlanFamilies>,
    metrics: Arc<ServiceMetrics>,
    store: Option<Arc<PlanStore>>,
    telemetry: Arc<Telemetry>,
    /// Worker threads currently alive (maintained by a drop guard inside
    /// each worker, so chaos-killed threads are counted out immediately).
    live_workers: Arc<AtomicUsize>,
}

fn spawn_worker(ctx: &Arc<WorkerContext>, index: usize) -> JoinHandle<()> {
    // Count the worker in before its thread runs: a health probe racing the
    // spawn must not see a transient hole in the pool.
    ctx.live_workers.fetch_add(1, Ordering::AcqRel);
    let ctx = Arc::clone(ctx);
    std::thread::Builder::new()
        .name(format!("tuner-worker-{index}"))
        .spawn(move || {
            struct LiveGuard(Arc<AtomicUsize>);
            impl Drop for LiveGuard {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::AcqRel);
                }
            }
            // Decrements on *any* exit — normal drain or an injected death.
            let _guard = LiveGuard(ctx.live_workers.clone());
            worker_loop(&ctx);
        })
        .expect("spawn tuner worker")
}

/// How often the supervisor scans the pool for dead workers. Bounds the
/// respawn latency; shutdown unparks the supervisor so it never waits a
/// full tick.
const SUPERVISOR_TICK: Duration = Duration::from_millis(20);

/// The worker supervisor: owns the pool's join handles, respawns any worker
/// that exited while the service is live, and joins the pool on stop. A
/// worker that drained a *closed* queue is an orderly exit, not a death —
/// respawning there would spin the pool forever on a drained service.
fn supervisor_loop(
    ctx: Arc<WorkerContext>,
    mut workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    restarts: Counter,
) {
    while !stop.load(Ordering::Acquire) {
        for (index, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() && !stop.load(Ordering::Acquire) && !ctx.queue.is_closed() {
                let dead = std::mem::replace(slot, spawn_worker(&ctx, index));
                let _ = dead.join();
                restarts.inc();
            }
        }
        std::thread::park_timeout(SUPERVISOR_TICK);
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// The multi-tenant tuning service.
pub struct TuningService {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Arc<PlanCache>,
    families: Arc<PlanFamilies>,
    markets: Arc<MarketRegistry>,
    router: Arc<MarketRouter>,
    metrics: Arc<ServiceMetrics>,
    telemetry: Arc<Telemetry>,
    store: Option<Arc<PlanStore>>,
    recovery: Option<RecoveryStats>,
    /// The supervisor thread owning the worker pool's join handles.
    supervisor: Option<JoinHandle<()>>,
    supervisor_stop: Arc<AtomicBool>,
    live_workers: Arc<AtomicUsize>,
    worker_target: usize,
    admission: AdmissionPolicy,
    feed_drift_evidence: bool,
    next_job_id: AtomicU64,
    draining: AtomicBool,
}

impl TuningService {
    /// Starts the worker pool with in-memory state only (no durability —
    /// restarts re-solve the working set) on a single default market.
    pub fn start(config: ServiceConfig) -> Self {
        Self::boot(config, None, Self::default_markets())
    }

    /// [`TuningService::start`] against an explicit market registry: every
    /// job names one of its markets, fingerprints and journal records carry
    /// the market id, and the cross-market [`MarketRouter`] solves against
    /// each market's belief.
    pub fn start_with_markets(config: ServiceConfig, markets: Arc<MarketRegistry>) -> Self {
        Self::boot(config, None, markets)
    }

    /// The registry a service runs when none is supplied: one default
    /// market. Its placeholder belief is never consulted on the serve path
    /// (jobs carry their own rate model); it only matters to the router,
    /// where a single market degenerates to plain tuning anyway.
    fn default_markets() -> Arc<MarketRegistry> {
        Arc::new(MarketRegistry::single(Arc::new(LinearRate::unit_slope())))
    }

    /// Starts the worker pool against a durable store directory, recovering
    /// whatever a previous process left there: persisted plans warm the
    /// exact-match cache, validated family snapshots arm the rehydration
    /// archive, and journaled in-flight jobs are re-enqueued under their
    /// original ids. An empty or absent directory is a fresh durable start.
    ///
    /// Every corruption mode (truncated tail, bit flip, version-mismatch
    /// header, semantically invalid record) degrades to cold solves —
    /// recovery never serves a wrong plan. Damage counts are reported via
    /// [`TuningService::recovery_stats`].
    pub fn recover(config: ServiceConfig, path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::recover_with(config, path, StoreOptions::default())
    }

    /// [`TuningService::recover`] with explicit [`StoreOptions`] (write-behind
    /// queue bound, fsync policy).
    pub fn recover_with(
        config: ServiceConfig,
        path: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<Self, ServeError> {
        Self::recover_with_markets(config, path, options, Self::default_markets())
    }

    /// [`TuningService::recover_with`] against an explicit market registry.
    /// Journals written before markets existed replay onto the default
    /// market (their records decode to [`MarketId::DEFAULT`]).
    pub fn recover_with_markets(
        config: ServiceConfig,
        path: impl AsRef<Path>,
        options: StoreOptions,
        markets: Arc<MarketRegistry>,
    ) -> Result<Self, ServeError> {
        let (store, snapshot) = PlanStore::open_with(path, options)?;
        Ok(Self::boot(config, Some((store, snapshot)), markets))
    }

    fn boot(
        config: ServiceConfig,
        durable: Option<(Arc<PlanStore>, StoreSnapshot)>,
        markets: Arc<MarketRegistry>,
    ) -> Self {
        let queue = Arc::new(JobQueue::new(config.admission));
        let cache = Arc::new(PlanCache::new(
            config.cache_shards,
            config.cache_capacity_per_shard,
        ));
        let mut next_job_id = 0;
        let mut recovery = None;
        let mut pending_jobs = Vec::new();
        let (families, store) = match durable {
            Some((store, snapshot)) => {
                let mut stats = RecoveryStats {
                    loaded_plans: snapshot.plans.len() as u64,
                    loaded_families: snapshot.families.len() as u64,
                    corrupt_streams: snapshot.report.corrupt_streams,
                    corrupt_tails: snapshot.report.corrupt_tails,
                    invalid_records: snapshot.report.invalid_records,
                    ..RecoveryStats::default()
                };
                for record in snapshot.plans {
                    cache.insert(PlanFingerprint(record.fingerprint), Arc::new(record.plan));
                }
                let families = Arc::new(PlanFamilies::durable(
                    config.family_shards,
                    store.clone(),
                    snapshot.families,
                ));
                // Rebuild the journaled in-flight jobs; enqueueing happens
                // after the workers are up. Invalid rate specs were already
                // filtered by the store's load path, but `build` re-validates
                // so a corrupt-but-checksummed spec only loses that job. The
                // original `PendingJob` rides along: the replay path
                // re-journals it with a bumped attempt count.
                for job in snapshot.pending_jobs {
                    match job.rate.build() {
                        Ok(rate_model) => {
                            let request = JobRequest {
                                tenant: job.tenant.clone(),
                                market: job.market,
                                task_set: job.task_set.clone(),
                                budget: Budget::units(job.budget),
                                rate_model,
                                strategy: job.strategy,
                            };
                            pending_jobs.push((job, request));
                        }
                        Err(_) => stats.invalid_records += 1,
                    }
                }
                next_job_id = snapshot.max_job_id + 1;
                recovery = Some(stats);
                (families, Some(store))
            }
            None => (Arc::new(PlanFamilies::new(config.family_shards)), None),
        };
        let metrics = Arc::new(ServiceMetrics::default());
        // One registry for the whole process; every layer registers the
        // cells its legacy stats snapshot reads, so a scrape and a snapshot
        // can never disagree. Registration order is the scrape contract —
        // "parts" before their "whole" (see `ServiceMetrics::register` and
        // `PlanStore::register_metrics`).
        let registry = Arc::new(Registry::new());
        metrics.register(&registry);
        cache.register_metrics(&registry);
        families.register_metrics(&registry);
        if let Some(store) = &store {
            store.register_metrics(&registry);
        }
        let router = Arc::new(MarketRouter::new(markets.clone(), families.clone()));
        router.register_metrics(&registry);
        let market_names = markets
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect::<Vec<_>>();
        let telemetry = Arc::new(Telemetry::new(&config, registry, market_names));
        let worker_target = config.workers.max(1);
        let live_workers = Arc::new(AtomicUsize::new(0));
        let ctx = Arc::new(WorkerContext {
            queue: queue.clone(),
            cache: cache.clone(),
            families: families.clone(),
            metrics: metrics.clone(),
            store: store.clone(),
            telemetry: telemetry.clone(),
            live_workers: live_workers.clone(),
        });
        let workers: Vec<JoinHandle<()>> = (0..worker_target)
            .map(|index| spawn_worker(&ctx, index))
            .collect();
        let supervisor_stop = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let stop = supervisor_stop.clone();
            let restarts = metrics.worker_restarts.clone();
            std::thread::Builder::new()
                .name("tuner-supervisor".to_owned())
                .spawn(move || supervisor_loop(ctx, workers, stop, restarts))
                .expect("spawn worker supervisor")
        };
        let mut service = TuningService {
            queue,
            cache,
            families,
            markets,
            router,
            metrics,
            telemetry,
            store,
            recovery,
            supervisor: Some(supervisor),
            supervisor_stop,
            live_workers,
            worker_target,
            admission: config.admission,
            feed_drift_evidence: config.feed_drift_evidence,
            next_job_id: AtomicU64::new(next_job_id),
            draining: AtomicBool::new(false),
        };
        // Replay in-flight work under the original ids. The handles are
        // dropped (whoever submitted the jobs is gone); the answers warm the
        // cache. Each replay first re-journals its `Submitted` record with a
        // bumped attempt count — durably, *before* the enqueue — so a job
        // that keeps killing the process runs out of attempts and is
        // quarantined with a terminal `Failed` record instead of replaying
        // forever.
        let mut replayed = 0;
        let mut dropped = 0;
        let mut quarantined = 0;
        for (job, request) in pending_jobs {
            let store = service
                .store
                .as_ref()
                .expect("pending jobs only exist with a store");
            if job.attempts >= REPLAY_ATTEMPT_LIMIT {
                store.record_journal(&JournalRecord::Failed { job_id: job.job_id });
                quarantined += 1;
                continue;
            }
            store.record_journal(&JournalRecord::Submitted {
                job_id: job.job_id,
                tenant: job.tenant,
                market: job.market,
                task_set: job.task_set,
                budget: job.budget,
                rate: job.rate,
                strategy: job.strategy,
                attempts: job.attempts + 1,
            });
            // `journaled: true` — completion (or terminal failure) must
            // retire the on-disk record.
            let span = service.start_job_trace(None);
            match service.enqueue_job(job.job_id, request, true, 0, None, span) {
                Ok(_handle) => replayed += 1,
                Err(_) => dropped += 1,
            }
        }
        if let Some(stats) = service.recovery.as_mut() {
            stats.replayed_jobs = replayed;
            stats.dropped_replays = dropped;
            stats.quarantined = quarantined;
        }
        service
    }

    /// Submits a job; returns immediately with a handle (or an admission
    /// error under back-pressure). With a durable store attached, accepted
    /// jobs whose rate model is serializable are journaled for crash
    /// recovery.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, ServeError> {
        let trace = self.start_job_trace(None);
        self.submit_inner(request, None, trace)
    }

    /// [`TuningService::submit`] under an explicit trace context: the job's
    /// span tree joins the caller's trace (its id, its parent span, its
    /// sampled flag — the in-process equivalent of sending a `traceparent`
    /// header to the gateway). With `None` a fresh trace is minted exactly
    /// as `submit` does. A no-op distinction when tracing is off.
    pub fn submit_traced(
        &self,
        request: JobRequest,
        context: Option<TraceContext>,
    ) -> Result<JobHandle, ServeError> {
        let trace = self.start_job_trace(context);
        self.submit_inner(request, None, trace)
    }

    /// Like [`TuningService::submit`], but additionally registers a
    /// completion hook: `notify` is invoked with the job id exactly once,
    /// *after* the outcome becomes readable via [`JobHandle::try_result`].
    /// This is the non-blocking integration point for event-driven
    /// front-ends (the gateway's reactor): instead of parking a thread in
    /// [`JobHandle::wait`] per pending job, the front-end polls
    /// `try_result` only when the hook fires. The hook also fires if the
    /// job is discarded unserved (drain, teardown) — `try_result` then
    /// reports [`ServeError::WorkerGone`] — so an event loop is never left
    /// waiting on a notification that cannot come. The hook runs on a
    /// worker (or teardown) thread: it must be cheap and must not block.
    pub fn submit_with_notify(
        &self,
        request: JobRequest,
        notify: CompletionNotify,
    ) -> Result<JobHandle, ServeError> {
        let trace = self.start_job_trace(None);
        self.submit_inner(request, Some(notify), trace)
    }

    /// The fully-observed submit: an optional completion hook plus an
    /// optional **live** trace handle. A transport front-end that already
    /// opened a trace for the request (the gateway's `http.request` root)
    /// passes its handle here so the job's spans — queue wait, solve,
    /// store persist — land in the request's own span tree instead of a
    /// service-minted one.
    pub fn submit_observed(
        &self,
        request: JobRequest,
        notify: Option<CompletionNotify>,
        trace: Option<ActiveTrace>,
    ) -> Result<JobHandle, ServeError> {
        let trace = trace.or_else(|| self.start_job_trace(None));
        self.submit_inner(request, notify, trace)
    }

    /// Mints the job's [`ActiveTrace`] when tracing is on: fresh ids (and
    /// the every-Nth head-sampling decision), or the caller's ids when an
    /// explicit context is handed in.
    fn start_job_trace(&self, context: Option<TraceContext>) -> Option<ActiveTrace> {
        self.telemetry
            .tracer
            .as_ref()
            .map(|tracer| tracer.start_trace("job.submit", context))
    }

    fn submit_inner(
        &self,
        request: JobRequest,
        notify: Option<CompletionNotify>,
        span: Option<ActiveTrace>,
    ) -> Result<JobHandle, ServeError> {
        // A draining service sheds at the door — before journaling, so the
        // refusal costs neither a journal record nor its retirement.
        if self.is_draining() {
            self.metrics.rejected.inc();
            return Err(ServeError::Admission(AdmissionError::Closed));
        }
        // Unknown markets are refused before any id, journal record or
        // queue slot is spent on them — the market set is static, so this
        // is a malformed submission, not a transient condition.
        if !self.markets.contains(request.market) {
            self.metrics.rejected.inc();
            return Err(ServeError::Tuning(CoreError::invalid_argument(format!(
                "unknown {}; registered markets: {}",
                request.market,
                self.markets.names().join(", ")
            ))));
        }
        let id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        // Stamp admission only when a journal write will separate admission
        // from queue insertion; otherwise `enqueue_job` stamps both stages
        // with one clock read (stamp 0 means "take it at enqueue").
        let admitted_ns = if self.store.is_some() {
            self.telemetry.now_ns()
        } else {
            0
        };
        // Journal *before* enqueueing so an accepted job can never be lost
        // between the queue and the journal; a rejected submission retires
        // its record immediately. (The journal and the completion share one
        // ordered writer queue, so `Submitted` always lands first.)
        let journaled = if let Some(store) = &self.store {
            // Models without a native spec (ad-hoc closures) are journaled
            // through a sampled tabulated stand-in so the job still
            // survives a crash. The exact-knot interpolation of
            // `TabulatedRate` makes the rebuilt model bit-identical to the
            // original at every on-grid payment, and the grid covers every
            // payment this job can award (capped at the shared-table bound
            // the solver samples anyway).
            let rate = request.rate_model.to_spec().or_else(|| {
                let grid = request.budget.as_units().min(MAX_TABLE_PAYMENT);
                TabulatedRate::sampled_from(request.rate_model.as_ref(), grid)
                    .ok()
                    .and_then(|table| table.to_spec())
            });
            match rate {
                Some(rate) => {
                    store.record_journal(&JournalRecord::Submitted {
                        job_id: id,
                        tenant: request.tenant.clone(),
                        market: request.market,
                        task_set: request.task_set.clone(),
                        budget: request.budget.as_units(),
                        rate,
                        strategy: request.strategy,
                        attempts: 0,
                    });
                    true
                }
                None => false,
            }
        } else {
            false
        };
        match self.enqueue_job(id, request, journaled, admitted_ns, notify, span) {
            Ok(handle) => Ok(handle),
            Err(e) => {
                if journaled {
                    if let Some(store) = &self.store {
                        store.record_journal(&JournalRecord::Completed { job_id: id });
                    }
                }
                Err(e)
            }
        }
    }

    /// Queue insertion shared by [`TuningService::submit`] and journal
    /// replay (which must not re-journal its `Submitted` record).
    fn enqueue_job(
        &self,
        id: u64,
        request: JobRequest,
        journaled: bool,
        admitted_ns: u64,
        notify: Option<CompletionNotify>,
        span: Option<ActiveTrace>,
    ) -> Result<JobHandle, ServeError> {
        let (sender, receiver) = mpsc::channel();
        let tenant = request.tenant.clone();
        let trace = if self.telemetry.enabled {
            let enqueued_ns = self.telemetry.now_ns();
            JobTrace {
                job_id: id,
                tenant: tenant.clone(),
                market: self
                    .markets
                    .name_of(request.market)
                    .unwrap_or_default()
                    .to_owned(),
                admitted_ns: if admitted_ns != 0 {
                    admitted_ns
                } else {
                    enqueued_ns
                },
                enqueued_ns,
                ..JobTrace::default()
            }
        } else {
            JobTrace::default()
        };
        let job = QueuedJob {
            id,
            request,
            journaled,
            respond: sender,
            notify: NotifyOnce {
                job_id: id,
                hook: notify,
            },
            trace,
            span,
        };
        match self.queue.submit(&tenant, job) {
            Ok(()) => {
                self.metrics.submitted.inc();
                Ok(JobHandle {
                    job_id: id,
                    receiver,
                })
            }
            Err(e) => {
                self.metrics.rejected.inc();
                Err(e.into())
            }
        }
    }

    /// Convenience: submit and wait.
    pub fn tune(&self, request: JobRequest) -> Result<ServedPlan, ServeError> {
        self.submit(request)?.wait()
    }

    /// The market registry this service runs against.
    pub fn markets(&self) -> Arc<MarketRegistry> {
        self.markets.clone()
    }

    /// The cross-market router sharing this service's family tables.
    pub fn router(&self) -> Arc<MarketRouter> {
        self.router.clone()
    }

    /// Routes a job across markets (see [`MarketRouter::route`]): splits
    /// its task groups over the registered markets when the assembled
    /// frontier beats every single-market tune, and falls back to plain
    /// single-market tuning otherwise. When tracing is on, the decision is
    /// recorded as a `router.split` span under a `router.route` trace.
    pub fn route(&self, task_set: &TaskSet, budget: Budget) -> Result<RoutedPlan, ServeError> {
        let trace = self
            .tracer()
            .map(|tracer| tracer.start_trace("router.route", None));
        let start_ns = trace.as_ref().map(|active| active.now_ns());
        let routed = self.router.route(task_set, budget);
        if let (Some(active), Some(start_ns)) = (&trace, start_ns) {
            let (status, attrs) = match &routed {
                Ok(plan) => {
                    let markets = match plan {
                        RoutedPlan::Split { groups, .. } => groups.len() as u64,
                        RoutedPlan::Single { .. } => 1,
                    };
                    (
                        crowdtune_obs::SpanStatus::Ok,
                        vec![
                            ("is_split", crowdtune_obs::AttrValue::Bool(plan.is_split())),
                            ("markets", crowdtune_obs::AttrValue::U64(markets)),
                        ],
                    )
                }
                Err(_) => (crowdtune_obs::SpanStatus::Error, Vec::new()),
            };
            if routed.is_err() {
                active.mark_error();
            }
            active.span_with(
                "router.split",
                None,
                start_ns,
                active.now_ns(),
                status,
                attrs,
            );
        }
        routed.map_err(ServeError::Tuning)
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Plan-family counters.
    pub fn family_stats(&self) -> FamilyStats {
        self.families.stats()
    }

    /// Service counters. Reads the per-source "parts" before the
    /// `submitted` "whole" (mirroring the registration order), so even a
    /// snapshot taken mid-flood satisfies `completed() <= submitted`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let cache_hits = self.metrics.cache_hits.get();
        let family_hits = self.metrics.family_hits.get();
        let cold_solves = self.metrics.cold_solves.get();
        let solve_errors = self.metrics.solve_errors.get();
        let worker_panics = self.metrics.worker_panics.get();
        let worker_restarts = self.metrics.worker_restarts.get();
        let rejected = self.metrics.rejected.get();
        let submitted = self.metrics.submitted.get();
        MetricsSnapshot {
            submitted,
            rejected,
            cache_hits,
            family_hits,
            cold_solves,
            solve_errors,
            worker_panics,
            worker_restarts,
        }
    }

    /// The metric registry every layer publishes into. A transport
    /// front-end registers its own metrics here so one scrape covers the
    /// whole process.
    pub fn registry(&self) -> Arc<Registry> {
        self.telemetry.registry.clone()
    }

    /// Whether the per-job telemetry spine is recording
    /// (see [`ServiceConfig::telemetry`]).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.enabled
    }

    /// Renders the registry as Prometheus text exposition format v0.0.4,
    /// refreshing the point-in-time gauges first.
    pub fn render_prometheus(&self) -> String {
        self.refresh_gauges();
        self.telemetry.registry.render_prometheus()
    }

    /// Renders the registry as JSON (same gauge refresh as
    /// [`TuningService::render_prometheus`]).
    pub fn render_metrics_json(&self) -> String {
        self.refresh_gauges();
        self.telemetry.registry.render_json()
    }

    fn refresh_gauges(&self) {
        let tel = &*self.telemetry;
        tel.pending_gauge.set(self.pending() as i64);
        tel.draining_gauge.set(self.is_draining() as i64);
        tel.cache_entries_gauge
            .set(self.cache_stats().entries as i64);
        tel.families_resident_gauge
            .set(self.family_stats().families as i64);
        if let Some(store) = self.store_stats() {
            tel.store_depth_gauge
                .set(store.enqueued.saturating_sub(store.retired) as i64);
        }
        tel.health_gauge.set(i64::from(self.health().code()));
        tel.workers_live_gauge
            .set(self.live_workers.load(Ordering::Acquire) as i64);
    }

    /// The slowest completed traces, slowest first — the payload of the
    /// gateway's `GET /v1/debug/slowest`. Includes failed and panicked jobs
    /// (their [`JobTrace::status`] is non-`"ok"`). Empty when telemetry is
    /// off.
    pub fn slowest_traces(&self) -> Vec<JobTrace> {
        self.telemetry.slowest.snapshot()
    }

    /// The causal-tracing engine, when tracing is on: the span clock, the
    /// sampling policy and the ring of kept traces behind
    /// `GET /v1/debug/traces`. A transport front-end starts its request
    /// roots here and hands the live handles to
    /// [`TuningService::submit_observed`].
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.telemetry.tracer.clone()
    }

    /// The structured JSON-lines logger (always live), behind
    /// `GET /v1/debug/logs`. Records emitted while a traced job solves are
    /// stamped with its trace/span ids.
    pub fn logger(&self) -> Arc<Logger> {
        self.telemetry.logger.clone()
    }

    /// Builds an online [`Retuner`] for a job served against `market`. With
    /// [`ServiceConfig::feed_drift_evidence`] on, the re-tuner's acceptance
    /// observations are forwarded into this service's [`MarketRegistry`]
    /// drift detector as they arrive — the evidence that re-tunes the job
    /// also accumulates toward registry-level confirmed drift, with no
    /// manual `observe_acceptance` wiring.
    pub fn retuner(
        &self,
        problem: HTuningProblem,
        strategy: StrategyChoice,
        policy: RetunePolicy,
        market: MarketId,
    ) -> Retuner {
        let retuner = Retuner::new(problem, strategy, policy);
        if self.feed_drift_evidence {
            retuner.with_evidence_sink(self.markets.clone(), market)
        } else {
            retuner
        }
    }

    /// Jobs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.pending()
    }

    /// Write-behind counters of the attached store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|store| store.stats())
    }

    /// What [`TuningService::recover`] loaded and replayed (`None` for a
    /// service started without a store).
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// One coherent snapshot of every counter surface, for transport
    /// front-ends reporting service health in a single response.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            metrics: self.metrics(),
            cache: self.cache_stats(),
            families: self.family_stats(),
            store: self.store_stats(),
            recovery: self.recovery_stats(),
            pending: self.pending(),
            draining: self.is_draining(),
        }
    }

    /// Evaluates the service-wide health state from the live fault signals:
    /// store write-path impairment, worker-pool attrition, and queue
    /// saturation (see [`HealthState::evaluate`] for the exact rules). The
    /// state is recomputed on every call — there is no latching, so a store
    /// whose writes recover flips the service back to `Healthy`
    /// automatically.
    pub fn health(&self) -> HealthState {
        HealthState::evaluate(&HealthSignals {
            draining: self.is_draining(),
            store_impaired: self
                .store
                .as_ref()
                .is_some_and(|store| store.write_path_impaired()),
            live_workers: self.live_workers.load(Ordering::Acquire),
            target_workers: self.worker_target,
            pending: self.pending(),
            max_pending: self.admission.max_pending,
        })
    }

    /// Starts a graceful drain: subsequent submissions are refused with
    /// [`AdmissionError::Closed`] (a transport front-end maps this to HTTP
    /// 503) while already-queued jobs keep being served; their handles
    /// resolve normally. Unlike [`TuningService::shutdown`] this does not
    /// block — poll [`TuningService::pending`] (or just call `shutdown`) to
    /// observe the drain completing. Idempotent.
    pub fn begin_drain(&self) {
        self.draining
            .store(true, std::sync::atomic::Ordering::Release);
        self.queue.close();
    }

    /// Whether [`TuningService::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Flushes the full working set to the durable store: every resident
    /// plan and family is re-recorded (catching up anything the bounded
    /// write-behind queue dropped under load), then the queue is drained.
    /// After this returns, a `recover` of the same directory warm-starts the
    /// entire current working set. A no-op without a store.
    pub fn flush_store(&self) {
        let Some(store) = &self.store else {
            return;
        };
        // Blocking enqueues: a flush has no latency constraint, and letting
        // the drop-oldest backpressure shed records here would break the
        // "a clean stop restarts fully warm" guarantee whenever the working
        // set outruns the writer (the default cache capacity alone equals
        // the default queue capacity).
        self.cache
            .for_each_entry(|key, plan| store.record_plan_blocking(key.0, plan));
        self.families.flush_resident();
        store.flush();
    }

    /// Stops supervision and the pool: the supervisor must see the stop
    /// flag *before* the queue closes (otherwise it would respawn workers
    /// into a closing pool), then joining it joins every worker it owns.
    fn stop_workers(&mut self) {
        self.supervisor_stop.store(true, Ordering::Release);
        self.queue.close();
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.thread().unpark();
            let _ = supervisor.join();
        }
    }

    /// Drains the queue and stops the workers; with a store attached, the
    /// working set is flushed first so the next [`TuningService::recover`]
    /// starts fully warm.
    pub fn shutdown(mut self) {
        self.stop_workers();
        self.flush_store();
        // Hand the store to its own Drop (queue drain) now; the service's
        // Drop must not flush the working set a second time.
        self.store = None;
    }
}

impl Drop for TuningService {
    fn drop(&mut self) {
        self.stop_workers();
        // Dropping the service is the planned-exit path (a crash never runs
        // this); make it durable. The store's own Drop then drains its queue.
        self.flush_store();
    }
}

/// Renders a panic payload for [`ServeError::WorkerPanic`]: the `&str` /
/// `String` payloads `panic!` produces are quoted verbatim, anything else is
/// opaque.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn worker_loop(ctx: &WorkerContext) {
    let WorkerContext {
        queue,
        cache,
        families,
        metrics,
        store,
        telemetry,
        ..
    } = ctx;
    let store = store.as_deref();
    while let Some(job) = queue.pop() {
        let QueuedJob {
            id,
            request,
            journaled,
            respond,
            mut notify,
            mut trace,
            span,
        } = job;
        trace.dequeued_ns = telemetry.now_ns();
        // Log records emitted while this job solves are stamped with its
        // trace/root-span ids (see `obs::log`).
        let _log_scope = span.as_ref().map(|active| {
            crowdtune_obs::span::enter_span(active.trace_id(), active.root_span_id())
        });
        // Panic isolation: a panicking objective or rate model fails *this
        // job* (typed `WorkerPanic`), not the thread. The solve takes no
        // lock before it can panic (family-table locks are acquired after
        // the model is validated inside `serve_timed`), so unwinding here
        // cannot poison shared state — hence the `AssertUnwindSafe`.
        let solved = catch_unwind(AssertUnwindSafe(|| {
            serve_one(cache, families, &request, telemetry, &mut trace)
        }));
        let (outcome, fatal) = match solved {
            Ok(outcome) => (outcome, false),
            Err(payload) => {
                metrics.worker_panics.inc();
                if payload.downcast_ref::<WorkerDeath>().is_some() {
                    // The one payload that *is* fatal: the injected
                    // worker-death marker. The observer gets a typed error,
                    // the supervisor respawns the thread.
                    (Err(ServeError::WorkerLost), true)
                } else {
                    (
                        Err(ServeError::WorkerPanic {
                            detail: panic_detail(payload.as_ref()),
                        }),
                        false,
                    )
                }
            }
        };
        match &outcome {
            Ok((_, PlanSource::CacheHit, _)) => metrics.cache_hits.inc(),
            Ok((_, PlanSource::FamilyHit, _)) => metrics.family_hits.inc(),
            Ok((_, PlanSource::ColdSolve, _)) => metrics.cold_solves.inc(),
            Err(_) => metrics.solve_errors.inc(),
        };
        // How the job ended, in the vocabulary of [`JobTrace::status`].
        let status = match &outcome {
            Ok(_) => "ok",
            Err(ServeError::WorkerLost) => "lost",
            Err(ServeError::WorkerPanic { .. }) => "panicked",
            Err(_) => "failed",
        };
        match &outcome {
            Err(ServeError::WorkerPanic { detail }) => telemetry.logger.log_with(
                LogLevel::Error,
                "serve::worker",
                "job solve panicked (contained)",
                vec![("job_id", id.to_string()), ("detail", detail.clone())],
            ),
            Err(ServeError::WorkerLost) => telemetry.logger.log_with(
                LogLevel::Error,
                "serve::worker",
                "worker thread died mid-job",
                vec![("job_id", id.to_string())],
            ),
            Err(error) => telemetry.logger.log_with(
                LogLevel::Warn,
                "serve::worker",
                "job solve failed",
                vec![("job_id", id.to_string()), ("error", error.to_string())],
            ),
            Ok(_) => {}
        }
        if let Some(store) = store {
            // Write-behind persistence: newly solved plans (cache hits are
            // already on disk) and, for journaled jobs, the terminal record.
            // Errors — panics included — retire the journal entry too: a
            // panicking job journals `Failed`, so recovery never replays a
            // poison job, while ordinary errors keep journaling `Completed`
            // as before. Unjournaled jobs (ad-hoc rate models) skip it: an
            // orphan terminal record per job would grow the uncompacted
            // journal for nothing.
            if let Ok((plan, source, fingerprint)) = &outcome {
                if *source != PlanSource::CacheHit {
                    // With telemetry on, the record carries the per-label
                    // persist-lag probe (the writer thread stamps the
                    // enqueue-to-durable-write interval into it) and, with
                    // tracing on, a clone of the job's trace handle — the
                    // writer records the `store.persist` span at retire,
                    // extending the trace past the response.
                    let lag_into = telemetry.persist_hist(&trace);
                    let persist_span = span
                        .as_ref()
                        .map(|active| (active.clone(), active.now_ns()));
                    if lag_into.is_none() && persist_span.is_none() {
                        store.record_plan(fingerprint.0, plan);
                    } else {
                        store.record_plan_observed(fingerprint.0, plan, lag_into, persist_span);
                    }
                }
            }
            if journaled {
                let record = match &outcome {
                    Err(ServeError::WorkerPanic { .. } | ServeError::WorkerLost) => {
                        JournalRecord::Failed { job_id: id }
                    }
                    _ => JournalRecord::Completed { job_id: id },
                };
                store.record_journal(&record);
            }
        }
        // The submitter may have dropped the handle; that is not an error.
        let _ = respond.send(outcome.map(|(plan, source, _)| ServedPlan {
            job_id: id,
            plan,
            source,
        }));
        // Completion hook *after* the send: by the time an event loop is
        // woken, `try_result` is guaranteed to yield the outcome.
        notify.fire();
        // Fold the trace in *after* responding — the histograms, the
        // slowest ring and the span render are off the submitter's latency
        // path. Failed and panicked jobs are folded too: they carry their
        // status into the slowest ring and mark their span tree errored
        // (which tail-samples the trace).
        if telemetry.enabled {
            trace.status = status;
            trace.completed_ns = telemetry.now_ns();
            if let Some(active) = &span {
                trace.record_spans(active);
            }
            telemetry.record_job(trace);
        }
        // Dropping `span` here may complete the trace (unless the store
        // writer still holds the persist-probe clone).
        drop(span);
        if fatal {
            return;
        }
    }
}

/// Whether the job resolves to the Repetition Algorithm, the one strategy
/// whose DP is budget-agnostic and therefore family-reusable (see the
/// `family` module docs for why EA and HA are excluded).
fn resolves_to_ra(problem: &HTuningProblem, strategy: StrategyChoice) -> bool {
    match strategy {
        StrategyChoice::RepetitionAlgorithm => true,
        StrategyChoice::Auto => problem.scenario() == Scenario::Repetition,
        StrategyChoice::EvenAllocation | StrategyChoice::HeterogeneousAlgorithm => false,
    }
}

/// The scenario whose algorithm served the job: the classified scenario
/// under `Auto`, otherwise the scenario the forced strategy belongs to
/// (telemetry labels report the algorithm that actually ran).
fn resolved_scenario(problem: &HTuningProblem, strategy: StrategyChoice) -> Scenario {
    match strategy {
        StrategyChoice::Auto => problem.scenario(),
        StrategyChoice::EvenAllocation => Scenario::Homogeneous,
        StrategyChoice::RepetitionAlgorithm => Scenario::Repetition,
        StrategyChoice::HeterogeneousAlgorithm => Scenario::Heterogeneous,
    }
}

/// Stamps the post-solve stages on `trace`: the estimate-attach boundary is
/// reconstructed from the reported `estimate_ns` so one clock read covers
/// both the solve-end and estimate-end stamps.
fn stamp_solved(
    trace: &mut JobTrace,
    telemetry: &Telemetry,
    scenario: Scenario,
    source: PlanSource,
    estimate_ns: u64,
) {
    trace.estimate_end_ns = telemetry.now_ns();
    trace.solve_end_ns = trace.estimate_end_ns.saturating_sub(estimate_ns);
    trace.scenario = SCENARIO_LABELS[scenario_index(scenario)];
    trace.source = SOURCE_LABELS[source_index(source)];
}

fn serve_one(
    cache: &PlanCache,
    families: &PlanFamilies,
    request: &JobRequest,
    telemetry: &Telemetry,
    trace: &mut JobTrace,
) -> Result<(Arc<TunedPlan>, PlanSource, PlanFingerprint), ServeError> {
    let problem = HTuningProblem::new(
        request.task_set.clone(),
        request.budget,
        request.rate_model.clone(),
    )
    .map_err(ServeError::Tuning)?;
    // Fingerprints fold the market in (default-market keys hash exactly as
    // the pre-market scheme), so plans and families solved against market A
    // can never answer market B.
    let fingerprint = PlanFingerprint::of_market(&problem, request.strategy, request.market);
    trace.solve_start_ns = telemetry.now_ns();
    if let Some(plan) = cache.get(fingerprint) {
        if telemetry.enabled {
            // No estimate step runs on a cache hit: estimate-end == solve-end.
            stamp_solved(
                trace,
                telemetry,
                resolved_scenario(&problem, request.strategy),
                PlanSource::CacheHit,
                0,
            );
        }
        return Ok((plan, PlanSource::CacheHit, fingerprint));
    }
    // RA-resolved jobs route through the family layer: a resident family
    // answers any budget from its shared table; a miss seeds the family with
    // this job's cold solve. Either way the plan lands in the exact-match
    // cache, so the PR 1 fast path above is unchanged.
    if resolves_to_ra(&problem, request.strategy) {
        let family = FamilyFingerprint::of_market(
            &problem,
            StrategyChoice::RepetitionAlgorithm,
            request.market,
        );
        let (plan, how, timing) = families
            .serve_timed(family, &problem)
            .map_err(ServeError::Tuning)?;
        let source = match how {
            FamilyServe::Hit => PlanSource::FamilyHit,
            FamilyServe::Seeded => PlanSource::ColdSolve,
        };
        if telemetry.enabled {
            stamp_solved(
                trace,
                telemetry,
                Scenario::Repetition,
                source,
                timing.estimate_ns,
            );
            trace.family_lock_wait_ns = timing.lock_wait_ns;
        }
        let plan = cache.insert(fingerprint, Arc::new(plan));
        return Ok((plan, source, fingerprint));
    }
    let tuner = Tuner::new(request.rate_model.clone()).with_strategy(request.strategy);
    let (plan, timing) = tuner
        .plan_timed(request.task_set.clone(), request.budget)
        .map_err(ServeError::Tuning)?;
    if telemetry.enabled {
        stamp_solved(
            trace,
            telemetry,
            resolved_scenario(&problem, request.strategy),
            PlanSource::ColdSolve,
            timing.estimate_ns,
        );
    }
    let plan = cache.insert(fingerprint, Arc::new(plan));
    Ok((plan, PlanSource::ColdSolve, fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    fn request(tenant: &str, tasks: usize, budget: u64) -> JobRequest {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, tasks).unwrap();
        JobRequest {
            tenant: tenant.to_owned(),
            market: MarketId::DEFAULT,
            task_set: set,
            budget: Budget::units(budget),
            rate_model: Arc::new(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
        }
    }

    #[test]
    fn serves_jobs_and_caches_repeats() {
        let service = TuningService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = service.tune(request("acme", 5, 60)).unwrap();
        assert_eq!(first.source, PlanSource::ColdSolve);
        assert!(!first.reused());
        let second = service.tune(request("acme", 5, 60)).unwrap();
        assert_eq!(
            second.source,
            PlanSource::CacheHit,
            "identical job must hit the plan cache"
        );
        assert!(
            Arc::ptr_eq(&first.plan, &second.plan),
            "cache hit returns the very same plan object"
        );
        // A different tenant with the same workload also hits.
        let third = service.tune(request("globex", 5, 60)).unwrap();
        assert_eq!(third.source, PlanSource::CacheHit);
        assert!(third.reused());

        let stats = service.cache_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        let metrics = service.metrics();
        assert_eq!(metrics.submitted, 3);
        assert_eq!(metrics.completed(), 3);
        service.shutdown();
    }

    /// The reuse layers are separately observable: an RA workload served at
    /// three budgets splits into one cold solve, one family hit (new budget,
    /// resident family) and one exact cache hit (repeated budget) — and
    /// `completed()` is exactly their sum.
    #[test]
    fn metrics_split_cold_family_and_cache_answers() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // Scenario II shape (two repetition classes) so Auto resolves to RA.
        let ra_request = |budget: u64| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 4).unwrap();
            set.add_tasks(ty, 5, 4).unwrap();
            JobRequest {
                tenant: "acme".to_owned(),
                market: MarketId::DEFAULT,
                task_set: set,
                budget: Budget::units(budget),
                rate_model: Arc::new(LinearRate::new(0.75, 1.0).unwrap()),
                strategy: StrategyChoice::Auto,
            }
        };
        let cold = service.tune(ra_request(120)).unwrap();
        assert_eq!(cold.source, PlanSource::ColdSolve);
        let family = service.tune(ra_request(90)).unwrap();
        assert_eq!(family.source, PlanSource::FamilyHit);
        let extended = service.tune(ra_request(240)).unwrap();
        assert_eq!(extended.source, PlanSource::FamilyHit);
        let repeat = service.tune(ra_request(120)).unwrap();
        assert_eq!(repeat.source, PlanSource::CacheHit);

        let metrics = service.metrics();
        assert_eq!(metrics.cold_solves, 1);
        assert_eq!(metrics.family_hits, 2);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.solve_errors, 0);
        assert_eq!(metrics.completed(), 4);

        let families = service.family_stats();
        assert_eq!(families.families, 1);
        assert_eq!(families.builds, 1);
        assert_eq!(families.hits, 2);
        assert_eq!(families.extensions, 1, "only budget 240 grows the table");
        service.shutdown();
    }

    /// Family answers must be bit-identical to cold solves of the same
    /// problem, and repeats of a family-served budget must hit the exact
    /// cache (the family layer feeds the PR 1 fast path, not replaces it).
    #[test]
    fn family_hits_match_cold_solves_and_feed_the_exact_cache() {
        let service = TuningService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let ra_request = |budget: u64| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 2, 3).unwrap();
            set.add_tasks(ty, 4, 3).unwrap();
            JobRequest {
                tenant: "acme".to_owned(),
                market: MarketId::DEFAULT,
                task_set: set,
                budget: Budget::units(budget),
                rate_model: Arc::new(LinearRate::new(1.5, 0.5).unwrap()),
                strategy: StrategyChoice::Auto,
            }
        };
        service.tune(ra_request(100)).unwrap();
        let served = service.tune(ra_request(64)).unwrap();
        assert_eq!(served.source, PlanSource::FamilyHit);
        let reference = Tuner::new(Arc::new(LinearRate::new(1.5, 0.5).unwrap()))
            .plan(ra_request(64).task_set, Budget::units(64))
            .unwrap();
        assert_eq!(served.plan.result.allocation, reference.result.allocation);
        assert_eq!(
            served.plan.expected_latency.to_bits(),
            reference.expected_latency.to_bits()
        );
        let repeat = service.tune(ra_request(64)).unwrap();
        assert_eq!(repeat.source, PlanSource::CacheHit);
        assert!(Arc::ptr_eq(&served.plan, &repeat.plan));
        service.shutdown();
    }

    /// The non-blocking poll a transport front-end uses: `None` while in
    /// flight, the outcome exactly once, `WorkerGone` afterwards.
    #[test]
    fn try_result_polls_without_blocking() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.submit(request("acme", 5, 60)).unwrap();
        let outcome = loop {
            match handle.try_result() {
                Some(outcome) => break outcome,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(outcome.unwrap().job_id, handle.job_id);
        assert!(
            matches!(handle.try_result(), Some(Err(ServeError::WorkerGone))),
            "the outcome is delivered once"
        );
        service.shutdown();
    }

    /// The event-driven integration contract: the completion hook fires
    /// exactly once, with the job id, and only after `try_result` can see
    /// the outcome — no polling loop required.
    #[test]
    fn submit_with_notify_fires_after_the_outcome_is_readable() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let (tx, rx) = mpsc::channel::<u64>();
        let handle = service
            .submit_with_notify(
                request("acme", 5, 60),
                Arc::new(move |job_id| {
                    let _ = tx.send(job_id);
                }),
            )
            .unwrap();
        let notified = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("completion hook fires");
        assert_eq!(notified, handle.job_id);
        let outcome = handle
            .try_result()
            .expect("outcome is readable once the hook has fired");
        assert_eq!(outcome.unwrap().job_id, notified);
        assert!(
            rx.try_recv().is_err(),
            "the hook fires exactly once per job"
        );
        service.shutdown();
    }

    /// `begin_drain` refuses new work with `Closed` (no journal churn) while
    /// already-accepted jobs still resolve.
    #[test]
    fn drain_refuses_new_submissions_but_serves_queued_work() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert!(!service.is_draining());
        let accepted = service.submit(request("acme", 5, 60)).unwrap();
        service.begin_drain();
        assert!(service.is_draining());
        assert!(service.status().draining);
        let err = service.submit(request("acme", 5, 60)).unwrap_err();
        assert!(
            matches!(err, ServeError::Admission(AdmissionError::Closed)),
            "{err}"
        );
        assert!(accepted.wait().is_ok(), "in-flight work still completes");
        assert_eq!(service.metrics().rejected, 1);
        service.shutdown();
    }

    /// `status()` is one coherent view over every counter surface.
    #[test]
    fn status_snapshot_agrees_with_individual_surfaces() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.tune(request("acme", 5, 60)).unwrap();
        service.tune(request("acme", 5, 60)).unwrap();
        let status = service.status();
        assert_eq!(status.metrics, service.metrics());
        assert_eq!(status.cache, service.cache_stats());
        assert_eq!(status.families, service.family_stats());
        assert!(status.store.is_none() && status.recovery.is_none());
        assert!(!status.draining);
        assert_eq!(status.metrics.completed(), 2);
        service.shutdown();
    }

    #[test]
    fn solver_errors_are_reported_not_fatal() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // 5 tasks × 3 reps = 15 slots; budget 10 is insufficient.
        let err = service.tune(request("acme", 5, 10)).unwrap_err();
        assert!(matches!(err, ServeError::Tuning(_)), "{err}");
        // The worker survives and keeps serving.
        assert!(service.tune(request("acme", 5, 60)).is_ok());
        assert_eq!(service.metrics().solve_errors, 1);
        service.shutdown();
    }

    #[test]
    fn admission_rejection_is_immediate() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            admission: AdmissionPolicy {
                max_pending: 1,
                max_pending_per_tenant: 1,
            },
            ..ServiceConfig::default()
        });
        // Flood faster than one worker can drain; eventually a submission
        // must bounce. (With a single worker and depth 1 the third rapid
        // submission is practically guaranteed to find the queue full.)
        let mut handles = Vec::new();
        let mut rejected = false;
        for _ in 0..64 {
            match service.submit(request("acme", 40, 400)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Admission(_)) => {
                    rejected = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(rejected, "back-pressure must reject under flood");
        for h in handles {
            let _ = h.wait();
        }
        assert!(service.metrics().rejected >= 1);
        service.shutdown();
    }

    #[test]
    fn concurrent_tenants_all_get_served() {
        let service = Arc::new(TuningService::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        }));
        let mut joins = Vec::new();
        for tenant in 0..8 {
            let service = service.clone();
            joins.push(std::thread::spawn(move || {
                let mut hits = 0;
                for round in 0..10 {
                    let served = service
                        .tune(request(&format!("tenant-{tenant}"), 4 + round % 3, 80))
                        .unwrap();
                    if served.source == PlanSource::CacheHit {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        let total_hits: u32 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        // 8 tenants × 10 jobs over 3 distinct workloads: nearly everything
        // after the first three solves is a hit.
        assert!(
            total_hits >= 70,
            "expected heavy cache reuse, got {total_hits}"
        );
        assert_eq!(service.metrics().completed(), 80);
    }

    fn two_market_registry() -> Arc<MarketRegistry> {
        Arc::new(
            MarketRegistry::new(vec![
                (
                    MarketId::DEFAULT,
                    "amt".to_owned(),
                    Arc::new(LinearRate::unit_slope()) as Arc<dyn RateModel>,
                ),
                (
                    MarketId(1),
                    "prolific".to_owned(),
                    Arc::new(LinearRate::new(2.0, 0.5).unwrap()) as Arc<dyn RateModel>,
                ),
            ])
            .unwrap(),
        )
    }

    /// Identical workloads on different markets must not share plans: the
    /// market id is part of the cache and family keys.
    #[test]
    fn markets_never_share_cached_plans() {
        let service =
            TuningService::start_with_markets(ServiceConfig::default(), two_market_registry());
        let on_market = |market: MarketId| JobRequest {
            market,
            ..request("acme", 5, 60)
        };
        let first = service.tune(on_market(MarketId::DEFAULT)).unwrap();
        assert_eq!(first.source, PlanSource::ColdSolve);
        let other = service.tune(on_market(MarketId(1))).unwrap();
        assert_eq!(
            other.source,
            PlanSource::ColdSolve,
            "market B must never be answered by market A's plan"
        );
        let repeat = service.tune(on_market(MarketId::DEFAULT)).unwrap();
        assert_eq!(repeat.source, PlanSource::CacheHit);
        assert!(Arc::ptr_eq(&first.plan, &repeat.plan));
        service.shutdown();
    }

    /// Submissions naming an unregistered market are refused at the door
    /// (counted as rejected, no queue slot spent).
    #[test]
    fn unknown_markets_are_rejected_at_the_door() {
        let service =
            TuningService::start_with_markets(ServiceConfig::default(), two_market_registry());
        let err = service
            .tune(JobRequest {
                market: MarketId(9),
                ..request("acme", 5, 60)
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Tuning(_)), "{err}");
        assert!(err.to_string().contains("market-9"), "{err}");
        assert_eq!(service.metrics().rejected, 1);
        assert_eq!(service.metrics().submitted, 0);
        service.shutdown();
    }

    /// The per-market telemetry axis: jobs on different markets land in
    /// differently-labelled stage histograms, and the router's split
    /// counter rides the same scrape.
    #[test]
    fn stage_histograms_carry_the_market_label() {
        let service =
            TuningService::start_with_markets(ServiceConfig::default(), two_market_registry());
        service
            .tune(JobRequest {
                market: MarketId(1),
                ..request("acme", 5, 60)
            })
            .unwrap();
        // The trace folds into telemetry after the response is sent (off
        // the submitter's latency path), so wait for it to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let slowest = loop {
            let slowest = service.slowest_traces();
            if !slowest.is_empty() {
                break slowest;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "trace fold-in never settled"
            );
            std::thread::yield_now();
        };
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].market, "prolific");
        let exposition = service.render_prometheus();
        assert!(
            exposition.contains(r#"market="prolific",scenario="EA",source="cold""#),
            "expected a prolific-labelled stage sample:\n{exposition}"
        );
        assert!(exposition.contains("crowdtune_router_split_total 0"));
        service.shutdown();
    }

    /// Hostile model whose panic must be contained to its own job.
    #[derive(Debug)]
    struct PanickingRate;

    impl RateModel for PanickingRate {
        fn on_hold_rate(&self, _payment_units: f64) -> f64 {
            panic!("hostile rate model")
        }
        fn describe(&self) -> String {
            "panicking rate".to_owned()
        }
        fn curve_fingerprint(&self) -> u64 {
            0xbad0_bad0
        }
    }

    /// Chaos model that kills the worker thread outright (the one payload
    /// `catch_unwind` treats as fatal).
    #[derive(Debug)]
    struct MurderousRate;

    impl RateModel for MurderousRate {
        fn on_hold_rate(&self, _payment_units: f64) -> f64 {
            std::panic::panic_any(WorkerDeath)
        }
        fn describe(&self) -> String {
            "worker-killing rate".to_owned()
        }
        fn curve_fingerprint(&self) -> u64 {
            0xdead_0001
        }
    }

    /// A panicking rate model fails *its* job with the typed `WorkerPanic`
    /// (payload text preserved) while the worker thread survives — no
    /// restart, and the very next job on the same single-worker pool serves
    /// normally.
    #[test]
    fn panicking_model_fails_the_job_not_the_worker() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let hostile = JobRequest {
            rate_model: Arc::new(PanickingRate),
            ..request("acme", 5, 60)
        };
        let err = service.tune(hostile).unwrap_err();
        match &err {
            ServeError::WorkerPanic { detail } => {
                assert!(detail.contains("hostile rate model"), "{detail}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
        // The same worker keeps serving.
        assert!(service.tune(request("acme", 5, 60)).is_ok());
        let metrics = service.metrics();
        assert_eq!(metrics.worker_panics, 1);
        assert_eq!(metrics.worker_restarts, 0, "the thread never died");
        assert_eq!(metrics.solve_errors, 1, "panics count as solve errors");
        assert_eq!(service.health(), HealthState::Healthy);
        service.shutdown();
    }

    /// An injected worker death resolves the observer with the typed
    /// `WorkerLost`, the supervisor respawns the thread (restart counter,
    /// live-worker gauge), and health returns to `Healthy` once the pool is
    /// whole again.
    #[test]
    fn dead_workers_are_respawned_and_observers_get_worker_lost() {
        let service = TuningService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let lethal = JobRequest {
            rate_model: Arc::new(MurderousRate),
            ..request("acme", 5, 60)
        };
        let err = service.tune(lethal).unwrap_err();
        assert!(matches!(err, ServeError::WorkerLost), "{err}");
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.metrics().worker_restarts == 0 {
            assert!(Instant::now() < deadline, "supervisor never respawned");
            std::thread::sleep(Duration::from_millis(5));
        }
        while service.health() != HealthState::Healthy {
            assert!(Instant::now() < deadline, "pool never became whole again");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(service.tune(request("acme", 5, 60)).is_ok());
        let metrics = service.metrics();
        assert_eq!(metrics.worker_panics, 1);
        assert!(metrics.worker_restarts >= 1);
        service.shutdown();
    }

    /// Draining outranks every other health signal and maps to the 503 side
    /// of `/healthz`.
    #[test]
    fn health_reports_drain() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert_eq!(service.health(), HealthState::Healthy);
        service.begin_drain();
        assert_eq!(service.health(), HealthState::Draining);
        service.shutdown();
    }

    /// Waits (bounded) for a condition driven by the post-response trace
    /// fold-in, which runs on the worker thread after `respond.send`.
    fn poll_until<T>(mut probe: impl FnMut() -> Option<T>, what: &str) -> T {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(value) = probe() {
                return value;
            }
            assert!(Instant::now() < deadline, "{what} never settled");
            std::thread::yield_now();
        }
    }

    /// Satellite regression: a job that *fails* must still reach the
    /// slowest ring (carrying its status) and — because failures are
    /// errors — must be tail-sampled into the span store even when head
    /// sampling is off and the job was fast.
    #[test]
    fn failed_jobs_reach_the_ring_and_are_tail_sampled() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            tracing_config: TracerConfig {
                head_sample_every: 0,
                slow_threshold_ns: u64::MAX,
                capacity: 16,
            },
            ..ServiceConfig::default()
        });
        let trace_id = crowdtune_obs::TraceId(0xabc);
        let context = TraceContext {
            trace_id,
            parent: crowdtune_obs::SpanId(1),
            sampled: false,
        };
        let hostile = JobRequest {
            rate_model: Arc::new(PanickingRate),
            ..request("acme", 5, 60)
        };
        let handle = service.submit_traced(hostile, Some(context)).unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ServeError::WorkerPanic { .. }), "{err}");
        let slowest = poll_until(
            || {
                let slowest = service.slowest_traces();
                (!slowest.is_empty()).then_some(slowest)
            },
            "failed job's ring entry",
        );
        assert_eq!(slowest[0].status_str(), "panicked");
        assert!(!slowest[0].is_ok());
        let tracer = service.tracer().expect("tracing on");
        let stored = poll_until(|| tracer.store().get(trace_id), "error tail sample");
        assert_eq!(stored.reason, crowdtune_obs::SampleReason::TailError);
        assert_eq!(stored.status, crowdtune_obs::SpanStatus::Error);
        assert_eq!(stored.tenant, "acme");
        service.shutdown();
    }

    /// With a 1 ns slow threshold every job is "slow": even unsampled
    /// traces must land in the store with the `TailSlow` reason.
    #[test]
    fn slow_jobs_are_tail_sampled() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            tracing_config: TracerConfig {
                head_sample_every: 0,
                slow_threshold_ns: 1,
                capacity: 16,
            },
            ..ServiceConfig::default()
        });
        service.tune(request("acme", 5, 60)).unwrap();
        let tracer = service.tracer().expect("tracing on");
        let stored = poll_until(
            || tracer.store().snapshot().into_iter().next(),
            "slow-job tail sample",
        );
        assert_eq!(stored.reason, crowdtune_obs::SampleReason::TailSlow);
        assert_eq!(stored.status, crowdtune_obs::SpanStatus::Ok);
        service.shutdown();
    }

    /// The full-fidelity path: a caller-supplied sampled context yields a
    /// queryable span tree under the caller's trace id covering admission →
    /// queue wait → solve, and the tree reconstructs the stamp view.
    #[test]
    fn sampled_jobs_yield_a_span_tree_under_the_callers_trace_id() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let trace_id = crowdtune_obs::TraceId(0xfeed_beef);
        let context = TraceContext {
            trace_id,
            parent: crowdtune_obs::SpanId(7),
            sampled: true,
        };
        service
            .submit_traced(request("acme", 5, 60), Some(context))
            .unwrap()
            .wait()
            .unwrap();
        let tracer = service.tracer().expect("tracing on");
        let stored = poll_until(|| tracer.store().get(trace_id), "sampled span tree");
        assert_eq!(stored.reason, crowdtune_obs::SampleReason::Head);
        let names: Vec<&str> = stored.spans.iter().map(|s| s.name).collect();
        for expected in ["job.submit", "job", "queue.wait", "solve"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // Every span carries the caller's trace id, and the root continues
        // the caller's parent span.
        for span in &stored.spans {
            assert_eq!(span.trace_id, trace_id);
        }
        let root = stored
            .spans
            .iter()
            .find(|s| s.name == "job.submit")
            .unwrap();
        assert_eq!(root.parent, Some(crowdtune_obs::SpanId(7)));
        let view = JobTrace::from_spans(&stored.spans).expect("job span present");
        assert_eq!(view.tenant, "acme");
        assert_eq!(view.status_str(), "ok");
        assert!(view.solve_end_ns >= view.solve_start_ns);
        service.shutdown();
    }

    /// `tracing: false` (or telemetry off entirely) keeps the tracer out of
    /// the pipeline: no tracer handle, and jobs still serve.
    #[test]
    fn tracing_can_be_disabled_independently() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            tracing: false,
            ..ServiceConfig::default()
        });
        assert!(service.tracer().is_none());
        service.tune(request("acme", 5, 60)).unwrap();
        // The stamp-based debug surface still works without spans.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.slowest_traces().is_empty() {
            assert!(Instant::now() < deadline, "ring entry never settled");
            std::thread::yield_now();
        }
        service.shutdown();
    }
}

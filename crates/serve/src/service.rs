//! The tuning service: a pool of tuner workers draining the multi-tenant
//! [`JobQueue`], with two reuse layers in front of the solver — the
//! exact-match sharded [`PlanCache`] and the cross-budget
//! [`PlanFamilies`] store.
//!
//! Submissions return a [`JobHandle`] immediately; the plan is delivered
//! through it when a worker finishes (or straight from the cache). The
//! service is deliberately transport-agnostic — an HTTP/gRPC front-end is a
//! thin layer over [`TuningService::submit`] (see ROADMAP).

use crate::cache::{CacheStats, PlanCache};
use crate::family::{FamilyServe, FamilyStats, PlanFamilies};
use crate::fingerprint::{FamilyFingerprint, PlanFingerprint};
use crate::queue::{AdmissionError, AdmissionPolicy, JobQueue};
use crate::store::{JournalRecord, PlanStore, StoreError, StoreOptions, StoreSnapshot, StoreStats};
use crowdtune_core::error::CoreError;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, Scenario};
use crowdtune_core::rate::RateModel;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One tuning job as submitted by a tenant.
#[derive(Clone)]
pub struct JobRequest {
    /// Tenant identifier; fairness and per-tenant admission are keyed on it.
    pub tenant: String,
    /// The job's atomic tasks.
    pub task_set: TaskSet,
    /// Total budget.
    pub budget: Budget,
    /// The tenant's current market belief.
    pub rate_model: Arc<dyn RateModel>,
    /// Strategy override; `Auto` picks EA/RA/HA per scenario.
    pub strategy: StrategyChoice,
}

impl fmt::Debug for JobRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobRequest")
            .field("tenant", &self.tenant)
            .field("tasks", &self.task_set.len())
            .field("budget", &self.budget)
            .finish()
    }
}

/// Which reuse layer (if any) answered a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Exact-match hit in the [`PlanCache`]: same workload, same budget.
    CacheHit,
    /// Answered from a resident plan family: same workload, different
    /// budget — a prefix read or in-place extension of the family's shared
    /// DP table.
    FamilyHit,
    /// A full cold solve (which seeds the family for eligible jobs).
    ColdSolve,
}

/// A completed tuning job.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// Service-assigned job id.
    pub job_id: u64,
    /// The tuned plan. Cache hits share the same `Arc` as the original cold
    /// solve, and family hits are bit-identical to a cold solve at the job's
    /// budget by construction.
    pub plan: Arc<TunedPlan>,
    /// Which reuse layer answered the job.
    pub source: PlanSource,
}

impl ServedPlan {
    /// Whether the plan was reused (exact-match or family) rather than
    /// solved cold.
    pub fn reused(&self) -> bool {
        self.source != PlanSource::ColdSolve
    }
}

/// Errors a submission can surface.
#[derive(Debug)]
pub enum ServeError {
    /// Refused at the door by admission control.
    Admission(AdmissionError),
    /// The solver rejected the problem (e.g. insufficient budget).
    Tuning(CoreError),
    /// The worker processing the job disappeared (service shut down).
    WorkerGone,
    /// The durable store could not be opened (I/O failure). Runtime write
    /// failures never surface here — they only degrade durability (see
    /// [`StoreStats::write_errors`]).
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Admission(e) => write!(f, "admission: {e}"),
            ServeError::Tuning(e) => write!(f, "tuning: {e}"),
            ServeError::WorkerGone => f.write_str("service shut down before the job completed"),
            ServeError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Handle to a submitted job; resolves to the plan.
#[derive(Debug)]
pub struct JobHandle {
    /// Service-assigned job id.
    pub job_id: u64,
    receiver: mpsc::Receiver<Result<ServedPlan, ServeError>>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(self) -> Result<ServedPlan, ServeError> {
        self.receiver.recv().unwrap_or(Err(ServeError::WorkerGone))
    }

    /// Non-blocking poll: `None` while the job is still in flight, the
    /// outcome once a worker delivered it. The outcome is delivered **once**
    /// — a transport front-end polling on behalf of a client must retain it;
    /// a later call reports [`ServeError::WorkerGone`].
    pub fn try_result(&self) -> Option<Result<ServedPlan, ServeError>> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerGone)),
        }
    }
}

/// Sizing of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of tuner worker threads.
    pub workers: usize,
    /// Queue depth limits.
    pub admission: AdmissionPolicy,
    /// Number of plan-cache shards.
    pub cache_shards: usize,
    /// Plans retained per shard.
    pub cache_capacity_per_shard: usize,
    /// Number of plan-family shards (each LRU-bounded; with a durable store
    /// attached, evicted families remain rehydratable from their persisted
    /// snapshots).
    pub family_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            admission: AdmissionPolicy::default(),
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            family_shards: 8,
        }
    }
}

/// Service-level counters (monotone).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    family_hits: AtomicU64,
    cold_solves: AtomicU64,
    solve_errors: AtomicU64,
}

/// A point-in-time snapshot of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs answered by an exact-match plan-cache hit.
    pub cache_hits: u64,
    /// Jobs answered from a resident plan family (cross-budget reuse).
    pub family_hits: u64,
    /// Jobs answered by a full cold solve.
    pub cold_solves: u64,
    /// Jobs whose solve failed.
    pub solve_errors: u64,
}

impl MetricsSnapshot {
    /// Jobs answered, however they were served:
    /// `cache_hits + family_hits + cold_solves`.
    pub fn completed(&self) -> u64 {
        self.cache_hits + self.family_hits + self.cold_solves
    }
}

struct QueuedJob {
    id: u64,
    request: JobRequest,
    /// Whether a `Submitted` journal record exists for this job (fresh
    /// journaled submits and recovery replays). Jobs without one must not
    /// journal a completion either — orphan `Completed` records would grow
    /// the uncompacted journal forever.
    journaled: bool,
    respond: mpsc::Sender<Result<ServedPlan, ServeError>>,
}

/// What [`TuningService::recover`] found and replayed. Read with
/// [`TuningService::recovery_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Plans loaded into the exact-match cache.
    pub loaded_plans: u64,
    /// Validated family snapshots loaded into the rehydration archive.
    pub loaded_families: u64,
    /// Journaled in-flight jobs re-enqueued under their original ids.
    pub replayed_jobs: u64,
    /// Replayed jobs refused by admission control (they stay journaled and
    /// are retried on the next recovery).
    pub dropped_replays: u64,
    /// Streams skipped whole for an unknown/mangled header.
    pub corrupt_streams: u64,
    /// Truncated or bit-flipped record suffixes dropped during replay.
    pub corrupt_tails: u64,
    /// Checksummed-valid records that failed semantic re-validation.
    pub invalid_records: u64,
}

/// One coherent observability snapshot of the whole service — the shape a
/// transport front-end (e.g. the `crowdtune-gateway` metrics endpoint)
/// reports. Read with [`TuningService::status`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceStatus {
    /// Service-level counters.
    pub metrics: MetricsSnapshot,
    /// Exact-match plan-cache counters.
    pub cache: CacheStats,
    /// Plan-family counters.
    pub families: FamilyStats,
    /// Write-behind store counters (`None` without a store). Includes the
    /// backpressure loss counter [`StoreStats::dropped`], so operators can
    /// see write-behind records shed under load.
    pub store: Option<StoreStats>,
    /// What recovery loaded (`None` without a store).
    pub recovery: Option<RecoveryStats>,
    /// Jobs currently waiting in the queue.
    pub pending: usize,
    /// Whether [`TuningService::begin_drain`] was called.
    pub draining: bool,
}

/// The multi-tenant tuning service.
pub struct TuningService {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Arc<PlanCache>,
    families: Arc<PlanFamilies>,
    metrics: Arc<ServiceMetrics>,
    store: Option<Arc<PlanStore>>,
    recovery: Option<RecoveryStats>,
    workers: Vec<JoinHandle<()>>,
    next_job_id: AtomicU64,
    draining: std::sync::atomic::AtomicBool,
}

impl TuningService {
    /// Starts the worker pool with in-memory state only (no durability —
    /// restarts re-solve the working set).
    pub fn start(config: ServiceConfig) -> Self {
        Self::boot(config, None)
    }

    /// Starts the worker pool against a durable store directory, recovering
    /// whatever a previous process left there: persisted plans warm the
    /// exact-match cache, validated family snapshots arm the rehydration
    /// archive, and journaled in-flight jobs are re-enqueued under their
    /// original ids. An empty or absent directory is a fresh durable start.
    ///
    /// Every corruption mode (truncated tail, bit flip, version-mismatch
    /// header, semantically invalid record) degrades to cold solves —
    /// recovery never serves a wrong plan. Damage counts are reported via
    /// [`TuningService::recovery_stats`].
    pub fn recover(config: ServiceConfig, path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::recover_with(config, path, StoreOptions::default())
    }

    /// [`TuningService::recover`] with explicit [`StoreOptions`] (write-behind
    /// queue bound, fsync policy).
    pub fn recover_with(
        config: ServiceConfig,
        path: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<Self, ServeError> {
        let (store, snapshot) = PlanStore::open_with(path, options)?;
        Ok(Self::boot(config, Some((store, snapshot))))
    }

    fn boot(config: ServiceConfig, durable: Option<(Arc<PlanStore>, StoreSnapshot)>) -> Self {
        let queue = Arc::new(JobQueue::new(config.admission));
        let cache = Arc::new(PlanCache::new(
            config.cache_shards,
            config.cache_capacity_per_shard,
        ));
        let mut next_job_id = 0;
        let mut recovery = None;
        let mut pending_jobs = Vec::new();
        let (families, store) = match durable {
            Some((store, snapshot)) => {
                let mut stats = RecoveryStats {
                    loaded_plans: snapshot.plans.len() as u64,
                    loaded_families: snapshot.families.len() as u64,
                    corrupt_streams: snapshot.report.corrupt_streams,
                    corrupt_tails: snapshot.report.corrupt_tails,
                    invalid_records: snapshot.report.invalid_records,
                    ..RecoveryStats::default()
                };
                for record in snapshot.plans {
                    cache.insert(PlanFingerprint(record.fingerprint), Arc::new(record.plan));
                }
                let families = Arc::new(PlanFamilies::durable(
                    config.family_shards,
                    store.clone(),
                    snapshot.families,
                ));
                // Rebuild the journaled in-flight jobs; enqueueing happens
                // after the workers are up. Invalid rate specs were already
                // filtered by the store's load path, but `build` re-validates
                // so a corrupt-but-checksummed spec only loses that job.
                for job in snapshot.pending_jobs {
                    match job.rate.build() {
                        Ok(rate_model) => pending_jobs.push((
                            job.job_id,
                            JobRequest {
                                tenant: job.tenant,
                                task_set: job.task_set,
                                budget: Budget::units(job.budget),
                                rate_model,
                                strategy: job.strategy,
                            },
                        )),
                        Err(_) => stats.invalid_records += 1,
                    }
                }
                next_job_id = snapshot.max_job_id + 1;
                recovery = Some(stats);
                (families, Some(store))
            }
            None => (Arc::new(PlanFamilies::new(config.family_shards)), None),
        };
        let metrics = Arc::new(ServiceMetrics::default());
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let queue = queue.clone();
                let cache = cache.clone();
                let families = families.clone();
                let metrics = metrics.clone();
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("tuner-worker-{index}"))
                    .spawn(move || {
                        worker_loop(&queue, &cache, &families, &metrics, store.as_deref())
                    })
                    .expect("spawn tuner worker")
            })
            .collect();
        let mut service = TuningService {
            queue,
            cache,
            families,
            metrics,
            store,
            recovery,
            workers,
            next_job_id: AtomicU64::new(next_job_id),
            draining: std::sync::atomic::AtomicBool::new(false),
        };
        // Replay in-flight work under the original ids: the journal already
        // holds their `Submitted` records, so the replay is not re-journaled
        // — completion retires the original record. The handles are dropped
        // (whoever submitted the jobs is gone); the answers warm the cache.
        let mut replayed = 0;
        let mut dropped = 0;
        for (id, request) in pending_jobs {
            // `journaled: true` — the on-disk `Submitted` record is the one
            // being replayed; completion must retire it.
            match service.enqueue_job(id, request, true) {
                Ok(_handle) => replayed += 1,
                Err(_) => dropped += 1,
            }
        }
        if let Some(stats) = service.recovery.as_mut() {
            stats.replayed_jobs = replayed;
            stats.dropped_replays = dropped;
        }
        service
    }

    /// Submits a job; returns immediately with a handle (or an admission
    /// error under back-pressure). With a durable store attached, accepted
    /// jobs whose rate model is serializable are journaled for crash
    /// recovery.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, ServeError> {
        // A draining service sheds at the door — before journaling, so the
        // refusal costs neither a journal record nor its retirement.
        if self.is_draining() {
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Admission(AdmissionError::Closed));
        }
        let id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        // Journal *before* enqueueing so an accepted job can never be lost
        // between the queue and the journal; a rejected submission retires
        // its record immediately. (The journal and the completion share one
        // ordered writer queue, so `Submitted` always lands first.)
        let journaled = if let Some(store) = &self.store {
            if let Some(rate) = request.rate_model.to_spec() {
                store.record_journal(&JournalRecord::Submitted {
                    job_id: id,
                    tenant: request.tenant.clone(),
                    task_set: request.task_set.clone(),
                    budget: request.budget.as_units(),
                    rate,
                    strategy: request.strategy,
                });
                true
            } else {
                false
            }
        } else {
            false
        };
        match self.enqueue_job(id, request, journaled) {
            Ok(handle) => Ok(handle),
            Err(e) => {
                if journaled {
                    if let Some(store) = &self.store {
                        store.record_journal(&JournalRecord::Completed { job_id: id });
                    }
                }
                Err(e)
            }
        }
    }

    /// Queue insertion shared by [`TuningService::submit`] and journal
    /// replay (which must not re-journal its `Submitted` record).
    fn enqueue_job(
        &self,
        id: u64,
        request: JobRequest,
        journaled: bool,
    ) -> Result<JobHandle, ServeError> {
        let (sender, receiver) = mpsc::channel();
        let tenant = request.tenant.clone();
        let job = QueuedJob {
            id,
            request,
            journaled,
            respond: sender,
        };
        match self.queue.submit(&tenant, job) {
            Ok(()) => {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle {
                    job_id: id,
                    receiver,
                })
            }
            Err(e) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e.into())
            }
        }
    }

    /// Convenience: submit and wait.
    pub fn tune(&self, request: JobRequest) -> Result<ServedPlan, ServeError> {
        self.submit(request)?.wait()
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Plan-family counters.
    pub fn family_stats(&self) -> FamilyStats {
        self.families.stats()
    }

    /// Service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.metrics.submitted.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            cache_hits: self.metrics.cache_hits.load(Ordering::Relaxed),
            family_hits: self.metrics.family_hits.load(Ordering::Relaxed),
            cold_solves: self.metrics.cold_solves.load(Ordering::Relaxed),
            solve_errors: self.metrics.solve_errors.load(Ordering::Relaxed),
        }
    }

    /// Jobs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.pending()
    }

    /// Write-behind counters of the attached store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|store| store.stats())
    }

    /// What [`TuningService::recover`] loaded and replayed (`None` for a
    /// service started without a store).
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// One coherent snapshot of every counter surface, for transport
    /// front-ends reporting service health in a single response.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            metrics: self.metrics(),
            cache: self.cache_stats(),
            families: self.family_stats(),
            store: self.store_stats(),
            recovery: self.recovery_stats(),
            pending: self.pending(),
            draining: self.is_draining(),
        }
    }

    /// Starts a graceful drain: subsequent submissions are refused with
    /// [`AdmissionError::Closed`] (a transport front-end maps this to HTTP
    /// 503) while already-queued jobs keep being served; their handles
    /// resolve normally. Unlike [`TuningService::shutdown`] this does not
    /// block — poll [`TuningService::pending`] (or just call `shutdown`) to
    /// observe the drain completing. Idempotent.
    pub fn begin_drain(&self) {
        self.draining
            .store(true, std::sync::atomic::Ordering::Release);
        self.queue.close();
    }

    /// Whether [`TuningService::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Flushes the full working set to the durable store: every resident
    /// plan and family is re-recorded (catching up anything the bounded
    /// write-behind queue dropped under load), then the queue is drained.
    /// After this returns, a `recover` of the same directory warm-starts the
    /// entire current working set. A no-op without a store.
    pub fn flush_store(&self) {
        let Some(store) = &self.store else {
            return;
        };
        // Blocking enqueues: a flush has no latency constraint, and letting
        // the drop-oldest backpressure shed records here would break the
        // "a clean stop restarts fully warm" guarantee whenever the working
        // set outruns the writer (the default cache capacity alone equals
        // the default queue capacity).
        self.cache
            .for_each_entry(|key, plan| store.record_plan_blocking(key.0, plan));
        self.families.flush_resident();
        store.flush();
    }

    /// Drains the queue and stops the workers; with a store attached, the
    /// working set is flushed first so the next [`TuningService::recover`]
    /// starts fully warm.
    pub fn shutdown(mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.flush_store();
        // Hand the store to its own Drop (queue drain) now; the service's
        // Drop must not flush the working set a second time.
        self.store = None;
    }
}

impl Drop for TuningService {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Dropping the service is the planned-exit path (a crash never runs
        // this); make it durable. The store's own Drop then drains its queue.
        self.flush_store();
    }
}

fn worker_loop(
    queue: &JobQueue<QueuedJob>,
    cache: &PlanCache,
    families: &PlanFamilies,
    metrics: &ServiceMetrics,
    store: Option<&PlanStore>,
) {
    while let Some(job) = queue.pop() {
        let QueuedJob {
            id,
            request,
            journaled,
            respond,
        } = job;
        let outcome = serve_one(cache, families, &request);
        match &outcome {
            Ok((_, PlanSource::CacheHit, _)) => metrics.cache_hits.fetch_add(1, Ordering::Relaxed),
            Ok((_, PlanSource::FamilyHit, _)) => {
                metrics.family_hits.fetch_add(1, Ordering::Relaxed)
            }
            Ok((_, PlanSource::ColdSolve, _)) => {
                metrics.cold_solves.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => metrics.solve_errors.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(store) = store {
            // Write-behind persistence: newly solved plans (cache hits are
            // already on disk) and, for journaled jobs, the completion
            // record. Completion is journaled for errors too — a failing
            // job must not be replayed forever. Unjournaled jobs (ad-hoc
            // rate models) skip it: an orphan `Completed` per job would
            // grow the uncompacted journal for nothing.
            if let Ok((plan, source, fingerprint)) = &outcome {
                if *source != PlanSource::CacheHit {
                    store.record_plan(fingerprint.0, plan);
                }
            }
            if journaled {
                store.record_journal(&JournalRecord::Completed { job_id: id });
            }
        }
        // The submitter may have dropped the handle; that is not an error.
        let _ = respond.send(outcome.map(|(plan, source, _)| ServedPlan {
            job_id: id,
            plan,
            source,
        }));
    }
}

/// Whether the job resolves to the Repetition Algorithm, the one strategy
/// whose DP is budget-agnostic and therefore family-reusable (see the
/// `family` module docs for why EA and HA are excluded).
fn resolves_to_ra(problem: &HTuningProblem, strategy: StrategyChoice) -> bool {
    match strategy {
        StrategyChoice::RepetitionAlgorithm => true,
        StrategyChoice::Auto => problem.scenario() == Scenario::Repetition,
        StrategyChoice::EvenAllocation | StrategyChoice::HeterogeneousAlgorithm => false,
    }
}

fn serve_one(
    cache: &PlanCache,
    families: &PlanFamilies,
    request: &JobRequest,
) -> Result<(Arc<TunedPlan>, PlanSource, PlanFingerprint), ServeError> {
    let problem = HTuningProblem::new(
        request.task_set.clone(),
        request.budget,
        request.rate_model.clone(),
    )
    .map_err(ServeError::Tuning)?;
    let fingerprint = PlanFingerprint::of(&problem, request.strategy);
    if let Some(plan) = cache.get(fingerprint) {
        return Ok((plan, PlanSource::CacheHit, fingerprint));
    }
    // RA-resolved jobs route through the family layer: a resident family
    // answers any budget from its shared table; a miss seeds the family with
    // this job's cold solve. Either way the plan lands in the exact-match
    // cache, so the PR 1 fast path above is unchanged.
    if resolves_to_ra(&problem, request.strategy) {
        let family = FamilyFingerprint::of(&problem, StrategyChoice::RepetitionAlgorithm);
        let (plan, how) = families
            .serve(family, &problem)
            .map_err(ServeError::Tuning)?;
        let plan = cache.insert(fingerprint, Arc::new(plan));
        let source = match how {
            FamilyServe::Hit => PlanSource::FamilyHit,
            FamilyServe::Seeded => PlanSource::ColdSolve,
        };
        return Ok((plan, source, fingerprint));
    }
    let tuner = Tuner::new(request.rate_model.clone()).with_strategy(request.strategy);
    let plan = tuner
        .plan(request.task_set.clone(), request.budget)
        .map_err(ServeError::Tuning)?;
    let plan = cache.insert(fingerprint, Arc::new(plan));
    Ok((plan, PlanSource::ColdSolve, fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    fn request(tenant: &str, tasks: usize, budget: u64) -> JobRequest {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, tasks).unwrap();
        JobRequest {
            tenant: tenant.to_owned(),
            task_set: set,
            budget: Budget::units(budget),
            rate_model: Arc::new(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
        }
    }

    #[test]
    fn serves_jobs_and_caches_repeats() {
        let service = TuningService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = service.tune(request("acme", 5, 60)).unwrap();
        assert_eq!(first.source, PlanSource::ColdSolve);
        assert!(!first.reused());
        let second = service.tune(request("acme", 5, 60)).unwrap();
        assert_eq!(
            second.source,
            PlanSource::CacheHit,
            "identical job must hit the plan cache"
        );
        assert!(
            Arc::ptr_eq(&first.plan, &second.plan),
            "cache hit returns the very same plan object"
        );
        // A different tenant with the same workload also hits.
        let third = service.tune(request("globex", 5, 60)).unwrap();
        assert_eq!(third.source, PlanSource::CacheHit);
        assert!(third.reused());

        let stats = service.cache_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        let metrics = service.metrics();
        assert_eq!(metrics.submitted, 3);
        assert_eq!(metrics.completed(), 3);
        service.shutdown();
    }

    /// The reuse layers are separately observable: an RA workload served at
    /// three budgets splits into one cold solve, one family hit (new budget,
    /// resident family) and one exact cache hit (repeated budget) — and
    /// `completed()` is exactly their sum.
    #[test]
    fn metrics_split_cold_family_and_cache_answers() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // Scenario II shape (two repetition classes) so Auto resolves to RA.
        let ra_request = |budget: u64| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 4).unwrap();
            set.add_tasks(ty, 5, 4).unwrap();
            JobRequest {
                tenant: "acme".to_owned(),
                task_set: set,
                budget: Budget::units(budget),
                rate_model: Arc::new(LinearRate::new(0.75, 1.0).unwrap()),
                strategy: StrategyChoice::Auto,
            }
        };
        let cold = service.tune(ra_request(120)).unwrap();
        assert_eq!(cold.source, PlanSource::ColdSolve);
        let family = service.tune(ra_request(90)).unwrap();
        assert_eq!(family.source, PlanSource::FamilyHit);
        let extended = service.tune(ra_request(240)).unwrap();
        assert_eq!(extended.source, PlanSource::FamilyHit);
        let repeat = service.tune(ra_request(120)).unwrap();
        assert_eq!(repeat.source, PlanSource::CacheHit);

        let metrics = service.metrics();
        assert_eq!(metrics.cold_solves, 1);
        assert_eq!(metrics.family_hits, 2);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.solve_errors, 0);
        assert_eq!(metrics.completed(), 4);

        let families = service.family_stats();
        assert_eq!(families.families, 1);
        assert_eq!(families.builds, 1);
        assert_eq!(families.hits, 2);
        assert_eq!(families.extensions, 1, "only budget 240 grows the table");
        service.shutdown();
    }

    /// Family answers must be bit-identical to cold solves of the same
    /// problem, and repeats of a family-served budget must hit the exact
    /// cache (the family layer feeds the PR 1 fast path, not replaces it).
    #[test]
    fn family_hits_match_cold_solves_and_feed_the_exact_cache() {
        let service = TuningService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let ra_request = |budget: u64| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 2, 3).unwrap();
            set.add_tasks(ty, 4, 3).unwrap();
            JobRequest {
                tenant: "acme".to_owned(),
                task_set: set,
                budget: Budget::units(budget),
                rate_model: Arc::new(LinearRate::new(1.5, 0.5).unwrap()),
                strategy: StrategyChoice::Auto,
            }
        };
        service.tune(ra_request(100)).unwrap();
        let served = service.tune(ra_request(64)).unwrap();
        assert_eq!(served.source, PlanSource::FamilyHit);
        let reference = Tuner::new(Arc::new(LinearRate::new(1.5, 0.5).unwrap()))
            .plan(ra_request(64).task_set, Budget::units(64))
            .unwrap();
        assert_eq!(served.plan.result.allocation, reference.result.allocation);
        assert_eq!(
            served.plan.expected_latency.to_bits(),
            reference.expected_latency.to_bits()
        );
        let repeat = service.tune(ra_request(64)).unwrap();
        assert_eq!(repeat.source, PlanSource::CacheHit);
        assert!(Arc::ptr_eq(&served.plan, &repeat.plan));
        service.shutdown();
    }

    /// The non-blocking poll a transport front-end uses: `None` while in
    /// flight, the outcome exactly once, `WorkerGone` afterwards.
    #[test]
    fn try_result_polls_without_blocking() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.submit(request("acme", 5, 60)).unwrap();
        let outcome = loop {
            match handle.try_result() {
                Some(outcome) => break outcome,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(outcome.unwrap().job_id, handle.job_id);
        assert!(
            matches!(handle.try_result(), Some(Err(ServeError::WorkerGone))),
            "the outcome is delivered once"
        );
        service.shutdown();
    }

    /// `begin_drain` refuses new work with `Closed` (no journal churn) while
    /// already-accepted jobs still resolve.
    #[test]
    fn drain_refuses_new_submissions_but_serves_queued_work() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert!(!service.is_draining());
        let accepted = service.submit(request("acme", 5, 60)).unwrap();
        service.begin_drain();
        assert!(service.is_draining());
        assert!(service.status().draining);
        let err = service.submit(request("acme", 5, 60)).unwrap_err();
        assert!(
            matches!(err, ServeError::Admission(AdmissionError::Closed)),
            "{err}"
        );
        assert!(accepted.wait().is_ok(), "in-flight work still completes");
        assert_eq!(service.metrics().rejected, 1);
        service.shutdown();
    }

    /// `status()` is one coherent view over every counter surface.
    #[test]
    fn status_snapshot_agrees_with_individual_surfaces() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.tune(request("acme", 5, 60)).unwrap();
        service.tune(request("acme", 5, 60)).unwrap();
        let status = service.status();
        assert_eq!(status.metrics, service.metrics());
        assert_eq!(status.cache, service.cache_stats());
        assert_eq!(status.families, service.family_stats());
        assert!(status.store.is_none() && status.recovery.is_none());
        assert!(!status.draining);
        assert_eq!(status.metrics.completed(), 2);
        service.shutdown();
    }

    #[test]
    fn solver_errors_are_reported_not_fatal() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // 5 tasks × 3 reps = 15 slots; budget 10 is insufficient.
        let err = service.tune(request("acme", 5, 10)).unwrap_err();
        assert!(matches!(err, ServeError::Tuning(_)), "{err}");
        // The worker survives and keeps serving.
        assert!(service.tune(request("acme", 5, 60)).is_ok());
        assert_eq!(service.metrics().solve_errors, 1);
        service.shutdown();
    }

    #[test]
    fn admission_rejection_is_immediate() {
        let service = TuningService::start(ServiceConfig {
            workers: 1,
            admission: AdmissionPolicy {
                max_pending: 1,
                max_pending_per_tenant: 1,
            },
            ..ServiceConfig::default()
        });
        // Flood faster than one worker can drain; eventually a submission
        // must bounce. (With a single worker and depth 1 the third rapid
        // submission is practically guaranteed to find the queue full.)
        let mut handles = Vec::new();
        let mut rejected = false;
        for _ in 0..64 {
            match service.submit(request("acme", 40, 400)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Admission(_)) => {
                    rejected = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(rejected, "back-pressure must reject under flood");
        for h in handles {
            let _ = h.wait();
        }
        assert!(service.metrics().rejected >= 1);
        service.shutdown();
    }

    #[test]
    fn concurrent_tenants_all_get_served() {
        let service = Arc::new(TuningService::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        }));
        let mut joins = Vec::new();
        for tenant in 0..8 {
            let service = service.clone();
            joins.push(std::thread::spawn(move || {
                let mut hits = 0;
                for round in 0..10 {
                    let served = service
                        .tune(request(&format!("tenant-{tenant}"), 4 + round % 3, 80))
                        .unwrap();
                    if served.source == PlanSource::CacheHit {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        let total_hits: u32 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        // 8 tenants × 10 jobs over 3 distinct workloads: nearly everything
        // after the first three solves is a hit.
        assert!(
            total_hits >= 70,
            "expected heavy cache reuse, got {total_hits}"
        );
        assert_eq!(service.metrics().completed(), 80);
    }
}

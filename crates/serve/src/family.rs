//! Plan families: cross-budget solve reuse for RA-resolved jobs.
//!
//! The budget-indexed marginal DP (Algorithms 2/3) is monotone in budget: a
//! [`DpTable`] built for discretionary budget `B'` answers every smaller
//! budget with an O(1) prefix read plus an `O(b)` decision-chain walk, and
//! grows to a larger budget in `O(ΔB')` via its warm-start extension. The
//! exact-match [`PlanCache`](crate::cache::PlanCache) cannot exploit this —
//! its key includes the budget — so two tenants submitting the same workload
//! at budgets 3000 and 5000 used to pay two full cold solves.
//!
//! A **family** is the set of jobs whose [`FamilyFingerprint`] agree: same
//! task shape, same rate curve, same resolved algorithm — everything but the
//! budget. [`PlanFamilies`] maps each family to one concurrently shared
//! `DpTable`; a job whose family is resident is answered by
//! `outcome_at(b)` (budget at or below the table's coverage) or by
//! extending the table in place under the per-family lock (budget above it).
//! Served plans are **bit-identical to cold solves by construction**: every
//! table level is computed exactly once, from deterministic per-group
//! latency terms, regardless of the order budgets arrive in — the serve
//! property tests pin this across random problems, budget ladders and
//! concurrent extension order.
//!
//! ## Scope: why only RA
//!
//! Cross-budget reuse requires the DP objective itself to be
//! budget-independent. RA's group-sum objective (and a forced RA on any
//! shape) qualifies. EA (Scenario I) is a closed form with no DP to reuse,
//! and HA's Closeness objective couples to the budget through the utopia
//! point `(O1*, O2*)`, so its final DP genuinely differs per budget — HA
//! jobs still benefit across budgets through the process-wide interned
//! latency tables in `crowdtune-core`, which this layer composes with.
//!
//! ## Consistency under fingerprint collisions
//!
//! Mirroring the exact-match cache, a family is served with the rate model
//! of the job that *created* it: equal fingerprints imply curves that agree
//! bit-exactly on the payment grid the tables cover, and in the (≈2⁻⁶⁴)
//! event of a true collision the incumbent wins, exactly like a colliding
//! `PlanFingerprint`. A collision that changes the *group structure* is
//! detected (`DpTable::unit_costs` mismatch) and the job falls back to a
//! cold solve without touching the family.
//!
//! Resident families are capped per shard; past the cap, new families are
//! served by plain cold solves without seeding. A reuse-aware eviction
//! policy (and a persistence hook so restarts keep warm families) is
//! tracked in the ROADMAP.

use crate::fingerprint::FamilyFingerprint;
use crowdtune_core::algorithms::{DpTable, RepetitionAlgorithm};
use crowdtune_core::error::Result;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::RateModel;
use crowdtune_core::tuner::TunedPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters exposed by the family store. Monotone; read with
/// [`PlanFamilies::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FamilyStats {
    /// Families currently resident.
    pub families: u64,
    /// Jobs answered from a resident family table.
    pub hits: u64,
    /// Of those hits, how many had to grow the table first (budget above the
    /// resident coverage); the rest were pure prefix reads.
    pub extensions: u64,
    /// Cold solves that seeded a new family.
    pub builds: u64,
}

/// How a family answered a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyServe {
    /// The family was resident; the job was answered from its table.
    Hit,
    /// First job of its family: a cold solve that seeded the table.
    Seeded,
}

/// One family's shared solver state, guarded by the entry mutex.
struct FamilyState {
    /// The market belief the family's table was built against (the creating
    /// job's); every answer is canonicalised to it.
    rate_model: Arc<dyn RateModel>,
    /// The budget-indexed DP table, grown monotonically as larger budgets
    /// arrive.
    table: DpTable,
}

/// `None` until the first solve for the family completes; a failed build
/// leaves it `None` so the next job retries.
struct FamilyEntry {
    state: Mutex<Option<FamilyState>>,
}

/// Cap on resident families per shard. Family keys are tenant-influenced
/// (task shapes, rate curves), so an unbounded map would let one tenant grow
/// service memory without limit; past the cap, new families are served by
/// plain cold solves without seeding. A *reuse-aware eviction* policy (LRU
/// or keep-most-extended) is the ROADMAP follow-up — this bound only makes
/// the store safe to ship.
const MAX_FAMILIES_PER_SHARD: usize = 128;

/// Sharded map from [`FamilyFingerprint`] to the family's shared
/// [`DpTable`]. Cheap to share: wrap in an `Arc`.
pub struct PlanFamilies {
    shards: Vec<Mutex<HashMap<u64, Arc<FamilyEntry>>>>,
    hits: AtomicU64,
    extensions: AtomicU64,
    builds: AtomicU64,
}

impl PlanFamilies {
    /// Creates a family store with `shards` independently locked shards
    /// (rounded up to a power of two), each holding at most
    /// [`MAX_FAMILIES_PER_SHARD`] families.
    pub fn new(shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        PlanFamilies {
            shards: (0..shard_count)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            extensions: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// Gets or creates the entry for a family; `None` when the shard is at
    /// capacity and the family is not resident (the caller then solves cold
    /// without seeding). Only the map access holds the shard lock; solving
    /// happens under the entry's own mutex so distinct families never
    /// serialise on each other.
    fn entry(&self, key: FamilyFingerprint) -> Option<Arc<FamilyEntry>> {
        let index = (key.0 as usize) & (self.shards.len() - 1);
        let mut shard = self.shards[index].lock().expect("family shard poisoned");
        if let Some(entry) = shard.get(&key.0) {
            return Some(entry.clone());
        }
        if shard.len() >= MAX_FAMILIES_PER_SHARD {
            return None;
        }
        let entry = Arc::new(FamilyEntry {
            state: Mutex::new(None),
        });
        shard.insert(key.0, entry.clone());
        Some(entry)
    }

    /// Answers an RA-resolved job from its family: a prefix read or in-place
    /// extension when the family is resident, a table-seeding cold solve
    /// otherwise. The caller is responsible for only routing jobs that
    /// resolve to the Repetition Algorithm here.
    pub fn serve(
        &self,
        key: FamilyFingerprint,
        problem: &HTuningProblem,
    ) -> Result<(TunedPlan, FamilyServe)> {
        let Some(entry) = self.entry(key) else {
            // Store at capacity: serve cold, seed nothing.
            let result = RepetitionAlgorithm::new().tune(problem)?;
            let plan = TunedPlan::from_result(problem, result)?;
            return Ok((plan, FamilyServe::Seeded));
        };
        // The entry lock covers only the table work (read/extension/seed);
        // attaching the latency estimates — the dominant serve cost — runs
        // after it drops, so same-family jobs serialise on the DP alone.
        let mut slot = entry.state.lock().expect("family entry poisoned");
        let (problem, result, how) = match slot.as_mut() {
            Some(state) => {
                // A 64-bit key collision across *group structures* is
                // detectable: bail to a cold solve of the job as submitted,
                // leaving the incumbent family untouched.
                let same_shape = {
                    let groups = problem.task_set().group_by_repetitions();
                    groups.len() == state.table.unit_costs().len()
                        && groups.iter().map(|g| g.unit_increment_cost()).eq(state
                            .table
                            .unit_costs()
                            .iter()
                            .copied())
                };
                if !same_shape {
                    drop(slot);
                    let result = RepetitionAlgorithm::new().tune(problem)?;
                    let plan = TunedPlan::from_result(problem, result)?;
                    return Ok((plan, FamilyServe::Seeded));
                }
                // Canonicalise to the family's belief (see module docs).
                let problem = problem.with_rate_model(state.rate_model.clone());
                if problem.discretionary_budget() > state.table.max_budget() {
                    RepetitionAlgorithm::extend_table(&problem, &mut state.table)?;
                    self.extensions.fetch_add(1, Ordering::Relaxed);
                }
                let result = RepetitionAlgorithm::result_from_table(&problem, &state.table)?;
                self.hits.fetch_add(1, Ordering::Relaxed);
                (problem, result, FamilyServe::Hit)
            }
            None => {
                let (result, table) = RepetitionAlgorithm::new().tune_with_table(problem)?;
                *slot = Some(FamilyState {
                    rate_model: problem.rate_model().clone(),
                    table,
                });
                self.builds.fetch_add(1, Ordering::Relaxed);
                (problem.clone(), result, FamilyServe::Seeded)
            }
        };
        drop(slot);
        let plan = TunedPlan::from_result(&problem, result)?;
        Ok((plan, how))
    }

    /// Current counters.
    pub fn stats(&self) -> FamilyStats {
        let families = self
            .shards
            .iter()
            .map(|s| s.lock().expect("family shard poisoned").len() as u64)
            .sum();
        FamilyStats {
            families,
            hits: self.hits.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::Budget;
    use crowdtune_core::rate::LinearRate;
    use crowdtune_core::task::TaskSet;
    use crowdtune_core::tuner::{StrategyChoice, Tuner};

    fn ra_problem(budget: u64, slope: f64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        set.add_tasks(ty, 5, 4).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::new(slope, 1.0).unwrap()),
        )
        .unwrap()
    }

    fn key(problem: &HTuningProblem) -> FamilyFingerprint {
        FamilyFingerprint::of(problem, StrategyChoice::RepetitionAlgorithm)
    }

    #[test]
    fn first_job_seeds_then_budget_ladder_hits() {
        let families = PlanFamilies::new(4);
        let seed_problem = ra_problem(120, 1.0);
        let (_, how) = families.serve(key(&seed_problem), &seed_problem).unwrap();
        assert_eq!(how, FamilyServe::Seeded);

        // Lower budgets are prefix reads, higher budgets extend in place;
        // every answer matches a cold solve bit-for-bit.
        for budget in [60u64, 80, 120, 200, 400] {
            let problem = ra_problem(budget, 1.0);
            let (plan, how) = families.serve(key(&problem), &problem).unwrap();
            assert_eq!(how, FamilyServe::Hit, "budget {budget}");
            let cold = Tuner::new(problem.rate_model().clone())
                .with_strategy(StrategyChoice::RepetitionAlgorithm)
                .plan(problem.task_set().clone(), problem.budget())
                .unwrap();
            assert_eq!(plan.result.allocation, cold.result.allocation);
            assert_eq!(
                plan.result.objective.unwrap().to_bits(),
                cold.result.objective.unwrap().to_bits()
            );
            assert_eq!(
                plan.expected_latency.to_bits(),
                cold.expected_latency.to_bits()
            );
        }
        let stats = families.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.extensions, 2, "budgets 200 and 400 grow the table");
        assert_eq!(stats.families, 1);
    }

    #[test]
    fn distinct_curves_get_distinct_families() {
        let families = PlanFamilies::new(4);
        let a = ra_problem(100, 1.0);
        let b = ra_problem(100, 2.0);
        assert_ne!(key(&a), key(&b));
        families.serve(key(&a), &a).unwrap();
        let (_, how) = families.serve(key(&b), &b).unwrap();
        assert_eq!(how, FamilyServe::Seeded);
        assert_eq!(families.stats().families, 2);
    }
}

//! Plan families: cross-budget solve reuse for RA-resolved jobs.
//!
//! The budget-indexed marginal DP (Algorithms 2/3) is monotone in budget: a
//! [`DpTable`] built for discretionary budget `B'` answers every smaller
//! budget with an O(1) prefix read plus an `O(b)` decision-chain walk, and
//! grows to a larger budget in `O(ΔB')` via its warm-start extension. The
//! exact-match [`PlanCache`](crate::cache::PlanCache) cannot exploit this —
//! its key includes the budget — so two tenants submitting the same workload
//! at budgets 3000 and 5000 used to pay two full cold solves.
//!
//! A **family** is the set of jobs whose [`FamilyFingerprint`] agree: same
//! task shape, same rate curve, same resolved algorithm — everything but the
//! budget. [`PlanFamilies`] maps each family to one concurrently shared
//! `DpTable`; a job whose family is resident is answered by
//! `outcome_at(b)` (budget at or below the table's coverage) or by
//! extending the table in place under the per-family lock (budget above it).
//! Served plans are **bit-identical to cold solves by construction**: every
//! table level is computed exactly once, from deterministic per-group
//! latency terms, regardless of the order budgets arrive in — the serve
//! property tests pin this across random problems, budget ladders and
//! concurrent extension order.
//!
//! ## Scope: why only RA
//!
//! Cross-budget reuse requires the DP objective itself to be
//! budget-independent. RA's group-sum objective (and a forced RA on any
//! shape) qualifies. EA (Scenario I) is a closed form with no DP to reuse,
//! and HA's Closeness objective couples to the budget through the utopia
//! point `(O1*, O2*)`, so its final DP genuinely differs per budget — HA
//! jobs still benefit across budgets through the process-wide interned
//! latency tables in `crowdtune-core`, which this layer composes with.
//!
//! ## Consistency under fingerprint collisions
//!
//! Mirroring the exact-match cache, a family is served with the rate model
//! of the job that *created* it: equal fingerprints imply curves that agree
//! bit-exactly on the payment grid the tables cover, and in the (≈2⁻⁶⁴)
//! event of a true collision the incumbent wins, exactly like a colliding
//! `PlanFingerprint`. A collision that changes the *group structure* is
//! detected (`DpTable::unit_costs` mismatch) and the job falls back to a
//! cold solve without touching the family.
//!
//! ## Eviction and durability
//!
//! Resident families are capped per shard with **LRU eviction**: every serve
//! refreshes the family's recency stamp and a new family past the cap
//! displaces the least recently used one, so service memory stays bounded
//! while hot families stay resident. With persistence enabled
//! ([`PlanFamilies::durable`]), every seed and extension snapshots the
//! family — `(fingerprint, rate spec, group shapes, DP levels)` — into the
//! write-behind [`PlanStore`] *and* into an in-memory archive of compact
//! records, so an evicted (or restart-lost) family is **rehydrated** from
//! its snapshot on the next miss instead of paying a cold solve:
//! [`DpTable::from_snapshot`] rebuilds the exact table and every answer
//! stays bit-identical. Without persistence, eviction simply drops the
//! family and the next job re-seeds it (the pre-durability behavior).
//!
//! LRU trades the old policy's churn-immunity for bounded *and recoverable*
//! memory: a tenant streaming distinct rate curves can still displace other
//! tenants' resident families (capacity stays bounded — the only thing at
//! stake is re-seed/rehydrate work, never correctness), where the previous
//! refuse-to-seed policy instead starved *new* families forever once a
//! shard filled. Tenant-aware eviction (per-tenant shares, or protecting
//! most-extended tables) is the tracked ROADMAP follow-up.

use crate::fingerprint::FamilyFingerprint;
use crate::store::{FamilyRecord, LoadedFamily, PlanStore};
use crowdtune_core::algorithms::{DpTable, RepetitionAlgorithm};
use crowdtune_core::error::Result;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::RateModel;
use crowdtune_core::tuner::TunedPlan;
use crowdtune_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters exposed by the family store. Monotone; read with
/// [`PlanFamilies::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FamilyStats {
    /// Families currently resident.
    pub families: u64,
    /// Jobs answered from a resident family table.
    pub hits: u64,
    /// Of those hits, how many had to grow the table first (budget above the
    /// resident coverage); the rest were pure prefix reads.
    pub extensions: u64,
    /// Cold solves that seeded a new family.
    pub builds: u64,
    /// Families displaced by the per-shard LRU bound.
    pub evictions: u64,
    /// Families rehydrated from a persisted snapshot (after eviction or a
    /// restart) instead of re-seeding cold.
    pub reloads: u64,
}

/// Wall-clock breakdown of one family serve, reported by
/// [`PlanFamilies::serve_timed`] for per-stage latency histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyTiming {
    /// Nanoseconds blocked acquiring the per-family entry lock (contention
    /// with same-family jobs; distinct families never serialise here).
    pub lock_wait_ns: u64,
    /// Nanoseconds attaching the latency estimates after the table work.
    pub estimate_ns: u64,
}

/// How a family answered a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyServe {
    /// The family was resident (or rehydrated from its snapshot); the job
    /// was answered from its table.
    Hit,
    /// First job of its family: a cold solve that seeded the table.
    Seeded,
}

/// One family's shared solver state, guarded by the entry mutex.
struct FamilyState {
    /// The market belief the family's table was built against (the creating
    /// job's); every answer is canonicalised to it.
    rate_model: Arc<dyn RateModel>,
    /// The budget-indexed DP table, grown monotonically as larger budgets
    /// arrive.
    table: DpTable,
}

/// `None` until the first solve for the family completes; a failed build
/// leaves it `None` so the next job retries.
struct FamilyEntry {
    state: Mutex<Option<FamilyState>>,
}

/// Cap on resident families per shard. Family keys are tenant-influenced
/// (task shapes, rate curves), so an unbounded map would let one tenant grow
/// service memory without limit; past the cap the least recently used family
/// is evicted (and, when persistence is enabled, remains rehydratable from
/// its compact snapshot).
const MAX_FAMILIES_PER_SHARD: usize = 128;

/// Cap on archived family snapshots (compact records, no payment ring).
/// Past the cap the stalest snapshot is dropped — it remains on disk, but
/// only a restart would see it again; log compaction is the ROADMAP
/// follow-up.
const MAX_ARCHIVED_FAMILIES: usize = 4096;

/// An archived family snapshot: the compact durable record plus the rebuilt
/// rate model, ready for rehydration. The record is `Arc`ed so rehydration
/// can take a handle out of the archive lock in O(1) and rebuild the table
/// with no lock held.
struct ArchivedFamily {
    record: Arc<FamilyRecord>,
    rate_model: Arc<dyn RateModel>,
    /// Generation stamp for oldest-first archive eviction; refreshed on
    /// snapshot *and* on rehydration, so a hot repeatedly-reloaded family
    /// ages like a hot repeatedly-extended one.
    stamp: u64,
}

/// The durability side of the family layer: the write-behind store sink and
/// the in-memory archive of compact snapshots.
struct FamilyPersistence {
    store: Arc<PlanStore>,
    archive: Mutex<HashMap<u64, ArchivedFamily>>,
    stamp: AtomicU64,
}

impl FamilyPersistence {
    /// Records a snapshot in the archive (recency-stamped, bounded) and
    /// queues it onto the write-behind store. Runs outside the per-family
    /// entry lock, so two racing extensions may arrive out of order — the
    /// archive keeps whichever snapshot covers the larger budget (the
    /// store's load path independently picks max coverage per fingerprint,
    /// so disk-side ordering never mattered).
    fn snapshot(&self, record: FamilyRecord, rate_model: Arc<dyn RateModel>, blocking: bool) {
        // Serialize onto the write-behind queue before taking the archive
        // lock — JSON encoding is the expensive part and must sit under no
        // lock at all. A stale-coverage write is harmless: the load path
        // picks max coverage per fingerprint. The flush path blocks on a
        // full queue (it must not shed working-set records); the serve path
        // never does.
        if blocking {
            self.store.record_family_blocking(&record);
        } else {
            self.store.record_family(&record);
        }
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let mut archive = self.archive.lock().expect("family archive poisoned");
        if let Some(existing) = archive.get_mut(&record.fingerprint) {
            existing.stamp = stamp;
            if existing.record.table.max_budget() >= record.table.max_budget() {
                // A larger snapshot already landed: keep it.
                return;
            }
        } else if archive.len() >= MAX_ARCHIVED_FAMILIES {
            if let Some(&stalest) = archive
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| key)
            {
                archive.remove(&stalest);
            }
        }
        archive.insert(
            record.fingerprint,
            ArchivedFamily {
                record: Arc::new(record),
                rate_model,
                stamp,
            },
        );
    }

    /// Rebuilds a family's live state from its archived snapshot, if one
    /// exists and still rebuilds cleanly. The O(B') table reconstruction
    /// runs with **no lock held** — only an O(1) handle clone (plus the
    /// recency-stamp refresh) happens under the archive mutex, so
    /// concurrent rehydrations of distinct families never serialise.
    fn rehydrate(&self, key: u64) -> Option<FamilyState> {
        let (record, rate_model) = {
            let mut archive = self.archive.lock().expect("family archive poisoned");
            let entry = archive.get_mut(&key)?;
            entry.stamp = self.stamp.fetch_add(1, Ordering::Relaxed) + 1;
            (entry.record.clone(), entry.rate_model.clone())
        };
        let table = DpTable::from_snapshot(&record.table).ok()?;
        Some(FamilyState { rate_model, table })
    }
}

/// One shard of the resident-family map: entries plus their LRU recency
/// stamps, under a monotone tick.
#[derive(Default)]
struct Shard {
    entries: HashMap<u64, (Arc<FamilyEntry>, u64)>,
    tick: u64,
}

/// Sharded map from [`FamilyFingerprint`] to the family's shared
/// [`DpTable`]. Cheap to share: wrap in an `Arc`.
pub struct PlanFamilies {
    shards: Vec<Mutex<Shard>>,
    persistence: Option<FamilyPersistence>,
    // Obs-backed counters: the same cells the service registry renders.
    hits: Counter,
    extensions: Counter,
    builds: Counter,
    evictions: Counter,
    reloads: Counter,
}

impl PlanFamilies {
    /// Creates a family store with `shards` independently locked shards
    /// (rounded up to a power of two), each holding at most
    /// `MAX_FAMILIES_PER_SHARD` (128) families under LRU eviction. No
    /// persistence: evicted families re-seed cold.
    pub fn new(shards: usize) -> Self {
        Self::build(shards, None)
    }

    /// Creates a family store whose seeds and extensions are snapshotted
    /// into `store` (write-behind) and into the rehydration archive, with
    /// `preloaded` records (validated by the store's load path) seeding the
    /// archive so restart-lost families answer without cold solves.
    pub fn durable(shards: usize, store: Arc<PlanStore>, preloaded: Vec<LoadedFamily>) -> Self {
        let persistence = FamilyPersistence {
            store,
            archive: Mutex::new(HashMap::new()),
            stamp: AtomicU64::new(0),
        };
        {
            let mut archive = persistence.archive.lock().expect("family archive poisoned");
            for (stamp, loaded) in preloaded.into_iter().enumerate() {
                archive.insert(
                    loaded.record.fingerprint,
                    ArchivedFamily {
                        rate_model: loaded.rate_model,
                        record: Arc::new(loaded.record),
                        stamp: stamp as u64,
                    },
                );
            }
            persistence
                .stamp
                .store(archive.len() as u64, Ordering::Relaxed);
        }
        Self::build(shards, Some(persistence))
    }

    fn build(shards: usize, persistence: Option<FamilyPersistence>) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        PlanFamilies {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            persistence,
            hits: Counter::new(),
            extensions: Counter::new(),
            builds: Counter::new(),
            evictions: Counter::new(),
            reloads: Counter::new(),
        }
    }

    /// Number of families currently rehydratable from the archive (0 without
    /// persistence).
    pub fn archived(&self) -> usize {
        self.persistence
            .as_ref()
            .map(|p| p.archive.lock().expect("family archive poisoned").len())
            .unwrap_or(0)
    }

    /// Gets or creates the entry for a family, refreshing its LRU stamp. At
    /// capacity the least recently used entry of the shard is evicted to
    /// make room (a worker mid-serve on the victim keeps its `Arc` and
    /// finishes normally; the family is simply no longer resident
    /// afterwards). Only the map access holds the shard lock; solving
    /// happens under the entry's own mutex so distinct families never
    /// serialise on each other.
    fn entry(&self, key: FamilyFingerprint) -> Arc<FamilyEntry> {
        let index = (key.0 as usize) & (self.shards.len() - 1);
        let mut shard = self.shards[index].lock().expect("family shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some((entry, last_used)) = shard.entries.get_mut(&key.0) {
            *last_used = tick;
            return entry.clone();
        }
        if shard.entries.len() >= MAX_FAMILIES_PER_SHARD {
            if let Some(&lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| key)
            {
                shard.entries.remove(&lru);
                self.evictions.inc();
            }
        }
        let entry = Arc::new(FamilyEntry {
            state: Mutex::new(None),
        });
        shard.entries.insert(key.0, (entry.clone(), tick));
        entry
    }

    /// Captures a family's current state as a persistable snapshot (`None`
    /// without persistence, or when the rate model has no serializable
    /// spec). Called under the entry lock — it only clones the compact
    /// table image; the expensive part (JSON encoding, archive/store
    /// hand-off) happens in [`PlanFamilies::commit_snapshot`] *after* the
    /// lock drops, so same-family jobs never queue behind serialization.
    fn capture_snapshot(
        &self,
        key: FamilyFingerprint,
        state: &FamilyState,
        problem: &HTuningProblem,
    ) -> Option<(FamilyRecord, Arc<dyn RateModel>)> {
        self.persistence.as_ref()?;
        let rate = state.rate_model.to_spec()?;
        let groups = problem
            .task_set()
            .group_by_repetitions()
            .iter()
            .map(|group| (group.size() as u64, group.repetitions))
            .collect();
        Some((
            FamilyRecord {
                fingerprint: key.0,
                rate,
                groups,
                table: state.table.snapshot(),
            },
            state.rate_model.clone(),
        ))
    }

    /// Second half of [`PlanFamilies::capture_snapshot`]: runs outside the
    /// entry lock.
    fn commit_snapshot(&self, captured: Option<(FamilyRecord, Arc<dyn RateModel>)>) {
        if let (Some(persistence), Some((record, rate_model))) = (&self.persistence, captured) {
            persistence.snapshot(record, rate_model, false);
        }
    }

    /// Answers an RA-resolved job from its family: a prefix read or in-place
    /// extension when the family is resident (or rehydratable from a
    /// persisted snapshot), a table-seeding cold solve otherwise. The caller
    /// is responsible for only routing jobs that resolve to the Repetition
    /// Algorithm here.
    pub fn serve(
        &self,
        key: FamilyFingerprint,
        problem: &HTuningProblem,
    ) -> Result<(TunedPlan, FamilyServe)> {
        self.serve_timed(key, problem)
            .map(|(plan, how, _)| (plan, how))
    }

    /// [`PlanFamilies::serve`] plus a wall-clock breakdown (entry-lock wait,
    /// estimate attach) for the service's per-stage telemetry.
    pub fn serve_timed(
        &self,
        key: FamilyFingerprint,
        problem: &HTuningProblem,
    ) -> Result<(TunedPlan, FamilyServe, FamilyTiming)> {
        let entry = self.entry(key);
        // The entry lock covers only the table work (read/extension/seed);
        // attaching the latency estimates — the dominant serve cost — runs
        // after it drops, so same-family jobs serialise on the DP alone.
        let lock_started = std::time::Instant::now();
        let mut slot = entry.state.lock().expect("family entry poisoned");
        let lock_wait_ns = lock_started.elapsed().as_nanos() as u64;
        if slot.is_none() {
            // Not resident: a persisted snapshot (evicted earlier, or loaded
            // at recovery) rebuilds the exact table instead of re-seeding.
            if let Some(persistence) = &self.persistence {
                if let Some(state) = persistence.rehydrate(key.0) {
                    *slot = Some(state);
                    self.reloads.inc();
                }
            }
        }
        let mut captured = None;
        let (problem, result, how) = match slot.as_mut() {
            Some(state) => {
                // A 64-bit key collision across *group structures* is
                // detectable: bail to a cold solve of the job as submitted,
                // leaving the incumbent family untouched.
                let same_shape = {
                    let groups = problem.task_set().group_by_repetitions();
                    groups.len() == state.table.unit_costs().len()
                        && groups.iter().map(|g| g.unit_increment_cost()).eq(state
                            .table
                            .unit_costs()
                            .iter()
                            .copied())
                };
                if !same_shape {
                    drop(slot);
                    let result = RepetitionAlgorithm::new().tune(problem)?;
                    let (plan, estimate_ns) = TunedPlan::from_result_timed(problem, result)?;
                    return Ok((
                        plan,
                        FamilyServe::Seeded,
                        FamilyTiming {
                            lock_wait_ns,
                            estimate_ns,
                        },
                    ));
                }
                // Canonicalise to the family's belief (see module docs).
                let problem = problem.with_rate_model(state.rate_model.clone());
                if problem.discretionary_budget() > state.table.max_budget() {
                    RepetitionAlgorithm::extend_table(&problem, &mut state.table)?;
                    self.extensions.inc();
                    captured = self.capture_snapshot(key, state, &problem);
                }
                let result = RepetitionAlgorithm::result_from_table(&problem, &state.table)?;
                self.hits.inc();
                (problem, result, FamilyServe::Hit)
            }
            None => {
                let (result, table) = RepetitionAlgorithm::new().tune_with_table(problem)?;
                let state = FamilyState {
                    rate_model: problem.rate_model().clone(),
                    table,
                };
                captured = self.capture_snapshot(key, &state, problem);
                *slot = Some(state);
                self.builds.inc();
                (problem.clone(), result, FamilyServe::Seeded)
            }
        };
        drop(slot);
        self.commit_snapshot(captured);
        let (plan, estimate_ns) = TunedPlan::from_result_timed(&problem, result)?;
        Ok((
            plan,
            how,
            FamilyTiming {
                lock_wait_ns,
                estimate_ns,
            },
        ))
    }

    /// Reads the family's **objective frontier** for a problem: the DP
    /// objective at every discretionary budget `0..=B'`, in order. This is
    /// the primitive the cross-market router consumes — element `x` answers
    /// "what objective does this workload reach on this market with `x`
    /// extra units" — and on a resident (or rehydratable) family it costs
    /// `B'+1` O(1) level reads, no payment reconstruction and no latency
    /// estimation. A cold family is seeded exactly as a served job would
    /// seed it (the table is kept, so the subsequent real serve is a hit).
    ///
    /// Fails (instead of falling back to a detached solve) when a key
    /// collision across group structures is detected; callers treat a failed
    /// frontier as "this market can't quote" and fall back to single-market
    /// tuning.
    pub fn objective_frontier(
        &self,
        key: FamilyFingerprint,
        problem: &HTuningProblem,
    ) -> Result<(Vec<f64>, FamilyServe)> {
        let entry = self.entry(key);
        let mut slot = entry.state.lock().expect("family entry poisoned");
        if slot.is_none() {
            if let Some(persistence) = &self.persistence {
                if let Some(state) = persistence.rehydrate(key.0) {
                    *slot = Some(state);
                    self.reloads.inc();
                }
            }
        }
        let mut captured = None;
        let (frontier, how) = match slot.as_mut() {
            Some(state) => {
                let same_shape = {
                    let groups = problem.task_set().group_by_repetitions();
                    groups.len() == state.table.unit_costs().len()
                        && groups.iter().map(|g| g.unit_increment_cost()).eq(state
                            .table
                            .unit_costs()
                            .iter()
                            .copied())
                };
                if !same_shape {
                    return Err(crowdtune_core::CoreError::invalid_argument(
                        "family fingerprint collision across group structures",
                    ));
                }
                let problem = problem.with_rate_model(state.rate_model.clone());
                if problem.discretionary_budget() > state.table.max_budget() {
                    RepetitionAlgorithm::extend_table(&problem, &mut state.table)?;
                    self.extensions.inc();
                    captured = self.capture_snapshot(key, state, &problem);
                }
                let frontier = read_frontier(&state.table, problem.discretionary_budget())?;
                self.hits.inc();
                (frontier, FamilyServe::Hit)
            }
            None => {
                let (_, table) = RepetitionAlgorithm::new().tune_with_table(problem)?;
                let state = FamilyState {
                    rate_model: problem.rate_model().clone(),
                    table,
                };
                captured = self.capture_snapshot(key, &state, problem);
                let frontier = read_frontier(&state.table, problem.discretionary_budget())?;
                *slot = Some(state);
                self.builds.inc();
                (frontier, FamilyServe::Seeded)
            }
        };
        drop(slot);
        self.commit_snapshot(captured);
        Ok((frontier, how))
    }

    /// Snapshots every resident family into the store (catch-up for records
    /// the bounded write-behind queue may have dropped under load). Called
    /// by planned shutdowns; a no-op without persistence.
    pub fn flush_resident(&self) {
        if self.persistence.is_none() {
            return;
        }
        for shard in &self.shards {
            let entries: Vec<(u64, Arc<FamilyEntry>)> = {
                let shard = shard.lock().expect("family shard poisoned");
                shard
                    .entries
                    .iter()
                    .map(|(&key, (entry, _))| (key, entry.clone()))
                    .collect()
            };
            for (key, entry) in entries {
                let slot = entry.state.lock().expect("family entry poisoned");
                if let Some(state) = slot.as_ref() {
                    self.persist_raw(key, state);
                }
            }
        }
    }

    /// [`PlanFamilies::persist`] without a problem at hand: derives the
    /// group shapes from the table's unit costs and the archived record
    /// (used by the flush path, where no job is being served).
    fn persist_raw(&self, key: u64, state: &FamilyState) {
        let Some(persistence) = &self.persistence else {
            return;
        };
        let Some(rate) = state.rate_model.to_spec() else {
            return;
        };
        // Group shapes are not recoverable from unit costs alone
        // (`u = n · k` has many factorisations); reuse the shapes from the
        // archived snapshot of the same family, which every persisted family
        // has (persist runs on seed and on every extension).
        let archive = persistence.archive.lock().expect("family archive poisoned");
        let Some(archived) = archive.get(&key) else {
            return;
        };
        let groups = archived.record.groups.clone();
        drop(archive);
        let record = FamilyRecord {
            fingerprint: key,
            rate,
            groups,
            table: state.table.snapshot(),
        };
        persistence.snapshot(record, state.rate_model.clone(), true);
    }

    /// Current counters.
    pub fn stats(&self) -> FamilyStats {
        let families = self
            .shards
            .iter()
            .map(|s| s.lock().expect("family shard poisoned").entries.len() as u64)
            .sum();
        FamilyStats {
            families,
            hits: self.hits.get(),
            extensions: self.extensions.get(),
            builds: self.builds.get(),
            evictions: self.evictions.get(),
            reloads: self.reloads.get(),
        }
    }

    /// Registers the family layer's counters into `registry` under the
    /// `crowdtune_family_*` names, backed by the same cells
    /// [`PlanFamilies::stats`] reads.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "crowdtune_family_hits_total",
            "Jobs answered from a resident plan-family table.",
            &[],
            self.hits.clone(),
        );
        registry.register_counter(
            "crowdtune_family_extensions_total",
            "Family hits that first grew the table to a larger budget.",
            &[],
            self.extensions.clone(),
        );
        registry.register_counter(
            "crowdtune_family_builds_total",
            "Cold solves that seeded a new plan family.",
            &[],
            self.builds.clone(),
        );
        registry.register_counter(
            "crowdtune_family_evictions_total",
            "Families displaced by the per-shard LRU bound.",
            &[],
            self.evictions.clone(),
        );
        registry.register_counter(
            "crowdtune_family_reloads_total",
            "Families rehydrated from a persisted snapshot.",
            &[],
            self.reloads.clone(),
        );
    }
}

/// Reads levels `0..=extra` of a table's objective column.
fn read_frontier(table: &DpTable, extra: u64) -> Result<Vec<f64>> {
    (0..=extra).map(|x| table.objective_at(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::Budget;
    use crowdtune_core::rate::LinearRate;
    use crowdtune_core::task::TaskSet;
    use crowdtune_core::tuner::{StrategyChoice, Tuner};

    fn ra_problem(budget: u64, slope: f64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        set.add_tasks(ty, 5, 4).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::new(slope, 1.0).unwrap()),
        )
        .unwrap()
    }

    fn key(problem: &HTuningProblem) -> FamilyFingerprint {
        FamilyFingerprint::of(problem, StrategyChoice::RepetitionAlgorithm)
    }

    #[test]
    fn first_job_seeds_then_budget_ladder_hits() {
        let families = PlanFamilies::new(4);
        let seed_problem = ra_problem(120, 1.0);
        let (_, how) = families.serve(key(&seed_problem), &seed_problem).unwrap();
        assert_eq!(how, FamilyServe::Seeded);

        // Lower budgets are prefix reads, higher budgets extend in place;
        // every answer matches a cold solve bit-for-bit.
        for budget in [60u64, 80, 120, 200, 400] {
            let problem = ra_problem(budget, 1.0);
            let (plan, how) = families.serve(key(&problem), &problem).unwrap();
            assert_eq!(how, FamilyServe::Hit, "budget {budget}");
            let cold = Tuner::new(problem.rate_model().clone())
                .with_strategy(StrategyChoice::RepetitionAlgorithm)
                .plan(problem.task_set().clone(), problem.budget())
                .unwrap();
            assert_eq!(plan.result.allocation, cold.result.allocation);
            assert_eq!(
                plan.result.objective.unwrap().to_bits(),
                cold.result.objective.unwrap().to_bits()
            );
            assert_eq!(
                plan.expected_latency.to_bits(),
                cold.expected_latency.to_bits()
            );
        }
        let stats = families.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.extensions, 2, "budgets 200 and 400 grow the table");
        assert_eq!(stats.families, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.reloads, 0);
    }

    #[test]
    fn distinct_curves_get_distinct_families() {
        let families = PlanFamilies::new(4);
        let a = ra_problem(100, 1.0);
        let b = ra_problem(100, 2.0);
        assert_ne!(key(&a), key(&b));
        families.serve(key(&a), &a).unwrap();
        let (_, how) = families.serve(key(&b), &b).unwrap();
        assert_eq!(how, FamilyServe::Seeded);
        assert_eq!(families.stats().families, 2);
    }

    /// The objective frontier must agree, level by level, with full serves
    /// at every discretionary budget — and its first read seeds the family
    /// so the later real serve is a hit.
    #[test]
    fn objective_frontier_matches_per_budget_serves() {
        let families = PlanFamilies::new(4);
        let problem = ra_problem(120, 1.0);
        let (frontier, how) = families
            .objective_frontier(key(&problem), &problem)
            .unwrap();
        assert_eq!(how, FamilyServe::Seeded);
        assert_eq!(frontier.len() as u64, problem.discretionary_budget() + 1);
        let minimum = problem.minimum_budget();
        for (extra, objective) in frontier.iter().enumerate() {
            let at_budget = ra_problem(minimum + extra as u64, 1.0);
            let (plan, _) = families.serve(key(&at_budget), &at_budget).unwrap();
            assert_eq!(
                objective.to_bits(),
                plan.result.objective.unwrap().to_bits(),
                "extra {extra}"
            );
        }
        // The frontier seeded the family: the serves above were all hits.
        assert_eq!(families.stats().builds, 1);
        // A warm frontier is a pure prefix read.
        let (_, how) = families
            .objective_frontier(key(&problem), &problem)
            .unwrap();
        assert_eq!(how, FamilyServe::Hit);
    }

    /// LRU eviction at the per-shard cap: a stream of one-shot families
    /// displaces the stalest resident, while a family touched throughout
    /// stays resident. One shard makes the arithmetic deterministic.
    #[test]
    fn lru_evicts_the_stalest_family_at_the_cap() {
        let families = PlanFamilies::new(1);
        // Seed the hot family and the cap-1 fillers.
        let hot = ra_problem(80, 1.0);
        families.serve(key(&hot), &hot).unwrap();
        for i in 0..(MAX_FAMILIES_PER_SHARD - 1) as u64 {
            let p = ra_problem(80, 2.0 + i as f64);
            families.serve(key(&p), &p).unwrap();
        }
        assert_eq!(
            families.stats().families,
            MAX_FAMILIES_PER_SHARD as u64,
            "at capacity"
        );
        assert_eq!(families.stats().evictions, 0);
        // Touch the hot family so it is no longer the LRU.
        let (_, how) = families.serve(key(&hot), &hot).unwrap();
        assert_eq!(how, FamilyServe::Hit);
        // A new family displaces the stalest filler, not the hot one.
        let newcomer = ra_problem(80, 1000.0);
        let (_, how) = families.serve(key(&newcomer), &newcomer).unwrap();
        assert_eq!(how, FamilyServe::Seeded);
        let stats = families.stats();
        assert_eq!(stats.families, MAX_FAMILIES_PER_SHARD as u64);
        assert_eq!(stats.evictions, 1);
        // The hot family is still resident: serving it again is a hit, not a
        // re-seed.
        let (_, how) = families.serve(key(&hot), &hot).unwrap();
        assert_eq!(how, FamilyServe::Hit);
        assert_eq!(families.stats().builds, MAX_FAMILIES_PER_SHARD as u64 + 1);
    }
}

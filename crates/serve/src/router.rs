//! Cross-market job routing: split a job's task groups across markets.
//!
//! With several markets registered (each with its own belief about the
//! payment → acceptance-rate curve), a job made of independent task groups
//! need not run wholly on one market. The separable Scenario II objective
//! (`GroupSumOnHold`) decomposes group-wise, so the router can:
//!
//! 1. solve each group's budget-indexed DP against **every** market's curve
//!    (these are plan-family tables — resident families answer the whole
//!    frontier with prefix reads, no re-solve);
//! 2. take the per-group lower envelope over markets;
//! 3. convolve the envelopes across groups (one knapsack pass over the
//!    discretionary budget) and backtrack into a per-group
//!    `(market, budget)` assignment.
//!
//! The routed objective can never be worse than the best single-market tune
//! — the all-on-one-market assignment is a feasible point of the same
//! optimisation — and is strictly better whenever the market curves cross
//! (one market is cheap for low-paid groups, another for high-paid ones).
//! When nothing beats the best single market the router falls back to plain
//! single-market tuning there, so callers always get a servable plan.
//!
//! On warm family tables a quote is pure table reads plus the `O(G·B²)`
//! convolution — no DP solve, no estimate attach — which is what makes
//! per-request routing affordable on the serve path.

use crate::family::PlanFamilies;
use crate::fingerprint::FamilyFingerprint;
use crowdtune_core::error::{CoreError, Result};
use crowdtune_core::market::MarketId;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::RateModel;
use crowdtune_core::task::{TaskGroupSpec, TaskSet};
use crowdtune_core::tuner::{StrategyChoice, TunedPlan};
use crowdtune_market::MarketRegistry;
use crowdtune_obs::{Counter, Registry};
use std::sync::Arc;

/// Minimum relative improvement of the routed frontier over the best
/// single-market tune before the router commits to a split. Guards against
/// splits justified only by floating-point noise in the convolution.
const SPLIT_IMPROVEMENT_EPS: f64 = 1e-9;

/// One task group's routing decision: which market runs it and with how much
/// of the job's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAssignment {
    /// The group, in wire form (name, rate, task count, repetitions).
    pub spec: TaskGroupSpec,
    /// The market the group is tuned against.
    pub market: MarketId,
    /// Budget units assigned to the group (its mandatory minimum plus the
    /// discretionary share the convolution awarded it).
    pub budget_units: u64,
}

/// The outcome of [`MarketRouter::quote`]: a per-group assignment and the
/// objective it achieves, next to what the best single market would score.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteQuote {
    /// Per-group assignments; budgets sum to the job budget exactly.
    pub assignments: Vec<GroupAssignment>,
    /// Objective value (expected group-sum on-hold latency) of the routed
    /// assignment.
    pub objective: f64,
    /// The single market that scores best when the whole job runs there.
    pub best_single: MarketId,
    /// That market's objective for the whole job.
    pub best_single_objective: f64,
    /// Whether the routed assignment strictly beats the best single-market
    /// tune (when `false`, every group is assigned to `best_single`).
    pub split: bool,
}

/// The outcome of [`MarketRouter::route`]: the quote plus actual plans.
#[derive(Debug)]
pub enum RoutedPlan {
    /// The cross-market split beat every single-market tune; one plan per
    /// assignment (same order).
    Split {
        /// Per-group assignments and their tuned plans.
        groups: Vec<(GroupAssignment, TunedPlan)>,
        /// Routed objective (sum of per-group objectives).
        objective: f64,
        /// What the best single-market tune would have scored.
        single_objective: f64,
    },
    /// No split beat single-market tuning; the whole job runs on one market.
    Single {
        /// The winning market.
        market: MarketId,
        /// Its objective for the whole job.
        objective: f64,
        /// The full-job plan tuned against that market's belief.
        plan: TunedPlan,
    },
}

impl RoutedPlan {
    /// The objective the returned plan(s) achieve.
    pub fn objective(&self) -> f64 {
        match self {
            RoutedPlan::Split { objective, .. } => *objective,
            RoutedPlan::Single { objective, .. } => *objective,
        }
    }

    /// Whether the job was split across markets.
    pub fn is_split(&self) -> bool {
        matches!(self, RoutedPlan::Split { .. })
    }
}

/// Routes jobs across the markets of a [`MarketRegistry`], reusing the
/// serve layer's [`PlanFamilies`] tables for every per-group frontier.
pub struct MarketRouter {
    markets: Arc<MarketRegistry>,
    families: Arc<PlanFamilies>,
    splits: Counter,
}

impl MarketRouter {
    /// A router over the registry's markets, reading and seeding frontiers
    /// in the given family store.
    pub fn new(markets: Arc<MarketRegistry>, families: Arc<PlanFamilies>) -> Self {
        MarketRouter {
            markets,
            families,
            splits: Counter::new(),
        }
    }

    /// Registers the router's counters
    /// (`crowdtune_router_split_total`).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "crowdtune_router_split_total",
            "Jobs the router split across markets (routed frontier beat every single-market tune).",
            &[],
            self.splits.clone(),
        );
    }

    /// Jobs split across markets so far.
    pub fn splits(&self) -> u64 {
        self.splits.get()
    }

    /// Quotes the best per-group market assignment for a job without
    /// producing plans. Warm family tables make this pure table reads plus
    /// the convolution.
    pub fn quote(&self, task_set: &TaskSet, budget: Budget) -> Result<RouteQuote> {
        let parts = self.decompose(task_set, budget)?;
        Ok(self.assemble(parts))
    }

    /// Routes a job: quotes the assignment, then serves one plan per group
    /// (split) or one full-job plan on the best market (no split). Every
    /// plan comes from the family layer, so budgets already covered by a
    /// resident table are prefix reads.
    pub fn route(&self, task_set: &TaskSet, budget: Budget) -> Result<RoutedPlan> {
        let quote = self.quote(task_set, budget)?;
        if quote.split {
            let mut groups = Vec::with_capacity(quote.assignments.len());
            for assignment in &quote.assignments {
                let belief = self.markets.belief(assignment.market)?;
                let set = TaskSet::from_group_specs(std::slice::from_ref(&assignment.spec))?;
                let problem =
                    HTuningProblem::new(set, Budget::units(assignment.budget_units), belief)?;
                let key = FamilyFingerprint::of_market(
                    &problem,
                    StrategyChoice::RepetitionAlgorithm,
                    assignment.market,
                );
                let (plan, _, _) = self.families.serve_timed(key, &problem)?;
                groups.push((assignment.clone(), plan));
            }
            self.splits.inc();
            Ok(RoutedPlan::Split {
                groups,
                objective: quote.objective,
                single_objective: quote.best_single_objective,
            })
        } else {
            let belief = self.markets.belief(quote.best_single)?;
            let problem = HTuningProblem::new(task_set.clone(), budget, belief)?;
            let key = FamilyFingerprint::of_market(
                &problem,
                StrategyChoice::RepetitionAlgorithm,
                quote.best_single,
            );
            let (plan, _, _) = self.families.serve_timed(key, &problem)?;
            Ok(RoutedPlan::Single {
                market: quote.best_single,
                objective: quote.best_single_objective,
                plan,
            })
        }
    }

    /// Solves every `(group, market)` frontier and returns the raw parts the
    /// convolution assembles.
    fn decompose(&self, task_set: &TaskSet, budget: Budget) -> Result<RouteParts> {
        let specs = merged_group_specs(task_set);
        if specs.is_empty() {
            return Err(CoreError::invalid_argument(
                "cannot route an empty task set",
            ));
        }
        let minimum: u64 = specs
            .iter()
            .map(|s| s.tasks * u64::from(s.repetitions))
            .sum();
        let discretionary = budget.as_units().checked_sub(minimum).ok_or_else(|| {
            CoreError::invalid_argument(format!(
                "budget {} cannot cover the {minimum} mandatory repetition units",
                budget.as_units()
            ))
        })?;
        let markets = self.markets.markets();
        let beliefs: Vec<Arc<dyn RateModel>> = markets
            .iter()
            .map(|&m| self.markets.belief(m))
            .collect::<Result<_>>()?;
        // frontiers[g][m][x] = group g's objective on market m with x extra
        // budget units, for x in 0..=discretionary.
        let mut frontiers: Vec<Vec<Vec<f64>>> = Vec::with_capacity(specs.len());
        for spec in &specs {
            let group_minimum = spec.tasks * u64::from(spec.repetitions);
            let mut per_market = Vec::with_capacity(markets.len());
            for (belief, &market) in beliefs.iter().zip(&markets) {
                let set = TaskSet::from_group_specs(std::slice::from_ref(spec))?;
                let problem = HTuningProblem::new(
                    set,
                    Budget::units(group_minimum + discretionary),
                    belief.clone(),
                )?;
                let key = FamilyFingerprint::of_market(
                    &problem,
                    StrategyChoice::RepetitionAlgorithm,
                    market,
                );
                let (frontier, _) = self.families.objective_frontier(key, &problem)?;
                debug_assert_eq!(frontier.len() as u64, discretionary + 1);
                per_market.push(frontier);
            }
            frontiers.push(per_market);
        }
        Ok(RouteParts {
            specs,
            markets,
            frontiers,
            discretionary,
        })
    }

    /// Lower-envelopes the per-group frontiers over markets, convolves them
    /// across groups, backtracks the budget split, and compares against
    /// every single-market total.
    fn assemble(&self, parts: RouteParts) -> RouteQuote {
        let RouteParts {
            specs,
            markets,
            frontiers,
            discretionary,
        } = parts;
        let width = discretionary as usize + 1;
        // Per-group lower envelope over markets.
        let envelopes: Vec<Vec<f64>> = frontiers
            .iter()
            .map(|per_market| {
                (0..width)
                    .map(|x| {
                        per_market
                            .iter()
                            .map(|f| f[x])
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect()
            })
            .collect();
        // Knapsack convolution over groups; `choice[g][x]` is the extra
        // budget group g takes when x units are available to groups 0..=g.
        let mut acc = envelopes[0].clone();
        let mut choice: Vec<Vec<u32>> = vec![(0..width as u32).collect()];
        for envelope in &envelopes[1..] {
            let mut next = vec![f64::INFINITY; width];
            let mut picked = vec![0u32; width];
            for x in 0..width {
                for e in 0..=x {
                    let total = acc[x - e] + envelope[e];
                    if total < next[x] {
                        next[x] = total;
                        picked[x] = e as u32;
                    }
                }
            }
            acc = next;
            choice.push(picked);
        }
        let objective = acc[width - 1];
        // Backtrack the discretionary split.
        let mut extras = vec![0u64; specs.len()];
        let mut remaining = width - 1;
        for g in (0..specs.len()).rev() {
            let e = choice[g][remaining] as usize;
            extras[g] = e as u64;
            remaining -= e;
        }
        // Single-market totals: convolve each market's own frontiers.
        let (best_single_idx, best_single_objective) = (0..markets.len())
            .map(|m| {
                let mut acc: Vec<f64> = frontiers[0][m].clone();
                for group in &frontiers[1..] {
                    let mut next = vec![f64::INFINITY; width];
                    for x in 0..width {
                        for e in 0..=x {
                            let total = acc[x - e] + group[m][e];
                            if total < next[x] {
                                next[x] = total;
                            }
                        }
                    }
                    acc = next;
                }
                acc[width - 1]
            })
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("objectives are finite"))
            .expect("at least one market is registered");
        let best_single = markets[best_single_idx];
        let split = objective < best_single_objective * (1.0 - SPLIT_IMPROVEMENT_EPS);
        let assignments = specs
            .into_iter()
            .enumerate()
            .map(|(g, spec)| {
                let group_minimum = spec.tasks * u64::from(spec.repetitions);
                let (extra, market) = if split {
                    // Which market achieved the envelope at this extra.
                    let extra = extras[g];
                    let market = markets
                        .iter()
                        .zip(&frontiers[g])
                        .min_by(|(_, a), (_, b)| {
                            a[extra as usize]
                                .partial_cmp(&b[extra as usize])
                                .expect("objectives are finite")
                        })
                        .map(|(&m, _)| m)
                        .expect("at least one market is registered");
                    (extra, market)
                } else {
                    // All groups stay on the best single market. The caller
                    // serves the whole job in one piece there, so these
                    // per-group budgets are informational (the envelope's
                    // split, which is within epsilon of that market's own).
                    (extras[g], best_single)
                };
                GroupAssignment {
                    spec,
                    market,
                    budget_units: group_minimum + extra,
                }
            })
            .collect();
        RouteQuote {
            assignments,
            objective,
            best_single,
            best_single_objective,
            split,
        }
    }
}

/// The raw per-`(group, market)` frontiers a quote is assembled from.
struct RouteParts {
    specs: Vec<TaskGroupSpec>,
    markets: Vec<MarketId>,
    frontiers: Vec<Vec<Vec<f64>>>,
    discretionary: u64,
}

/// The job's wire-form groups with equal `(name, rate, repetitions)` runs
/// merged, so interleaved submissions route as one group per class.
fn merged_group_specs(task_set: &TaskSet) -> Vec<TaskGroupSpec> {
    let mut merged: Vec<TaskGroupSpec> = Vec::new();
    for spec in task_set.to_group_specs() {
        match merged.iter_mut().find(|s| {
            s.name == spec.name
                && s.processing_rate.to_bits() == spec.processing_rate.to_bits()
                && s.repetitions == spec.repetitions
        }) {
            Some(existing) => existing.tasks += spec.tasks,
            None => merged.push(spec),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;
    use crowdtune_core::tuner::Tuner;

    /// Two markets with crossing curves: "steep" is fast at high payments,
    /// "flat" barely cares about payment but starts faster.
    fn crossing_registry() -> Arc<MarketRegistry> {
        let steep: Arc<dyn RateModel> = Arc::new(LinearRate::new(5.0, 0.5).unwrap());
        let flat: Arc<dyn RateModel> = Arc::new(LinearRate::new(0.5, 9.0).unwrap());
        Arc::new(
            MarketRegistry::new(vec![
                (MarketId::DEFAULT, "steep".to_string(), steep),
                (MarketId(1), "flat".to_string(), flat),
            ])
            .unwrap(),
        )
    }

    /// Two repetition classes: a small high-repetition group (wants the
    /// steep market's payment leverage) and a large low-repetition group
    /// (better off on the flat market's high base rate).
    fn mixed_set() -> TaskSet {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 5, 2).unwrap();
        set.add_tasks(ty, 2, 8).unwrap();
        set
    }

    #[test]
    fn split_beats_every_single_market_tune() {
        let registry = crossing_registry();
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry.clone(), families);
        let budget = Budget::units(60);
        let quote = router.quote(&mixed_set(), budget).unwrap();
        assert!(
            quote.split,
            "crossing curves must make the split profitable: {quote:?}"
        );
        assert!(quote.objective < quote.best_single_objective);
        // The quoted objective must also beat *each* market's true
        // full-problem tune, not just the convolution's own estimate.
        for market in registry.markets() {
            let reference = Tuner::new(registry.belief(market).unwrap())
                .with_strategy(StrategyChoice::RepetitionAlgorithm)
                .plan(mixed_set(), budget)
                .unwrap();
            let single = reference
                .result
                .objective
                .expect("RA reports its objective");
            assert!(
                quote.objective < single,
                "routed {} must beat market {market} at {single}",
                quote.objective
            );
        }
        // The two groups went to different markets and budgets add up.
        let assigned: Vec<MarketId> = quote.assignments.iter().map(|a| a.market).collect();
        assert_eq!(assigned.len(), 2);
        assert_ne!(assigned[0], assigned[1], "split must actually split");
        let total: u64 = quote.assignments.iter().map(|a| a.budget_units).sum();
        assert_eq!(total, budget.as_units());
    }

    #[test]
    fn routed_plans_match_the_quote() {
        let registry = crossing_registry();
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry, families);
        let routed = router.route(&mixed_set(), Budget::units(60)).unwrap();
        let RoutedPlan::Split {
            groups,
            objective,
            single_objective,
        } = routed
        else {
            panic!("expected a split");
        };
        assert!(objective < single_objective);
        // Each group plan's own objective sums to the routed objective.
        let summed: f64 = groups
            .iter()
            .map(|(_, plan)| plan.result.objective.expect("RA reports its objective"))
            .sum();
        assert!(
            (summed - objective).abs() <= 1e-9 * objective.abs().max(1.0),
            "per-group plans ({summed}) must realise the quoted objective ({objective})"
        );
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn single_market_fallback_when_one_market_dominates() {
        // One market dominates at every payment: no split can help.
        let fast: Arc<dyn RateModel> = Arc::new(LinearRate::new(4.0, 2.0).unwrap());
        let slow: Arc<dyn RateModel> = Arc::new(LinearRate::new(1.0, 0.5).unwrap());
        let registry = Arc::new(
            MarketRegistry::new(vec![
                (MarketId::DEFAULT, "fast".to_string(), fast),
                (MarketId(1), "slow".to_string(), slow),
            ])
            .unwrap(),
        );
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry, families);
        let routed = router.route(&mixed_set(), Budget::units(60)).unwrap();
        let RoutedPlan::Single { market, plan, .. } = routed else {
            panic!("a dominated market must not attract a split");
        };
        assert_eq!(market, MarketId::DEFAULT);
        assert_eq!(plan.result.allocation.task_count(), 10);
        assert_eq!(router.splits(), 0);
    }

    #[test]
    fn warm_quotes_are_pure_table_reads() {
        let registry = crossing_registry();
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry, families.clone());
        let set = mixed_set();
        let first = router.quote(&set, Budget::units(60)).unwrap();
        let builds_after_first = families.stats().builds;
        assert!(builds_after_first > 0, "cold quote seeds the families");
        // Same job again, and a smaller budget: zero new builds, zero
        // extensions — every frontier is a prefix read.
        let second = router.quote(&set, Budget::units(60)).unwrap();
        assert_eq!(first, second);
        let smaller = router.quote(&set, Budget::units(44)).unwrap();
        assert!(smaller.objective >= first.objective);
        let stats = families.stats();
        assert_eq!(stats.builds, builds_after_first);
        assert_eq!(stats.extensions, 0);
    }

    #[test]
    fn single_market_registry_routes_everything_there() {
        let registry = Arc::new(MarketRegistry::single(Arc::new(
            LinearRate::new(1.0, 1.0).unwrap(),
        )));
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry, families);
        let quote = router.quote(&mixed_set(), Budget::units(60)).unwrap();
        assert!(!quote.split);
        assert_eq!(quote.best_single, MarketId::DEFAULT);
        assert_eq!(
            quote.objective.to_bits(),
            quote.best_single_objective.to_bits(),
            "with one market the envelope is that market"
        );
    }

    #[test]
    fn infeasible_budgets_are_rejected() {
        let registry = crossing_registry();
        let families = Arc::new(PlanFamilies::new(4));
        let router = MarketRouter::new(registry, families);
        // 2×5 + 8×2 = 26 mandatory units; 20 cannot cover them.
        assert!(router.quote(&mixed_set(), Budget::units(20)).is_err());
        assert!(router.quote(&TaskSet::new(), Budget::units(20)).is_err());
    }
}

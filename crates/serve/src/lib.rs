//! # crowdtune-serve
//!
//! A multi-tenant tuning **service** over the offline H-Tuning machinery of
//! `crowdtune-core`: the piece that turns the paper's one-shot pipeline into
//! something that can serve heavy tuning traffic and react to market drift.
//!
//! ## Architecture
//!
//! ```text
//!  tenants ──submit──▶ JobQueue ──round-robin──▶ tuner worker pool
//!                        │  (admission control)        │
//!                        ▼                             ▼
//!                   back-pressure              PlanCache (sharded LRU,
//!                                              keyed by PlanFingerprint)
//!                                                      │ miss
//!                             cache hit ◀──────────────┤
//!                                                      ▼
//!                                              PlanFamilies (budget-agnostic
//!                                              FamilyFingerprint → shared
//!                                              DpTable; prefix read or
//!                                              in-place extension)
//!                                                      │ miss → cold solve
//!                                                      ▼  (seeds family)
//!                                              interned latency tables
//!                                              (crowdtune-core, process-wide)
//!
//!  running job ──events──▶ Retuner ──(drift?)──▶ remaining_after + re-solve
//!                                                      │
//!                             ControlAction::Reallocate┘  (unpublished
//!                                                          repetitions only)
//! ```
//!
//! * [`queue::JobQueue`] — one FIFO lane per tenant, served round-robin, with
//!   depth-based admission control (global + per-tenant bounds).
//! * [`service::TuningService`] — a pool of worker threads draining the
//!   queue; each job is fingerprinted ([`fingerprint::PlanFingerprint`]) and
//!   answered from the sharded LRU [`cache::PlanCache`] when an equivalent
//!   job was already solved — repeated workloads skip the `O(n·B')` DP
//!   entirely and cache hits are bit-identical to the cold solve.
//! * [`family::PlanFamilies`] — cross-**budget** reuse: jobs that resolve to
//!   the Repetition Algorithm and differ only in budget share one
//!   budget-indexed DP table per family
//!   ([`fingerprint::FamilyFingerprint`]), answered by a prefix read (budget
//!   covered) or an in-place warm-start extension (budget above coverage),
//!   bit-identical to cold solves by construction.
//! * [`router::MarketRouter`] — **cross-market routing**: with several
//!   markets registered ([`crowdtune_market::MarketRegistry`]), a job's task
//!   groups are split across markets by solving the separable DP against
//!   each market's belief and assembling the per-group frontier (warm
//!   family tables make a routed quote pure prefix reads), falling back to
//!   single-market tuning whenever the split does not strictly win.
//! * [`store::PlanStore`] — **write-behind durability**: plans, family DP
//!   tables and a crash-recovery job journal persisted as checksummed
//!   append-only streams by a background writer (bounded queue, drop-oldest
//!   backpressure). [`service::TuningService::recover`] warm-starts a new
//!   process from the store — previously served plans come back bit-identical
//!   without a single cold solve, corrupt state degrades to cold solves.
//! * [`retuner::Retuner`] — subscribes to a running job's market events,
//!   re-estimates the on-hold rate curve from observed acceptance delays
//!   (`core::inference`), and on confirmed drift re-solves the H-Tuning
//!   problem for the remaining repetitions and budget
//!   ([`HTuningProblem::remaining_after`](crowdtune_core::problem::HTuningProblem::remaining_after)),
//!   re-pricing only repetitions that are not yet published.
//!
//! The service is synchronous-threaded by design: the solver is CPU-bound,
//! so a thread-per-worker pool with a blocking queue is the honest shape; an
//! async transport front-end can wrap [`service::TuningService::submit`]
//! without touching this crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod cache;
pub mod family;
pub mod fingerprint;
pub mod health;
pub mod queue;
pub mod retuner;
pub mod router;
pub mod service;
pub mod store;

pub use cache::{CacheStats, PlanCache};
pub use crowdtune_core::market::MarketId;
pub use crowdtune_market::MarketRegistry;
pub use crowdtune_obs::{JobTrace, Registry};
pub use family::{FamilyServe, FamilyStats, FamilyTiming, PlanFamilies};
pub use fingerprint::{FamilyFingerprint, PlanFingerprint};
pub use health::{HealthReason, HealthSignals, HealthState};
pub use queue::{AdmissionError, AdmissionPolicy, JobQueue};
pub use retuner::{RetunePolicy, RetuneStats, Retuner};
pub use router::{GroupAssignment, MarketRouter, RouteQuote, RoutedPlan};
pub use service::{
    CompletionNotify, JobHandle, JobRequest, MetricsSnapshot, PlanSource, RecoveryStats,
    ServeError, ServedPlan, ServiceConfig, ServiceStatus, TuningService, WorkerDeath,
    REPLAY_ATTEMPT_LIMIT,
};
pub use store::{
    backoff_delay, FamilyRecord, FsyncPolicy, JournalRecord, LoadReport, PlanRecord, PlanStore,
    RetryPolicy, Sleeper, StoreError, StoreOptions, StoreSnapshot, StoreStats, ThreadSleeper,
    WriteFault,
};

//! Canonical fingerprints of tuning problems: [`PlanFingerprint`], the
//! exact-match plan-cache key, and [`FamilyFingerprint`], the same key with
//! the budget factored out — the unit of cross-budget solve reuse.
//!
//! Two submissions hit the same cache entry exactly when a cached plan is
//! valid for both, i.e. when they agree on everything the tuning algorithms
//! look at:
//!
//! * the **task-set shape**: the per-task sequence of
//!   `(canonical type index, processing rate, repetitions)` triples. Type
//!   *names* are cosmetic and deliberately excluded ("yes/no vote" and
//!   "ja/nein vote" jobs with the same difficulty profile share plans), but
//!   the type *partition* is not: it decides the paper scenario (RA groups
//!   by repetitions, HA by type-and-repetitions), so two jobs that differ
//!   only in how tasks are split across equal-rate types must not collide.
//!   Types are relabelled by first occurrence in task order, so registration
//!   order of unused types cannot perturb the key;
//! * the **budget** in units;
//! * the **rate model**, identified by its label and its response curve
//!   sampled bit-exactly over every payment the DP is likely to explore
//!   (densely up to 64 units, geometrically from 65 onwards, and always at
//!   the exact budget). Two
//!   *different* models that agree on that entire grid can still collide —
//!   the cache accepts that negligible risk in exchange for O(1) lookups;
//! * the **strategy choice**, since a forced strategy changes the plan.

use crowdtune_core::hash::Fnv1a;
use crowdtune_core::market::MarketId;
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::RateModel;
use crowdtune_core::tuner::StrategyChoice;
use std::collections::BTreeMap;

/// Dense low end of the rate-model probe grid: micro-task payments are small
/// integers, so every payment up to this bound is sampled individually.
const DENSE_PROBE_LIMIT: u64 = 64;

/// Canonical fingerprint of a tuning problem (plus strategy choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u64);

/// Hashes the task-set shape: per-task (canonical type, processing rate,
/// repetitions), in order. The canonical type index is the type's
/// first-occurrence rank among the tasks, which captures the type partition
/// (it decides RA-vs-HA grouping) while staying independent of type names
/// and of registered-but-unused types. Shared by the exact and family keys
/// so the two can never disagree on what "the same workload" means.
fn hash_task_shape(hash: &mut Fnv1a, task_set: &crowdtune_core::task::TaskSet) {
    hash.write_u64(task_set.len() as u64);
    let mut canonical_types: BTreeMap<u32, u64> = BTreeMap::new();
    for task in task_set.tasks() {
        let next_rank = canonical_types.len() as u64;
        let rank = *canonical_types.entry(task.task_type.0).or_insert(next_rank);
        let rate = task_set
            .type_by_id(task.task_type)
            .map(|ty| ty.processing_rate)
            .unwrap_or(f64::NAN);
        hash.write_u64(rank);
        hash.write_f64(rate);
        hash.write_u64(u64::from(task.repetitions));
    }
}

/// Folds the market id into a fingerprint hash.
///
/// The default market contributes **nothing**: default-market fingerprints
/// are bit-identical to the pre-market scheme, so stores and caches written
/// before markets existed keep hitting after an upgrade (zero cold solves on
/// a warm set). Only non-default markets perturb the hash — families solved
/// against market A must never answer market B.
fn hash_market(hash: &mut Fnv1a, market: MarketId) {
    if !market.is_default() {
        hash.write_u64(u64::from(market.as_u16()));
    }
}

impl PlanFingerprint {
    /// Fingerprints a problem/strategy pair on the default market.
    pub fn of(problem: &HTuningProblem, strategy: StrategyChoice) -> Self {
        Self::of_market(problem, strategy, MarketId::DEFAULT)
    }

    /// Fingerprints a problem/strategy pair on a specific market.
    pub fn of_market(problem: &HTuningProblem, strategy: StrategyChoice, market: MarketId) -> Self {
        let mut hash = Fnv1a::new();
        hash_task_shape(&mut hash, problem.task_set());
        // Budget.
        hash.write_u64(problem.budget().as_units());
        // Market belief: label + response curve, sampled at every payment up
        // to DENSE_PROBE_LIMIT and geometrically beyond, up to the largest
        // payment any repetition could possibly receive (the whole budget).
        let model = problem.rate_model();
        hash.write_bytes(model.describe().as_bytes());
        let budget_units = problem.budget().as_units();
        for payment in 1..=DENSE_PROBE_LIMIT.min(budget_units) {
            hash.write_f64(model.on_hold_rate(payment as f64));
        }
        // The geometric walk starts right after the dense range: starting at
        // `2 * DENSE_PROBE_LIMIT` would leave payments 65..=127 — which the
        // DP does explore at mid-size budgets — entirely unsampled, so two
        // models differing only there would collide.
        let mut payment = DENSE_PROBE_LIMIT + 1;
        while payment <= budget_units {
            hash.write_f64(model.on_hold_rate(payment as f64));
            payment *= 2;
        }
        // Always pin the curve at the exact budget (the largest payment any
        // repetition could receive); below the dense limit it is already
        // sampled.
        if budget_units > DENSE_PROBE_LIMIT {
            hash.write_f64(model.on_hold_rate(budget_units as f64));
        }
        // Strategy choice.
        hash.write_u64(strategy_tag(strategy));
        // Market (contributes nothing on the default market, keeping
        // pre-market fingerprints stable).
        hash_market(&mut hash, market);
        PlanFingerprint(hash.finish())
    }
}

/// Budget-agnostic fingerprint of a tuning problem: the [`PlanFingerprint`]
/// with the budget component factored out. Jobs sharing a family differ only
/// in budget, which is exactly the dimension the budget-indexed marginal DP
/// is monotone in — one family table answers every budget.
///
/// The rate curve is identified by
/// [`RateModel::curve_fingerprint`], which pins the curve bit-exactly on the
/// integer payment grid the shared latency tables cover (up to
/// `MAX_TABLE_PAYMENT`). Payments beyond that grid can only be reached by
/// budgets far above the paper's workloads; two distinct models agreeing on
/// the whole grid would collide there, the same negligible accepted risk as
/// the exact-match key's sampled curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyFingerprint(pub u64);

impl FamilyFingerprint {
    /// Fingerprints everything but the budget on the default market: task
    /// shape, rate curve and the strategy the job resolves to. Callers
    /// normalise `strategy` before keying (e.g. `Auto` on a Scenario-II
    /// problem and a forced RA resolve to the same algorithm and may share a
    /// family).
    pub fn of(problem: &HTuningProblem, strategy: StrategyChoice) -> Self {
        Self::of_market(problem, strategy, MarketId::DEFAULT)
    }

    /// [`FamilyFingerprint::of`] on a specific market. Even when two markets
    /// currently hold bit-identical beliefs the keys differ for non-default
    /// markets: beliefs drift independently, and a family that answered for
    /// both would go stale for one of them silently.
    pub fn of_market(problem: &HTuningProblem, strategy: StrategyChoice, market: MarketId) -> Self {
        let mut hash = Fnv1a::new();
        hash_task_shape(&mut hash, problem.task_set());
        let model = problem.rate_model();
        hash.write_bytes(model.describe().as_bytes());
        hash.write_u64(model.curve_fingerprint());
        hash.write_u64(strategy_tag(strategy));
        hash_market(&mut hash, market);
        FamilyFingerprint(hash.finish())
    }
}

fn strategy_tag(strategy: StrategyChoice) -> u64 {
    match strategy {
        StrategyChoice::Auto => 0,
        StrategyChoice::EvenAllocation => 1,
        StrategyChoice::RepetitionAlgorithm => 2,
        StrategyChoice::HeterogeneousAlgorithm => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::money::Budget;
    use crowdtune_core::rate::LinearRate;
    use crowdtune_core::task::TaskSet;
    use std::sync::Arc;

    fn problem(name: &str, budget: u64, slope: f64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type(name, 2.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::new(slope, 1.0).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn identical_problems_share_fingerprints() {
        let a = PlanFingerprint::of(&problem("vote", 100, 1.0), StrategyChoice::Auto);
        let b = PlanFingerprint::of(&problem("vote", 100, 1.0), StrategyChoice::Auto);
        assert_eq!(a, b);
    }

    #[test]
    fn type_names_are_cosmetic() {
        let a = PlanFingerprint::of(&problem("yes/no vote", 100, 1.0), StrategyChoice::Auto);
        let b = PlanFingerprint::of(&problem("ja/nein vote", 100, 1.0), StrategyChoice::Auto);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_rate_and_strategy_discriminate() {
        let base = PlanFingerprint::of(&problem("v", 100, 1.0), StrategyChoice::Auto);
        assert_ne!(
            base,
            PlanFingerprint::of(&problem("v", 101, 1.0), StrategyChoice::Auto)
        );
        assert_ne!(
            base,
            PlanFingerprint::of(&problem("v", 100, 2.0), StrategyChoice::Auto)
        );
        assert_ne!(
            base,
            PlanFingerprint::of(&problem("v", 100, 1.0), StrategyChoice::EvenAllocation)
        );
    }

    /// Regression test: a single-type job with repetitions {3,5} is Scenario
    /// II (solved by RA) while a two-type job with the *same* processing
    /// rates and repetitions is Scenario III (solved by HA) — they produce
    /// different plans and must not share a cache entry.
    #[test]
    fn type_partition_discriminates_even_at_equal_rates() {
        let mut one_type = TaskSet::new();
        let ty = one_type.add_type("vote", 2.0).unwrap();
        one_type.add_tasks(ty, 3, 2).unwrap();
        one_type.add_tasks(ty, 5, 2).unwrap();

        let mut two_types = TaskSet::new();
        let a = two_types.add_type("vote a", 2.0).unwrap();
        let b = two_types.add_type("vote b", 2.0).unwrap();
        two_types.add_tasks(a, 3, 2).unwrap();
        two_types.add_tasks(b, 5, 2).unwrap();

        let model = Arc::new(LinearRate::new(1.0, 1.0).unwrap());
        let p1 = HTuningProblem::new(one_type, Budget::units(60), model.clone()).unwrap();
        let p2 = HTuningProblem::new(two_types, Budget::units(60), model).unwrap();
        assert_eq!(p1.scenario(), crowdtune_core::problem::Scenario::Repetition);
        assert_eq!(
            p2.scenario(),
            crowdtune_core::problem::Scenario::Heterogeneous
        );
        assert_ne!(
            PlanFingerprint::of(&p1, StrategyChoice::Auto),
            PlanFingerprint::of(&p2, StrategyChoice::Auto)
        );
    }

    /// Unused registered types must not perturb the key.
    #[test]
    fn unused_types_are_ignored() {
        let mut plain = TaskSet::new();
        let ty = plain.add_type("vote", 2.0).unwrap();
        plain.add_tasks(ty, 3, 4).unwrap();

        let mut with_unused = TaskSet::new();
        let _ghost = with_unused.add_type("never used", 9.0).unwrap();
        let ty = with_unused.add_type("vote", 2.0).unwrap();
        with_unused.add_tasks(ty, 3, 4).unwrap();

        let model = Arc::new(LinearRate::new(1.0, 1.0).unwrap());
        let p1 = HTuningProblem::new(plain, Budget::units(100), model.clone()).unwrap();
        let p2 = HTuningProblem::new(with_unused, Budget::units(100), model).unwrap();
        assert_eq!(
            PlanFingerprint::of(&p1, StrategyChoice::Auto),
            PlanFingerprint::of(&p2, StrategyChoice::Auto)
        );
    }

    #[test]
    fn dense_grid_separates_models_differing_off_the_old_sparse_grid() {
        // Two tabulated beliefs agreeing at 1,2,3,5,8,... but differing at
        // payment 4 — indistinguishable to a sparse Fibonacci grid.
        let points_a: Vec<(f64, f64)> = vec![(1.0, 1.0), (4.0, 4.0), (8.0, 8.0)];
        let points_b: Vec<(f64, f64)> = vec![(1.0, 1.0), (4.0, 5.0), (8.0, 8.0)];
        let make = |pts: Vec<(f64, f64)>| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 4).unwrap();
            HTuningProblem::new(
                set,
                Budget::units(100),
                Arc::new(crowdtune_core::rate::TabulatedRate::new(pts).unwrap()),
            )
            .unwrap()
        };
        assert_ne!(
            PlanFingerprint::of(&make(points_a), StrategyChoice::Auto),
            PlanFingerprint::of(&make(points_b), StrategyChoice::Auto)
        );
    }

    /// Regression test for the probe-grid gap: the geometric walk used to
    /// start at `2 * DENSE_PROBE_LIMIT = 128`, so payments 65..=127 — which
    /// the DP does explore at mid-size budgets — were never hashed and two
    /// models differing only there collided.
    #[test]
    fn models_differing_between_dense_limit_and_first_geometric_probe_do_not_collide() {
        // Both models are exactly the identity curve on [1, 64] (and have
        // the same point count, so `describe()` agrees); they differ only on
        // (64, 128). With budget 120 the old grid sampled 1..=64 and then
        // nothing (the walk started at 128 > 120).
        let straight: Vec<(f64, f64)> =
            vec![(1.0, 1.0), (64.0, 64.0), (96.0, 96.0), (128.0, 128.0)];
        let bent: Vec<(f64, f64)> = vec![(1.0, 1.0), (64.0, 64.0), (96.0, 100.0), (128.0, 128.0)];
        let make = |pts: Vec<(f64, f64)>| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 4).unwrap();
            HTuningProblem::new(
                set,
                Budget::units(120),
                Arc::new(crowdtune_core::rate::TabulatedRate::new(pts).unwrap()),
            )
            .unwrap()
        };
        assert_ne!(
            PlanFingerprint::of(&make(straight), StrategyChoice::Auto),
            PlanFingerprint::of(&make(bent), StrategyChoice::Auto)
        );
    }

    /// The curve is always pinned at the exact budget, so two models that
    /// agree on the whole probe grid but disagree at the largest payment a
    /// repetition could receive do not collide.
    #[test]
    fn curve_is_sampled_at_the_exact_budget() {
        // Identical on [1, 130] (covering dense probes and the geometric
        // probes 65 and 130) and at 260; they differ only around payment 200
        // — exactly the budget.
        let straight: Vec<(f64, f64)> =
            vec![(1.0, 1.0), (130.0, 130.0), (200.0, 200.0), (260.0, 260.0)];
        let bent: Vec<(f64, f64)> =
            vec![(1.0, 1.0), (130.0, 130.0), (200.0, 210.0), (260.0, 260.0)];
        let make = |pts: Vec<(f64, f64)>| {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 4).unwrap();
            HTuningProblem::new(
                set,
                Budget::units(200),
                Arc::new(crowdtune_core::rate::TabulatedRate::new(pts).unwrap()),
            )
            .unwrap()
        };
        assert_ne!(
            PlanFingerprint::of(&make(straight), StrategyChoice::Auto),
            PlanFingerprint::of(&make(bent), StrategyChoice::Auto)
        );
    }

    /// The family key is the exact key with the budget factored out: budgets
    /// collapse into one family while everything else still discriminates.
    #[test]
    fn family_fingerprint_factors_out_only_the_budget() {
        let ra = StrategyChoice::RepetitionAlgorithm;
        let base = FamilyFingerprint::of(&problem("v", 100, 1.0), ra);
        assert_eq!(base, FamilyFingerprint::of(&problem("v", 5000, 1.0), ra));
        assert_ne!(
            PlanFingerprint::of(&problem("v", 100, 1.0), ra),
            PlanFingerprint::of(&problem("v", 5000, 1.0), ra),
            "exact keys must still split by budget"
        );
        // Rate curve, strategy and task shape still discriminate.
        assert_ne!(base, FamilyFingerprint::of(&problem("v", 100, 2.0), ra));
        assert_ne!(
            base,
            FamilyFingerprint::of(&problem("v", 100, 1.0), StrategyChoice::Auto)
        );
        let mut set = TaskSet::new();
        let ty = set.add_type("v", 2.0).unwrap();
        set.add_tasks(ty, 4, 3).unwrap();
        let other = HTuningProblem::new(
            set,
            Budget::units(100),
            Arc::new(LinearRate::new(1.0, 1.0).unwrap()),
        )
        .unwrap();
        assert_ne!(base, FamilyFingerprint::of(&other, ra));
    }

    /// Back-compat contract: the default market must hash identically to the
    /// market-less scheme, so pre-market caches and stores stay warm, while
    /// any other market must split both key spaces.
    #[test]
    fn default_market_fingerprints_match_the_pre_market_scheme() {
        let p = problem("v", 100, 1.0);
        let ra = StrategyChoice::RepetitionAlgorithm;
        assert_eq!(
            PlanFingerprint::of(&p, ra),
            PlanFingerprint::of_market(&p, ra, MarketId::DEFAULT)
        );
        assert_eq!(
            FamilyFingerprint::of(&p, ra),
            FamilyFingerprint::of_market(&p, ra, MarketId::DEFAULT)
        );
        // A non-default market splits the key space even when the belief is
        // bit-identical.
        assert_ne!(
            PlanFingerprint::of(&p, ra),
            PlanFingerprint::of_market(&p, ra, MarketId(1))
        );
        assert_ne!(
            FamilyFingerprint::of(&p, ra),
            FamilyFingerprint::of_market(&p, ra, MarketId(1))
        );
        assert_ne!(
            FamilyFingerprint::of_market(&p, ra, MarketId(1)),
            FamilyFingerprint::of_market(&p, ra, MarketId(2))
        );
    }

    #[test]
    fn task_shape_discriminates() {
        let mut set = TaskSet::new();
        let ty = set.add_type("v", 2.0).unwrap();
        set.add_tasks(ty, 4, 3).unwrap(); // 3 tasks × 4 reps vs 4 tasks × 3 reps
        let other = HTuningProblem::new(
            set,
            Budget::units(100),
            Arc::new(LinearRate::new(1.0, 1.0).unwrap()),
        )
        .unwrap();
        assert_ne!(
            PlanFingerprint::of(&problem("v", 100, 1.0), StrategyChoice::Auto),
            PlanFingerprint::of(&other, StrategyChoice::Auto)
        );
    }
}

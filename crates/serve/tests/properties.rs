//! Property tests of the serving layer over randomly generated workloads
//! (seeded, so every failure reproduces):
//!
//! * a plan-cache hit returns a plan **bit-identical** to the cold solve;
//! * a plan served from a **family** (same workload, different budget) is
//!   bit-identical to a cold solve at that budget — across random problems,
//!   budget ladders in any order, and concurrent extension order;
//! * re-tuning against observations consistent with the current belief (no
//!   drift) never changes the allocation.

use crowdtune_core::money::{Allocation, Budget, Payment};
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use crowdtune_market::control::{ControlAction, MarketController, MarketView};
use crowdtune_market::events::{Event, RepetitionId};
use crowdtune_market::time::SimTime;
use crowdtune_serve::{
    JobRequest, MarketId, PlanSource, RetunePolicy, Retuner, ServiceConfig, TuningService,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: u64 = 32;

fn arbitrary_request(rng: &mut StdRng, tenant: &str) -> JobRequest {
    let groups = rng.gen_range(1usize..4);
    let mut set = TaskSet::new();
    for g in 0..groups {
        let rate = rng.gen_range(0.5f64..4.0);
        let ty = set.add_type(format!("type{g}"), rate).unwrap();
        let reps = rng.gen_range(1u32..5);
        let count = rng.gen_range(1usize..5);
        set.add_tasks(ty, reps, count).unwrap();
    }
    let slots = set.total_repetitions();
    let budget = slots + rng.gen_range(0u64..30) * slots / 2;
    let slope = rng.gen_range(0.2f64..3.0);
    let intercept = rng.gen_range(0.0f64..2.0);
    JobRequest {
        tenant: tenant.to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(budget),
        rate_model: Arc::new(LinearRate::new(slope, intercept).unwrap()),
        strategy: StrategyChoice::Auto,
    }
}

/// Cache hits are bit-identical to the cold solve: same allocation (integer
/// payments), and bit-equal floating-point objective and latency estimates.
#[test]
fn cache_hits_are_bit_identical_to_cold_solves() {
    let service = TuningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arbitrary_request(&mut rng, "prop");
        let cold = service.tune(request.clone()).unwrap();
        assert_eq!(
            cold.source,
            PlanSource::ColdSolve,
            "seed {seed}: first solve must be cold"
        );
        let warm = service.tune(request).unwrap();
        assert_eq!(
            warm.source,
            PlanSource::CacheHit,
            "seed {seed}: repeat must hit the cache"
        );

        assert_eq!(
            cold.plan.result.allocation, warm.plan.result.allocation,
            "seed {seed}"
        );
        assert_eq!(cold.plan.result.strategy, warm.plan.result.strategy);
        let bits = |x: f64| x.to_bits();
        assert_eq!(
            cold.plan.result.objective.map(bits),
            warm.plan.result.objective.map(bits),
            "seed {seed}"
        );
        assert_eq!(
            bits(cold.plan.expected_latency),
            bits(warm.plan.expected_latency),
            "seed {seed}"
        );
        assert_eq!(
            bits(cold.plan.expected_on_hold_latency),
            bits(warm.plan.expected_on_hold_latency),
            "seed {seed}"
        );
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits, CASES);
    assert_eq!(stats.misses, CASES);
    service.shutdown();
}

/// A random Scenario-II (RA-resolved) workload: one type, at least two
/// distinct repetition classes.
fn arbitrary_ra_workload(rng: &mut StdRng) -> (TaskSet, Arc<LinearRate>) {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", rng.gen_range(0.5f64..4.0)).unwrap();
    let classes = rng.gen_range(2usize..5);
    let mut reps = 0u32;
    for _ in 0..classes {
        reps += rng.gen_range(1u32..4);
        set.add_tasks(ty, reps, rng.gen_range(1usize..5)).unwrap();
    }
    let model =
        Arc::new(LinearRate::new(rng.gen_range(0.2f64..3.0), rng.gen_range(0.05f64..2.0)).unwrap());
    (set, model)
}

/// The independent reference: a fresh tuner solving the problem outright.
fn cold_reference(set: &TaskSet, model: &Arc<LinearRate>, budget: u64) -> TunedPlan {
    Tuner::new(model.clone())
        .plan(set.clone(), Budget::units(budget))
        .unwrap()
}

fn assert_plans_bit_identical(served: &TunedPlan, cold: &TunedPlan, context: &str) {
    assert_eq!(
        served.result.allocation, cold.result.allocation,
        "{context}"
    );
    assert_eq!(served.result.strategy, cold.result.strategy, "{context}");
    let bits = |x: f64| x.to_bits();
    assert_eq!(
        served.result.objective.map(bits),
        cold.result.objective.map(bits),
        "{context}"
    );
    assert_eq!(
        bits(served.expected_latency),
        bits(cold.expected_latency),
        "{context}"
    );
    assert_eq!(
        bits(served.expected_on_hold_latency),
        bits(cold.expected_on_hold_latency),
        "{context}"
    );
}

/// Family-served plans are bit-identical to cold solves across random
/// problems and shuffled budget ladders: whatever order the budgets arrive
/// in (prefix reads and in-place extensions interleaved), every answer
/// matches a from-scratch solve at that budget.
#[test]
fn family_served_budget_ladders_are_bit_identical_to_cold_solves() {
    let service = TuningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let (set, model) = arbitrary_ra_workload(&mut rng);
        let slots = set.total_repetitions();
        // A ladder of strictly distinct budgets, then shuffled so prefix
        // reads and extensions interleave.
        let mut ladder: Vec<u64> = Vec::new();
        let mut budget = slots + rng.gen_range(0u64..slots);
        for _ in 0..rng.gen_range(3usize..7) {
            ladder.push(budget);
            budget += (rng.gen_range(1u64..8) * slots.max(2) / 2).max(1);
        }
        for _ in 0..ladder.len() {
            let i = rng.gen_range(0usize..ladder.len());
            let j = rng.gen_range(0usize..ladder.len());
            ladder.swap(i, j);
        }
        for (step, &budget) in ladder.iter().enumerate() {
            let served = service
                .tune(JobRequest {
                    tenant: format!("tenant-{step}"),
                    market: MarketId::DEFAULT,
                    task_set: set.clone(),
                    budget: Budget::units(budget),
                    rate_model: model.clone(),
                    strategy: StrategyChoice::Auto,
                })
                .unwrap();
            if step == 0 {
                assert_eq!(served.source, PlanSource::ColdSolve, "seed {seed}");
            } else {
                assert_eq!(
                    served.source,
                    PlanSource::FamilyHit,
                    "seed {seed} step {step}: same workload at a new budget \
                     must be family-served"
                );
            }
            let cold = cold_reference(&set, &model, budget);
            assert_plans_bit_identical(
                &served.plan,
                &cold,
                &format!("seed {seed} budget {budget}"),
            );
        }
    }
    let stats = service.family_stats();
    assert_eq!(stats.builds, CASES, "one family per seed");
    service.shutdown();
}

/// Concurrent tenants hammering one family with different budgets: the
/// extension order is whatever the thread scheduler produces, yet every
/// served plan still matches the cold solve bit-for-bit.
#[test]
fn concurrent_family_extensions_are_bit_identical_to_cold_solves() {
    for seed in 0..8u64 {
        let service = Arc::new(TuningService::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        }));
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let (set, model) = arbitrary_ra_workload(&mut rng);
        let slots = set.total_repetitions();
        let budgets: Vec<u64> = (0..8u64).map(|i| slots + i * slots + (i % 3)).collect();

        let served: Vec<TunedPlan> = std::thread::scope(|scope| {
            let handles: Vec<_> = budgets
                .iter()
                .map(|&budget| {
                    let service = service.clone();
                    let set = set.clone();
                    let model = model.clone();
                    scope.spawn(move || {
                        let served = service
                            .tune(JobRequest {
                                tenant: format!("tenant-{budget}"),
                                market: MarketId::DEFAULT,
                                task_set: set,
                                budget: Budget::units(budget),
                                rate_model: model,
                                strategy: StrategyChoice::Auto,
                            })
                            .unwrap();
                        (*served.plan).clone()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (plan, &budget) in served.iter().zip(&budgets) {
            let cold = cold_reference(&set, &model, budget);
            assert_plans_bit_identical(plan, &cold, &format!("seed {seed} budget {budget}"));
        }
        let metrics = service.metrics();
        assert_eq!(
            metrics.completed(),
            budgets.len() as u64,
            "seed {seed}: every job answered"
        );
    }
}

/// Drives a retuner through a synthetic event stream whose acceptance delays
/// match the belief exactly (duration `1/λ(p)` makes the exponential MLE
/// reproduce `λ(p)`), asserting every control action is `Continue`.
#[test]
fn retuning_without_drift_never_changes_the_allocation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let tasks = rng.gen_range(2usize..6);
        let reps = rng.gen_range(2u32..4);
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", rng.gen_range(1.0f64..3.0)).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        let slots = set.total_repetitions();
        let budget = slots * rng.gen_range(2u64..8);
        let slope = rng.gen_range(0.5f64..2.0);
        let model = Arc::new(LinearRate::new(slope, 0.0).unwrap());
        let problem =
            HTuningProblem::new(set.clone(), Budget::units(budget), model.clone()).unwrap();

        let mut retuner = Retuner::new(
            problem,
            StrategyChoice::Auto,
            RetunePolicy {
                every_completions: 1,
                min_observations: 1,
                drift_threshold: 0.05,
                ..RetunePolicy::default()
            },
        );

        let payment = rng.gen_range(1u64..6);
        let allocation = Allocation::uniform(&set.repetition_counts(), Payment::units(payment));
        let mut completed = vec![0u32; tasks];
        let mut published = vec![0u32; tasks];
        let mut committed = 0u64;
        let mut now = 0.0f64;
        // Sequential walk: publish, accept (exactly on-expectation), submit.
        for task in 0..tasks {
            for rep in 0..reps {
                let id = RepetitionId::new(task, rep);
                published[task] += 1;
                committed += payment;
                let view = MarketView {
                    completed: &completed,
                    published: &published,
                    committed_units: committed,
                    allocation: &allocation,
                };
                assert!(matches!(
                    retuner.on_event(SimTime::new(now), &Event::Publish(id), &view),
                    ControlAction::Continue
                ));
                now += 1.0 / (slope * payment as f64);
                assert!(matches!(
                    retuner.on_event(
                        SimTime::new(now),
                        &Event::Accept {
                            repetition: id,
                            worker: None
                        },
                        &view,
                    ),
                    ControlAction::Continue
                ));
                completed[task] += 1;
                let view = MarketView {
                    completed: &completed,
                    published: &published,
                    committed_units: committed,
                    allocation: &allocation,
                };
                let action = retuner.on_event(
                    SimTime::new(now),
                    &Event::Submit {
                        repetition: id,
                        worker: None,
                    },
                    &view,
                );
                assert!(
                    matches!(action, ControlAction::Continue),
                    "seed {seed}: no-drift re-tuning must be a no-op"
                );
            }
        }
        assert_eq!(retuner.stats().retunes, 0, "seed {seed}");
        assert!(retuner.stats().evaluations > 0, "seed {seed}");
    }
}

//! Property tests of the serving layer over randomly generated workloads
//! (seeded, so every failure reproduces):
//!
//! * a plan-cache hit returns a plan **bit-identical** to the cold solve;
//! * re-tuning against observations consistent with the current belief (no
//!   drift) never changes the allocation.

use crowdtune_core::money::{Allocation, Budget, Payment};
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_market::control::{ControlAction, MarketController, MarketView};
use crowdtune_market::events::{Event, RepetitionId};
use crowdtune_market::time::SimTime;
use crowdtune_serve::{JobRequest, RetunePolicy, Retuner, ServiceConfig, TuningService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: u64 = 32;

fn arbitrary_request(rng: &mut StdRng, tenant: &str) -> JobRequest {
    let groups = rng.gen_range(1usize..4);
    let mut set = TaskSet::new();
    for g in 0..groups {
        let rate = rng.gen_range(0.5f64..4.0);
        let ty = set.add_type(format!("type{g}"), rate).unwrap();
        let reps = rng.gen_range(1u32..5);
        let count = rng.gen_range(1usize..5);
        set.add_tasks(ty, reps, count).unwrap();
    }
    let slots = set.total_repetitions();
    let budget = slots + rng.gen_range(0u64..30) * slots / 2;
    let slope = rng.gen_range(0.2f64..3.0);
    let intercept = rng.gen_range(0.0f64..2.0);
    JobRequest {
        tenant: tenant.to_owned(),
        task_set: set,
        budget: Budget::units(budget),
        rate_model: Arc::new(LinearRate::new(slope, intercept).unwrap()),
        strategy: StrategyChoice::Auto,
    }
}

/// Cache hits are bit-identical to the cold solve: same allocation (integer
/// payments), and bit-equal floating-point objective and latency estimates.
#[test]
fn cache_hits_are_bit_identical_to_cold_solves() {
    let service = TuningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arbitrary_request(&mut rng, "prop");
        let cold = service.tune(request.clone()).unwrap();
        assert!(!cold.cache_hit, "seed {seed}: first solve must be cold");
        let warm = service.tune(request).unwrap();
        assert!(warm.cache_hit, "seed {seed}: repeat must hit the cache");

        assert_eq!(
            cold.plan.result.allocation, warm.plan.result.allocation,
            "seed {seed}"
        );
        assert_eq!(cold.plan.result.strategy, warm.plan.result.strategy);
        let bits = |x: f64| x.to_bits();
        assert_eq!(
            cold.plan.result.objective.map(bits),
            warm.plan.result.objective.map(bits),
            "seed {seed}"
        );
        assert_eq!(
            bits(cold.plan.expected_latency),
            bits(warm.plan.expected_latency),
            "seed {seed}"
        );
        assert_eq!(
            bits(cold.plan.expected_on_hold_latency),
            bits(warm.plan.expected_on_hold_latency),
            "seed {seed}"
        );
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits, CASES);
    assert_eq!(stats.misses, CASES);
    service.shutdown();
}

/// Drives a retuner through a synthetic event stream whose acceptance delays
/// match the belief exactly (duration `1/λ(p)` makes the exponential MLE
/// reproduce `λ(p)`), asserting every control action is `Continue`.
#[test]
fn retuning_without_drift_never_changes_the_allocation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let tasks = rng.gen_range(2usize..6);
        let reps = rng.gen_range(2u32..4);
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", rng.gen_range(1.0f64..3.0)).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        let slots = set.total_repetitions();
        let budget = slots * rng.gen_range(2u64..8);
        let slope = rng.gen_range(0.5f64..2.0);
        let model = Arc::new(LinearRate::new(slope, 0.0).unwrap());
        let problem =
            HTuningProblem::new(set.clone(), Budget::units(budget), model.clone()).unwrap();

        let mut retuner = Retuner::new(
            problem,
            StrategyChoice::Auto,
            RetunePolicy {
                every_completions: 1,
                min_observations: 1,
                drift_threshold: 0.05,
            },
        );

        let payment = rng.gen_range(1u64..6);
        let allocation = Allocation::uniform(&set.repetition_counts(), Payment::units(payment));
        let mut completed = vec![0u32; tasks];
        let mut published = vec![0u32; tasks];
        let mut committed = 0u64;
        let mut now = 0.0f64;
        // Sequential walk: publish, accept (exactly on-expectation), submit.
        for task in 0..tasks {
            for rep in 0..reps {
                let id = RepetitionId::new(task, rep);
                published[task] += 1;
                committed += payment;
                let view = MarketView {
                    completed: &completed,
                    published: &published,
                    committed_units: committed,
                    allocation: &allocation,
                };
                assert!(matches!(
                    retuner.on_event(SimTime::new(now), &Event::Publish(id), &view),
                    ControlAction::Continue
                ));
                now += 1.0 / (slope * payment as f64);
                assert!(matches!(
                    retuner.on_event(
                        SimTime::new(now),
                        &Event::Accept {
                            repetition: id,
                            worker: None
                        },
                        &view,
                    ),
                    ControlAction::Continue
                ));
                completed[task] += 1;
                let view = MarketView {
                    completed: &completed,
                    published: &published,
                    committed_units: committed,
                    allocation: &allocation,
                };
                let action = retuner.on_event(
                    SimTime::new(now),
                    &Event::Submit {
                        repetition: id,
                        worker: None,
                    },
                    &view,
                );
                assert!(
                    matches!(action, ControlAction::Continue),
                    "seed {seed}: no-drift re-tuning must be a no-op"
                );
            }
        }
        assert_eq!(retuner.stats().retunes, 0, "seed {seed}");
        assert!(retuner.stats().evaluations > 0, "seed {seed}");
    }
}

//! Restart-recovery tests of the durable plan store:
//!
//! * after `TuningService::recover`, every previously served plan comes back
//!   **bit-identical** with zero cold solves on the warm set — property
//!   tested over seeded random workloads;
//! * post-restart family serves at *new* budgets rehydrate the persisted DP
//!   table (no cold solve) and still match cold references bit-for-bit;
//! * journaled in-flight jobs are replayed exactly once, under their
//!   original ids;
//! * every corruption mode — truncated journal tail, bit-flipped plan
//!   snapshot, version-mismatch header — degrades to cold solves (asserted
//!   via `ServiceMetrics` counters), never to wrong plans.

use crowdtune_core::money::Budget;
use crowdtune_core::rate::{LinearRate, RateModel, RateSpec, TabulatedRate};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use crowdtune_serve::{
    JobRequest, JournalRecord, MarketId, PlanSource, PlanStore, ServiceConfig, TuningService,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A process-unique scratch directory (no tempfile crate offline).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "crowdtune-persist-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }
}

fn assert_plans_bit_identical(a: &TunedPlan, b: &TunedPlan, context: &str) {
    assert_eq!(a.result.allocation, b.result.allocation, "{context}");
    assert_eq!(a.result.strategy, b.result.strategy, "{context}");
    let bits = |x: f64| x.to_bits();
    assert_eq!(
        a.result.objective.map(bits),
        b.result.objective.map(bits),
        "{context}"
    );
    assert_eq!(
        bits(a.expected_latency),
        bits(b.expected_latency),
        "{context}"
    );
    assert_eq!(
        bits(a.expected_on_hold_latency),
        bits(b.expected_on_hold_latency),
        "{context}"
    );
}

/// A random workload mixing the three scenarios (EA, RA, HA resolved).
fn arbitrary_request(rng: &mut StdRng, tenant: &str) -> JobRequest {
    let type_count = rng.gen_range(1usize..3);
    let mut set = TaskSet::new();
    for t in 0..type_count {
        let rate = rng.gen_range(0.5f64..4.0);
        let ty = set.add_type(format!("type{t}"), rate).unwrap();
        for _ in 0..rng.gen_range(1usize..3) {
            let reps = rng.gen_range(1u32..5);
            let count = rng.gen_range(1usize..4);
            set.add_tasks(ty, reps, count).unwrap();
        }
    }
    let slots = set.total_repetitions();
    let budget = slots + rng.gen_range(0u64..20) * slots / 2;
    let slope = rng.gen_range(0.2f64..3.0);
    let intercept = rng.gen_range(0.05f64..2.0);
    JobRequest {
        tenant: tenant.to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(budget),
        rate_model: Arc::new(LinearRate::new(slope, intercept).unwrap()),
        strategy: StrategyChoice::Auto,
    }
}

/// The headline recovery property: serve a seeded random workload, restart,
/// re-serve — every plan on the warm set is bit-identical to its
/// pre-restart bytes and not a single cold solve happens.
#[test]
fn recovered_plans_are_bit_identical_with_zero_cold_solves() {
    let dir = scratch_dir("property");
    const CASES: u64 = 24;
    let mut before: Vec<(JobRequest, TunedPlan)> = Vec::new();
    {
        let service = TuningService::recover(service_config(), &dir).unwrap();
        assert_eq!(service.recovery_stats().unwrap().loaded_plans, 0);
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(7000 + seed);
            let request = arbitrary_request(&mut rng, "prop");
            let served = service.tune(request.clone()).unwrap();
            before.push((request, (*served.plan).clone()));
        }
        service.shutdown(); // flushes the working set
    }

    let service = TuningService::recover(service_config(), &dir).unwrap();
    let recovery = service.recovery_stats().unwrap();
    assert!(
        recovery.loaded_plans >= CASES,
        "warm set loaded: {recovery:?}"
    );
    assert_eq!(recovery.corrupt_streams, 0);
    assert_eq!(recovery.corrupt_tails, 0);
    assert_eq!(recovery.invalid_records, 0);
    for (i, (request, expected)) in before.iter().enumerate() {
        let served = service.tune(request.clone()).unwrap();
        assert_eq!(
            served.source,
            PlanSource::CacheHit,
            "case {i}: warm-set job must be served from the recovered cache"
        );
        assert_plans_bit_identical(&served.plan, expected, &format!("case {i}"));
        // The recovered bytes also match an independent cold reference.
        let cold = Tuner::new(request.rate_model.clone())
            .with_strategy(request.strategy)
            .plan(request.task_set.clone(), request.budget)
            .unwrap();
        assert_plans_bit_identical(&served.plan, &cold, &format!("case {i} vs cold"));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.cold_solves, 0, "no cold solve on the warm set");
    assert_eq!(metrics.cache_hits, CASES);
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Families survive restarts as DP-table snapshots: budgets never served
/// before the restart are answered by rehydrating the persisted table — a
/// family hit, not a cold solve — and stay bit-identical to cold references.
#[test]
fn recovered_families_answer_new_budgets_without_cold_solves() {
    let dir = scratch_dir("family");
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 4).unwrap();
    set.add_tasks(ty, 5, 4).unwrap();
    let model = Arc::new(LinearRate::new(1.5, 0.5).unwrap());
    let request = |budget: u64| JobRequest {
        tenant: "acme".to_owned(),
        market: MarketId::DEFAULT,
        task_set: set.clone(),
        budget: Budget::units(budget),
        rate_model: model.clone(),
        strategy: StrategyChoice::Auto,
    };
    {
        let service = TuningService::recover(service_config(), &dir).unwrap();
        // Seed the family and grow its table to budget 300.
        for budget in [120u64, 300] {
            service.tune(request(budget)).unwrap();
        }
        service.shutdown();
    }
    let service = TuningService::recover(service_config(), &dir).unwrap();
    assert_eq!(service.recovery_stats().unwrap().loaded_families, 1);
    // Budgets 90 (prefix read) and 420 (extension) were never served before.
    for budget in [90u64, 420] {
        let served = service.tune(request(budget)).unwrap();
        assert_eq!(
            served.source,
            PlanSource::FamilyHit,
            "budget {budget}: rehydrated family must answer, not a cold solve"
        );
        let cold = Tuner::new(model.clone())
            .plan(set.clone(), Budget::units(budget))
            .unwrap();
        assert_plans_bit_identical(&served.plan, &cold, &format!("budget {budget}"));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.cold_solves, 0);
    assert_eq!(metrics.family_hits, 2);
    let families = service.family_stats();
    assert_eq!(families.reloads, 1, "one snapshot rehydration");
    assert_eq!(families.builds, 0, "never re-seeded");
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A family evicted by the LRU bound is rehydrated from its snapshot on the
/// next miss instead of re-seeding cold (durable services only).
#[test]
fn evicted_families_rehydrate_from_the_archive() {
    let dir = scratch_dir("evict");
    let service = TuningService::recover(
        ServiceConfig {
            workers: 1,
            family_shards: 1,
            ..ServiceConfig::default()
        },
        &dir,
    )
    .unwrap();
    let request = |reps_a: u32, slope_milli: u64, budget: u64| {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, reps_a, 2).unwrap();
        set.add_tasks(ty, reps_a + 1, 2).unwrap();
        JobRequest {
            tenant: "acme".to_owned(),
            market: MarketId::DEFAULT,
            task_set: set,
            budget: Budget::units(budget),
            rate_model: Arc::new(LinearRate::new(1.0 + slope_milli as f64 / 1000.0, 1.0).unwrap()),
            strategy: StrategyChoice::Auto,
        }
    };
    // Seed the hot family, then flood one shard past its 128-family cap with
    // distinct curves so the hot family is evicted.
    let hot = request(2, 0, 40);
    let first = service.tune(hot.clone()).unwrap();
    assert_eq!(first.source, PlanSource::ColdSolve);
    for i in 1..=128u64 {
        service.tune(request(2, i, 40)).unwrap();
    }
    let stats = service.family_stats();
    assert!(stats.evictions >= 1, "cap must have evicted: {stats:?}");
    // A *new budget* of the hot family misses the cache and the resident
    // map, but rehydrates from the archive: family hit, no new build.
    let builds_before = service.family_stats().builds;
    let served = service.tune(hot_with_budget(&hot, 64)).unwrap();
    assert_eq!(
        served.source,
        PlanSource::FamilyHit,
        "evicted-but-persisted family must rehydrate"
    );
    assert_eq!(service.family_stats().builds, builds_before);
    assert!(service.family_stats().reloads >= 1);
    let cold = Tuner::new(hot.rate_model.clone())
        .plan(hot.task_set.clone(), Budget::units(64))
        .unwrap();
    assert_plans_bit_identical(&served.plan, &cold, "rehydrated family");
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

fn hot_with_budget(request: &JobRequest, budget: u64) -> JobRequest {
    JobRequest {
        budget: Budget::units(budget),
        ..request.clone()
    }
}

/// Journaled in-flight jobs (submitted, never completed) are re-enqueued on
/// recovery under their original ids and complete normally; finished jobs
/// are not replayed.
#[test]
fn journal_replays_only_unfinished_jobs() {
    let dir = scratch_dir("journal");
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 2).unwrap();
    {
        // Craft a journal with one finished and one in-flight job, as a
        // crashed process would leave it.
        let (store, _) = PlanStore::open(&dir).unwrap();
        store.record_journal(&JournalRecord::Submitted {
            job_id: 3,
            tenant: "acme".to_owned(),
            market: MarketId::DEFAULT,
            task_set: set.clone(),
            budget: 30,
            rate: RateSpec::Linear(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
            attempts: 0,
        });
        store.record_journal(&JournalRecord::Completed { job_id: 3 });
        store.record_journal(&JournalRecord::Submitted {
            job_id: 7,
            tenant: "acme".to_owned(),
            market: MarketId::DEFAULT,
            task_set: set.clone(),
            budget: 60,
            rate: RateSpec::Linear(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
            attempts: 0,
        });
        store.flush();
    }
    let service = TuningService::recover(service_config(), &dir).unwrap();
    let recovery = service.recovery_stats().unwrap();
    assert_eq!(recovery.replayed_jobs, 1, "only job 7 is in flight");
    assert_eq!(recovery.dropped_replays, 0);
    // The replayed job completes in the background and lands in the cache.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.metrics().completed() < 1 {
        assert!(Instant::now() < deadline, "replayed job never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Serving the same workload now hits the cache seeded by the replay.
    let served = service
        .tune(JobRequest {
            tenant: "acme".to_owned(),
            market: MarketId::DEFAULT,
            task_set: set,
            budget: Budget::units(60),
            rate_model: Arc::new(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
        })
        .unwrap();
    assert_eq!(served.source, PlanSource::CacheHit);
    // New ids resume past the journaled maximum: no collision with job 7.
    assert!(served.job_id > 7, "id counter must resume past the journal");
    service.shutdown();

    // After the clean shutdown the journal holds a completion for job 7, so
    // a second recovery replays nothing.
    let service = TuningService::recover(service_config(), &dir).unwrap();
    assert_eq!(service.recovery_stats().unwrap().replayed_jobs, 0);
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Runs a small workload, then applies `corrupt` to the store directory and
/// recovers. Returns the recovered service for per-mode assertions.
fn recover_after_corruption(
    tag: &str,
    corrupt: impl FnOnce(&PathBuf),
) -> (TuningService, JobRequest, PathBuf) {
    let dir = scratch_dir(tag);
    // A heterogeneous (HA-resolved) workload: it bypasses the family layer,
    // so serving it after the restart isolates the plan stream — an intact
    // families.log cannot mask a corrupted plans.log (RA workloads would be
    // rehydrated from their family snapshot instead, which is also correct
    // but not what these tests pin down).
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 3.0).unwrap();
    let hard = set.add_type("hard", 1.0).unwrap();
    set.add_tasks(easy, 3, 2).unwrap();
    set.add_tasks(hard, 5, 2).unwrap();
    let request = JobRequest {
        tenant: "acme".to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(100),
        rate_model: Arc::new(LinearRate::new(1.25, 0.75).unwrap()),
        strategy: StrategyChoice::Auto,
    };
    {
        let service = TuningService::recover(service_config(), &dir).unwrap();
        service.tune(request.clone()).unwrap();
        service.shutdown();
    }
    corrupt(&dir);
    let service = TuningService::recover(service_config(), &dir).unwrap();
    (service, request, dir)
}

/// Truncated journal tail: the partial record is dropped, recovery proceeds,
/// and the workload cold-solves again (counted by `ServiceMetrics`).
#[test]
fn truncated_journal_tail_recovers_cold() {
    let (service, request, dir) = recover_after_corruption("trunc-journal", |dir| {
        let path = dir.join("journal.log");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len().saturating_sub(9)]).unwrap();
    });
    let recovery = service.recovery_stats().unwrap();
    assert_eq!(recovery.corrupt_tails, 1, "{recovery:?}");
    // The torn record was the last journal entry (a completion); at worst
    // its job replays once — it must not wedge recovery. Plans are intact.
    let served = service.tune(request).unwrap();
    assert_eq!(served.source, PlanSource::CacheHit);
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Bit-flipped plan snapshot: the checksum rejects the record (and its
/// suffix), the warm set is gone, and the service cold-solves — asserted via
/// the `cold_solves` counter — instead of serving a wrong plan.
#[test]
fn bit_flipped_plan_snapshot_recovers_cold() {
    let (service, request, dir) = recover_after_corruption("bitflip-plan", |dir| {
        let path = dir.join("plans.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[header_end + 40] ^= 0x04; // inside the first record
        std::fs::write(&path, &bytes).unwrap();
    });
    let recovery = service.recovery_stats().unwrap();
    assert_eq!(recovery.loaded_plans, 0, "flipped snapshot must not load");
    assert!(recovery.corrupt_tails >= 1, "{recovery:?}");
    let served = service.tune(request.clone()).unwrap();
    assert_ne!(
        served.source,
        PlanSource::CacheHit,
        "the corrupt snapshot must not be served"
    );
    assert_eq!(service.metrics().cold_solves, 1);
    // Degradation is to a *correct* cold solve.
    let cold = Tuner::new(request.rate_model.clone())
        .plan(request.task_set.clone(), request.budget)
        .unwrap();
    assert_plans_bit_identical(&served.plan, &cold, "post-corruption solve");
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Ad-hoc rate models (no native `RateSpec`) are journaled through a
/// sampled tabulated stand-in, so closure-backed jobs survive a crash. The
/// exact-knot interpolation of `TabulatedRate` makes a plan solved from the
/// journaled spec bit-identical to one solved from the original model at
/// every on-grid budget.
#[test]
fn adhoc_rate_models_are_journaled_via_sampled_tables() {
    struct AdHoc;
    impl RateModel for AdHoc {
        fn on_hold_rate(&self, payment_units: f64) -> f64 {
            0.4 * payment_units.sqrt() + 0.3
        }
        fn describe(&self) -> String {
            "adhoc sqrt curve".to_owned()
        }
    }
    let dir = scratch_dir("adhoc");
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 2).unwrap();
    let request = JobRequest {
        tenant: "acme".to_owned(),
        market: MarketId::DEFAULT,
        task_set: set.clone(),
        budget: Budget::units(40),
        rate_model: Arc::new(AdHoc),
        strategy: StrategyChoice::Auto,
    };
    let served = {
        let service = TuningService::recover(service_config(), &dir).unwrap();
        let served = service.tune(request).unwrap();
        service.shutdown();
        served
    };
    // The journal holds a Submitted record for the ad-hoc job, with the
    // model persisted as a sampled table (a crash before completion would
    // replay it; before this fallback the job was simply not journaled).
    let journal = std::fs::read_to_string(dir.join("journal.log")).unwrap();
    assert!(
        journal.contains("Submitted") && journal.contains("Tabulated"),
        "ad-hoc submissions must journal a sampled tabulated spec:\n{journal}"
    );
    // Bit-identity on the grid: a replay would rebuild the sampled spec and
    // re-solve — which matches the original closure's plan exactly, because
    // every payment the solver evaluates is an interpolation knot.
    let sampled = TabulatedRate::sampled_from(&AdHoc, 40).unwrap();
    let rebuilt = sampled.to_spec().unwrap().build().unwrap();
    let replayed = Tuner::new(rebuilt).plan(set, Budget::units(40)).unwrap();
    assert_plans_bit_identical(&served.plan, &replayed, "sampled stand-in");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Version-mismatch header: the whole stream is ignored and restarted; the
/// service cold-solves the workload.
#[test]
fn version_mismatch_header_recovers_cold() {
    let (service, request, dir) = recover_after_corruption("version", |dir| {
        for file in ["plans.log", "families.log", "journal.log"] {
            let path = dir.join(file);
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(
                &path,
                text.replace("crowdtune-store v1", "crowdtune-store v9"),
            )
            .unwrap();
        }
    });
    let recovery = service.recovery_stats().unwrap();
    assert_eq!(recovery.corrupt_streams, 3, "{recovery:?}");
    assert_eq!(recovery.loaded_plans, 0);
    assert_eq!(recovery.loaded_families, 0);
    let served = service.tune(request).unwrap();
    assert_eq!(served.source, PlanSource::ColdSolve);
    assert_eq!(service.metrics().cold_solves, 1);
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

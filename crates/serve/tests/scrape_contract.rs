//! The scrape contract: counters are monotone across scrapes taken under
//! concurrent load, and cross-counter invariants hold within one scrape —
//! a reader can never observe "torn" totals like
//! `cache_hits + family_hits + cold_solves > submitted`.

use crowdtune_core::money::Budget;
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_serve::{JobRequest, MarketId, ServiceConfig, TuningService};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn request(tenant: &str, reps: u32, tasks: usize, budget: u64) -> JobRequest {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, reps, tasks).unwrap();
    JobRequest {
        tenant: tenant.to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(budget),
        rate_model: Arc::new(LinearRate::unit_slope()),
        strategy: StrategyChoice::Auto,
    }
}

/// Pulls the value of `name{labels}` out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    };
    text.lines().find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        (metric == needle).then(|| value.parse().ok())?
    })
}

/// Hammers the service from several submitter threads while a scraper
/// thread snapshots metrics as fast as it can; every snapshot must satisfy
/// the monotonicity and parts-before-whole invariants.
#[test]
fn counters_are_monotone_and_untorn_under_concurrent_load() {
    let service = Arc::new(TuningService::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let scraper = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut last = service.metrics();
            while !stop.load(Ordering::Relaxed) {
                let snap = service.metrics();
                // Per-counter monotonicity across scrapes.
                assert!(snap.submitted >= last.submitted, "submitted went backwards");
                assert!(snap.rejected >= last.rejected, "rejected went backwards");
                assert!(
                    snap.cache_hits >= last.cache_hits,
                    "cache_hits went backwards"
                );
                assert!(
                    snap.family_hits >= last.family_hits,
                    "family_hits went backwards"
                );
                assert!(
                    snap.cold_solves >= last.cold_solves,
                    "cold_solves went backwards"
                );
                // The cross-counter invariant within one scrape: every
                // answered/failed job was submitted first, and the snapshot
                // reads the parts before the whole.
                assert!(
                    snap.completed() + snap.solve_errors <= snap.submitted,
                    "torn scrape: {} answered + {} failed > {} submitted",
                    snap.completed(),
                    snap.solve_errors,
                    snap.submitted,
                );
                last = snap;
                scrapes += 1;
            }
            scrapes
        })
    };

    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // Mix of cacheable repeats, RA-family budgets, and cold
                // shapes so every source counter moves.
                for round in 0..40u64 {
                    let budget = 80 + (round % 4) * 20;
                    let _ = service
                        .tune(request(&format!("tenant-{t}"), 3, 4, budget))
                        .unwrap();
                    let mut set = TaskSet::new();
                    let ty = set.add_type("vote", 2.0).unwrap();
                    set.add_tasks(ty, 2, 3).unwrap();
                    set.add_tasks(ty, 4, 3).unwrap();
                    let _ = service
                        .tune(JobRequest {
                            tenant: format!("tenant-{t}"),
                            market: MarketId::DEFAULT,
                            task_set: set,
                            budget: Budget::units(60 + (round % 8) * 10),
                            rate_model: Arc::new(LinearRate::unit_slope()),
                            strategy: StrategyChoice::Auto,
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for submitter in submitters {
        submitter.join().expect("submitter panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper panicked");
    assert!(scrapes > 0, "the scraper never ran");

    // Final totals are exact once the load stops.
    let snap = service.metrics();
    assert_eq!(snap.submitted, 4 * 40 * 2);
    assert_eq!(snap.completed(), snap.submitted);
}

/// The rendered expositions agree with the stats snapshots and with each
/// other, and the stage histograms / slowest ring actually filled.
#[test]
fn rendered_expositions_match_snapshots() {
    let service = TuningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for budget in [120, 90, 240, 120] {
        service.tune(request("acme", 3, 4, budget)).unwrap();
    }
    // A second repetition class routes through the family layer.
    for budget in [100, 64, 100] {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 2, 3).unwrap();
        set.add_tasks(ty, 4, 3).unwrap();
        service
            .tune(JobRequest {
                tenant: "acme".to_owned(),
                market: MarketId::DEFAULT,
                task_set: set,
                budget: Budget::units(budget),
                rate_model: Arc::new(LinearRate::unit_slope()),
                strategy: StrategyChoice::Auto,
            })
            .unwrap();
    }
    let snap = service.metrics();
    let cache = service.cache_stats();
    // Traces fold into the histograms *after* the response is delivered
    // (off the submitter's latency path), so wait for the last one to land:
    // the histogram count may briefly trail the counter, never exceed it.
    let total_samples = |text: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with("crowdtune_job_total_seconds_count"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum()
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let text = loop {
        let text = service.render_prometheus();
        let landed = total_samples(&text);
        assert!(
            landed <= snap.completed(),
            "histogram count {landed} exceeds completed {}",
            snap.completed()
        );
        if landed == snap.completed() {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "trace fold-in never settled ({landed} of {})",
            snap.completed()
        );
        std::thread::yield_now();
    };

    assert_eq!(
        prom_value(&text, "crowdtune_jobs_submitted_total", ""),
        Some(snap.submitted)
    );
    assert_eq!(
        prom_value(&text, "crowdtune_jobs_answered_total", "source=\"cache\""),
        Some(snap.cache_hits)
    );
    assert_eq!(
        prom_value(&text, "crowdtune_jobs_answered_total", "source=\"family\""),
        Some(snap.family_hits)
    );
    assert_eq!(
        prom_value(&text, "crowdtune_jobs_answered_total", "source=\"cold\""),
        Some(snap.cold_solves)
    );
    assert_eq!(
        prom_value(&text, "crowdtune_cache_hits_total", ""),
        Some(cache.hits)
    );
    assert_eq!(
        prom_value(&text, "crowdtune_cache_entries", ""),
        Some(cache.entries)
    );
    // The JSON rendering is valid JSON (the shim parser is strict) and
    // carries the same submitted total.
    let json = service.render_metrics_json();
    let value = serde_json::parse_value_str(&json).expect("metrics JSON parses");
    let samples = value
        .field("crowdtune_jobs_submitted_total")
        .and_then(|f| f.field("samples"))
        .expect("submitted family present");
    let submitted = match samples {
        serde_json::Value::Arr(items) => {
            match items.first().expect("one sample").field("value").unwrap() {
                serde_json::Value::I64(v) => *v as u64,
                serde_json::Value::U64(v) => *v,
                other => panic!("value is {}", other.kind()),
            }
        }
        other => panic!("samples is {}", other.kind()),
    };
    assert_eq!(submitted, snap.submitted);

    // The slowest ring holds complete traces, slowest first.
    let slowest = service.slowest_traces();
    assert!(!slowest.is_empty(), "no traces retained");
    let mut last_total = u64::MAX;
    for trace in &slowest {
        assert!(trace.total_ns() <= last_total, "ring not sorted");
        last_total = trace.total_ns();
        assert!(!trace.scenario.is_empty() && !trace.source.is_empty());
        assert!(trace.completed_ns >= trace.solve_start_ns);
        assert!(trace.dequeued_ns >= trace.enqueued_ns);
    }
    service.shutdown();
}

/// With telemetry off, traces stay empty and stage histograms never fill —
/// but the counter surfaces (and the scrape itself) still work.
#[test]
fn telemetry_off_keeps_counters_but_records_no_traces() {
    let service = TuningService::start(ServiceConfig {
        workers: 1,
        telemetry: false,
        ..ServiceConfig::default()
    });
    assert!(!service.telemetry_enabled());
    for _ in 0..3 {
        service.tune(request("acme", 3, 4, 80)).unwrap();
    }
    assert!(service.slowest_traces().is_empty());
    let text = service.render_prometheus();
    assert_eq!(
        prom_value(&text, "crowdtune_jobs_submitted_total", ""),
        Some(3)
    );
    let total_count: u64 = text
        .lines()
        .filter(|l| l.starts_with("crowdtune_job_total_seconds_count"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(total_count, 0, "stage histograms must stay empty");
    service.shutdown();
}

/// Persist-lag histograms fill when a durable store is attached: the lag
/// probe rides the write-behind record and is stamped by the writer.
#[test]
fn persist_lag_is_recorded_with_a_store() {
    let dir = std::env::temp_dir().join(format!("crowdtune-scrape-lag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = TuningService::recover(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        &dir,
    )
    .expect("open store");
    for budget in [80, 100, 120] {
        service.tune(request("acme", 3, 4, budget)).unwrap();
    }
    service.flush_store();
    let text = service.render_prometheus();
    let lag_count: u64 = text
        .lines()
        .filter(|l| l.starts_with("crowdtune_job_persist_lag_seconds_count"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert!(lag_count >= 1, "no persist-lag samples recorded:\n{text}");
    // Store parts-before-whole: retired never exceeds enqueued in a scrape.
    let retired = prom_value(&text, "crowdtune_store_retired_total", "").unwrap();
    let enqueued = prom_value(&text, "crowdtune_store_enqueued_total", "").unwrap();
    assert!(
        retired <= enqueued,
        "retired {retired} > enqueued {enqueued}"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Market calibration reproducing the parameters the paper measured on
//! Amazon Mechanical Turk (Section 5.2.2).
//!
//! The paper probed image-filter tasks at rewards $0.05–$0.12 and estimated
//! on-hold rates of 0.0038, 0.0062, 0.0121 and 0.0131 s⁻¹, reading them as
//! support for the Linearity Hypothesis. It also varied the difficulty (the
//! number of internal binary votes per HIT, 4–8) and observed that harder
//! tasks are taken up more slowly (Figure 5a) and processed more slowly
//! (Figure 5b). This module packages those observations into a calibration
//! object the campaign runner and the figure binaries use, so that the
//! simulated replay of the AMT experiments has the same *shape* as the
//! paper's measurements.

use crowdtune_core::error::Result;
use crowdtune_core::inference::{fit_linearity, LinearityFit, PriceRatePoint};
use crowdtune_core::rate::FnRate;
use serde::{Deserialize, Serialize};

/// Calibrated AMT-like market parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmtCalibration {
    /// `(reward_cents, on_hold_rate)` observations for the reference
    /// difficulty (4 internal votes).
    pub reward_rate_points: Vec<(f64, f64)>,
    /// Multiplicative slow-down of the on-hold rate per extra internal vote
    /// beyond the reference difficulty (Figure 5a: harder tasks attract
    /// workers more slowly).
    pub uptake_slowdown_per_vote: f64,
    /// Base processing time in seconds for the reference difficulty
    /// (Figure 5b: roughly tens of seconds).
    pub base_processing_secs: f64,
    /// Additional processing seconds per internal vote beyond the reference.
    pub processing_secs_per_vote: f64,
    /// Reference difficulty (number of internal votes) the reward/rate table
    /// was measured at.
    pub reference_votes: u32,
}

impl AmtCalibration {
    /// The calibration extracted from the paper's Section 5.2.2 numbers.
    pub fn paper() -> Self {
        AmtCalibration {
            reward_rate_points: vec![(5.0, 0.0038), (8.0, 0.0062), (10.0, 0.0121), (12.0, 0.0131)],
            uptake_slowdown_per_vote: 0.12,
            base_processing_secs: 60.0,
            processing_secs_per_vote: 25.0,
            reference_votes: 4,
        }
    }

    /// Least-squares fit of the reward → on-hold-rate relationship (the
    /// Linearity Hypothesis applied to the calibrated points).
    pub fn linearity_fit(&self) -> Result<LinearityFit> {
        let points: Vec<PriceRatePoint> = self
            .reward_rate_points
            .iter()
            .map(|&(price, rate)| PriceRatePoint::new(price, rate))
            .collect();
        fit_linearity(&points)
    }

    /// On-hold clock rate for a HIT paying `reward_cents` with `votes`
    /// internal binary votes. The reward dependence follows the fitted linear
    /// model; the difficulty dependence divides the rate by
    /// `1 + slowdown · (votes − reference)` (clamped so easier-than-reference
    /// tasks never get an unboundedly large boost).
    pub fn on_hold_rate(&self, reward_cents: f64, votes: u32) -> Result<f64> {
        let fit = self.linearity_fit()?;
        // The fitted line has a negative intercept, so at very small rewards
        // it would predict a non-positive rate. Rather than clamping to a
        // constant floor (which would create a flat region the tuning DP
        // cannot climb out of), fall back to a gently increasing floor so the
        // rate stays strictly monotone in the reward.
        let floor = 0.1 * fit.k.max(1e-6) * reward_cents + 1e-6;
        let base = fit.predict(reward_cents).max(floor);
        let delta = f64::from(votes) - f64::from(self.reference_votes);
        let slowdown = (1.0 + self.uptake_slowdown_per_vote * delta).max(0.25);
        Ok(base / slowdown)
    }

    /// Mean processing time (seconds) for a HIT with `votes` internal votes.
    pub fn mean_processing_secs(&self, votes: u32) -> f64 {
        let delta = (f64::from(votes) - f64::from(self.reference_votes)).max(0.0);
        self.base_processing_secs + self.processing_secs_per_vote * delta
    }

    /// Processing clock rate `λp` for a HIT with `votes` internal votes.
    pub fn processing_rate(&self, votes: u32) -> f64 {
        1.0 / self.mean_processing_secs(votes)
    }

    /// Builds a [`RateModel`](crowdtune_core::rate::RateModel) (payment in
    /// cents → on-hold rate) for a fixed
    /// difficulty, suitable for handing to the tuning algorithms and the
    /// market simulator.
    pub fn rate_model_for_votes(&self, votes: u32) -> Result<FnRate> {
        let fit = self.linearity_fit()?;
        let delta = f64::from(votes) - f64::from(self.reference_votes);
        let slowdown = (1.0 + self.uptake_slowdown_per_vote * delta).max(0.25);
        let label = format!("AMT calibration ({votes} votes)");
        Ok(FnRate::new(label, move |cents| {
            let floor = 0.1 * fit.k.max(1e-6) * cents + 1e-6;
            fit.predict(cents).max(floor) / slowdown
        }))
    }
}

impl Default for AmtCalibration {
    fn default() -> Self {
        AmtCalibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::RateModel;

    #[test]
    fn paper_calibration_supports_linearity() {
        let cal = AmtCalibration::paper();
        let fit = cal.linearity_fit().unwrap();
        assert!(fit.k > 0.0);
        assert!(fit.r_squared > 0.85);
    }

    #[test]
    fn on_hold_rate_increases_with_reward() {
        let cal = AmtCalibration::paper();
        let low = cal.on_hold_rate(5.0, 4).unwrap();
        let high = cal.on_hold_rate(12.0, 4).unwrap();
        assert!(high > low);
        // The fitted rates should be in the ballpark of the measured ones.
        assert!((low - 0.0038).abs() < 0.003, "low rate {low}");
        assert!((high - 0.0131).abs() < 0.004, "high rate {high}");
    }

    #[test]
    fn on_hold_rate_decreases_with_difficulty() {
        let cal = AmtCalibration::paper();
        let easy = cal.on_hold_rate(8.0, 4).unwrap();
        let hard = cal.on_hold_rate(8.0, 8).unwrap();
        assert!(hard < easy, "harder tasks must be taken up more slowly");
    }

    #[test]
    fn processing_time_grows_with_difficulty() {
        let cal = AmtCalibration::paper();
        assert!(cal.mean_processing_secs(8) > cal.mean_processing_secs(4));
        assert!(cal.processing_rate(8) < cal.processing_rate(4));
        // easier-than-reference difficulties do not go below the base time
        assert!((cal.mean_processing_secs(2) - cal.base_processing_secs).abs() < 1e-12);
    }

    #[test]
    fn rate_model_matches_direct_evaluation() {
        let cal = AmtCalibration::paper();
        let model = cal.rate_model_for_votes(6).unwrap();
        for cents in [5.0_f64, 8.0, 10.0, 12.0] {
            let direct = cal.on_hold_rate(cents, 6).unwrap();
            let via_model = model.on_hold_rate(cents);
            assert!((direct - via_model).abs() < 1e-12);
        }
        assert!(model.describe().contains("6 votes"));
    }

    #[test]
    fn rate_model_stays_positive_even_at_tiny_rewards() {
        let cal = AmtCalibration::paper();
        let model = cal.rate_model_for_votes(4).unwrap();
        assert!(model.on_hold_rate(0.0) > 0.0);
        assert!(model.on_hold_rate(1.0) > 0.0);
    }

    #[test]
    fn calibration_serde_round_trip() {
        let cal = AmtCalibration::paper();
        let json = serde_json::to_string(&cal).unwrap();
        let back: AmtCalibration = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cal);
    }
}

//! Simulated worker population and answer-quality model.
//!
//! The HPU abstraction notes that results are error-prone: a worker's answer
//! is correct only with some probability. For the dot-counting filter task we
//! model this mechanistically — each worker estimates an image's dot count
//! with multiplicative noise, then votes against the threshold — so accuracy
//! emerges from the task difficulty (how close counts are to the threshold)
//! and the worker's skill, as in the real experiment where "workers receive
//! their rewards when the provided answers are correct".

use crate::dotimage::FilterHitSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A simulated worker's behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Stable identifier within the population.
    pub id: u64,
    /// Relative standard deviation of the worker's count estimate (0.1 means
    /// the estimate is within ±10% of the truth about two thirds of the
    /// time).
    pub counting_noise: f64,
    /// Multiplier on processing speed: values below 1.0 mean faster than the
    /// population average, above 1.0 slower.
    pub speed_factor: f64,
}

impl WorkerProfile {
    /// Estimates the dot count of an image with this worker's noise, using
    /// the supplied RNG.
    pub fn estimate_count(&self, true_count: usize, rng: &mut StdRng) -> f64 {
        let truth = true_count as f64;
        // Sum of 12 uniforms minus 6 approximates a standard normal without
        // needing a dedicated distribution dependency.
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        (truth * (1.0 + self.counting_noise * z)).max(0.0)
    }

    /// Produces this worker's votes for a filter HIT: one boolean per
    /// candidate image (`true` = keep).
    pub fn answer_filter_hit(&self, spec: &FilterHitSpec, rng: &mut StdRng) -> Vec<bool> {
        spec.candidates
            .iter()
            .map(|img| self.estimate_count(img.count(), rng) >= spec.threshold as f64)
            .collect()
    }
}

/// A finite population of worker profiles from which the platform samples the
/// worker for each assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPopulation {
    profiles: Vec<WorkerProfile>,
}

impl WorkerPopulation {
    /// Generates a population of `size` workers whose counting noise is
    /// spread uniformly over `[min_noise, max_noise]` and whose speed factor
    /// is spread over `[0.7, 1.3]`.
    pub fn generate(size: usize, min_noise: f64, max_noise: f64, seed: u64) -> Self {
        assert!(size > 0, "population must not be empty");
        assert!(
            (0.0..=1.0).contains(&min_noise) && min_noise <= max_noise,
            "noise range must satisfy 0 <= min <= max <= 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles = (0..size as u64)
            .map(|id| WorkerProfile {
                id,
                counting_noise: rng.gen_range(min_noise..=max_noise),
                speed_factor: rng.gen_range(0.7..=1.3),
            })
            .collect();
        WorkerPopulation { profiles }
    }

    /// The paper-like default: 200 workers with 5–25% counting noise.
    pub fn default_population(seed: u64) -> Self {
        WorkerPopulation::generate(200, 0.05, 0.25, seed)
    }

    /// Number of workers in the population.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty (never true for generated ones).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles.
    pub fn profiles(&self) -> &[WorkerProfile] {
        &self.profiles
    }

    /// Samples one worker uniformly at random.
    pub fn sample(&self, rng: &mut StdRng) -> WorkerProfile {
        self.profiles[rng.gen_range(0..self.profiles.len())]
    }
}

/// Fraction of a worker's votes that match the ground truth of the HIT.
pub fn vote_accuracy(spec: &FilterHitSpec, votes: &[bool]) -> f64 {
    let truth = spec.ground_truth();
    if truth.is_empty() || truth.len() != votes.len() {
        return 0.0;
    }
    let correct = truth.iter().zip(votes).filter(|(t, v)| t == v).count();
    correct as f64 / truth.len() as f64
}

/// Aggregates several workers' vote vectors by per-image majority (ties
/// resolve to `true`, i.e. keep the image).
pub fn majority_vote(all_votes: &[Vec<bool>]) -> Vec<bool> {
    if all_votes.is_empty() {
        return Vec::new();
    }
    let len = all_votes[0].len();
    (0..len)
        .map(|i| {
            let keep = all_votes
                .iter()
                .filter(|votes| votes.get(i).copied().unwrap_or(false))
                .count();
            2 * keep >= all_votes.len()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotimage::DotImageGenerator;

    #[test]
    fn noiseless_worker_is_always_correct() {
        let worker = WorkerProfile {
            id: 0,
            counting_noise: 0.0,
            speed_factor: 1.0,
        };
        let mut generator = DotImageGenerator::new(1);
        let spec = generator.filter_hit(8, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let votes = worker.answer_filter_hit(&spec, &mut rng);
        assert_eq!(votes, spec.ground_truth());
        assert!((vote_accuracy(&spec, &votes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisier_workers_are_less_accurate() {
        let mut generator = DotImageGenerator::new(3);
        let specs = generator.filter_hits(40, 6, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let accurate = WorkerProfile {
            id: 0,
            counting_noise: 0.02,
            speed_factor: 1.0,
        };
        let sloppy = WorkerProfile {
            id: 1,
            counting_noise: 0.6,
            speed_factor: 1.0,
        };
        let mut acc_a = 0.0;
        let mut acc_s = 0.0;
        for spec in &specs {
            acc_a += vote_accuracy(spec, &accurate.answer_filter_hit(spec, &mut rng));
            acc_s += vote_accuracy(spec, &sloppy.answer_filter_hit(spec, &mut rng));
        }
        assert!(
            acc_a > acc_s,
            "low-noise worker should be more accurate ({acc_a} vs {acc_s})"
        );
    }

    #[test]
    fn estimate_is_nonnegative_and_unbiased_on_average() {
        let worker = WorkerProfile {
            id: 0,
            counting_noise: 0.2,
            speed_factor: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let truth = 50usize;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| worker.estimate_count(truth, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - truth as f64).abs() / (truth as f64) < 0.02);
        assert!(worker.estimate_count(0, &mut rng) >= 0.0);
    }

    #[test]
    fn population_generation_and_sampling() {
        let population = WorkerPopulation::generate(50, 0.1, 0.3, 7);
        assert_eq!(population.len(), 50);
        assert!(!population.is_empty());
        assert!(population
            .profiles()
            .iter()
            .all(|p| (0.1..=0.3).contains(&p.counting_noise)));
        assert!(population
            .profiles()
            .iter()
            .all(|p| (0.7..=1.3).contains(&p.speed_factor)));
        let mut rng = StdRng::seed_from_u64(1);
        let sampled = population.sample(&mut rng);
        assert!(population.profiles().contains(&sampled));
        let default = WorkerPopulation::default_population(3);
        assert_eq!(default.len(), 200);
    }

    #[test]
    #[should_panic(expected = "population must not be empty")]
    fn empty_population_is_rejected() {
        let _ = WorkerPopulation::generate(0, 0.1, 0.2, 1);
    }

    #[test]
    fn majority_vote_aggregation() {
        let votes = vec![
            vec![true, false, true],
            vec![true, true, false],
            vec![false, true, true],
        ];
        assert_eq!(majority_vote(&votes), vec![true, true, true]);
        let votes = vec![vec![false, false], vec![false, true]];
        // tie on the second image resolves to keep
        assert_eq!(majority_vote(&votes), vec![false, true]);
        assert!(majority_vote(&[]).is_empty());
    }

    #[test]
    fn accuracy_handles_mismatched_lengths() {
        let mut generator = DotImageGenerator::new(11);
        let spec = generator.filter_hit(4, 10);
        assert_eq!(vote_accuracy(&spec, &[true]), 0.0);
    }

    #[test]
    fn repetition_majority_improves_accuracy_for_noisy_workers() {
        // The reason the paper's jobs repeat tasks: aggregating several noisy
        // answers beats a single answer.
        let mut generator = DotImageGenerator::new(13);
        let specs = generator.filter_hits(30, 6, 10);
        let worker = WorkerProfile {
            id: 0,
            counting_noise: 0.35,
            speed_factor: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(17);
        let mut single = 0.0;
        let mut aggregated = 0.0;
        for spec in &specs {
            let answers: Vec<Vec<bool>> = (0..5)
                .map(|_| worker.answer_filter_hit(spec, &mut rng))
                .collect();
            single += vote_accuracy(spec, &answers[0]);
            aggregated += vote_accuracy(spec, &majority_vote(&answers));
        }
        assert!(
            aggregated >= single,
            "majority of 5 answers ({aggregated}) should not be worse than one ({single})"
        );
    }
}

//! The paper's image-filtering micro-task, reproduced synthetically.
//!
//! Section 5.2.1: workers are first shown a reference image with a known
//! number of dots, then a set of images whose dot counts they must estimate;
//! they filter out the images with fewer dots than a given threshold. Each
//! image contributes one internal binary vote, so the number of images per
//! HIT controls the task difficulty.
//!
//! We do not need pixel data — what matters for the experiments is the ground
//! truth (dot count per image), the threshold, and the number of votes — but
//! the generator still places dots at explicit coordinates so examples can
//! render or export the stimuli if desired.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic dot image: a canvas with dots at known positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DotImage {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Dot centre coordinates.
    pub dots: Vec<(f32, f32)>,
}

impl DotImage {
    /// The ground-truth dot count.
    pub fn count(&self) -> usize {
        self.dots.len()
    }

    /// Whether this image passes the filter (has at least `threshold` dots).
    pub fn passes(&self, threshold: usize) -> bool {
        self.count() >= threshold
    }
}

/// One image-filtering HIT: a reference count, a set of candidate images and
/// the filtering threshold. The number of candidate images is the number of
/// internal binary votes and therefore the difficulty knob of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterHitSpec {
    /// The reference image shown with its exact count.
    pub reference: DotImage,
    /// Candidate images the worker must filter.
    pub candidates: Vec<DotImage>,
    /// Keep images with at least this many dots.
    pub threshold: usize,
}

impl FilterHitSpec {
    /// Number of internal binary votes (one per candidate image).
    pub fn votes(&self) -> u32 {
        self.candidates.len() as u32
    }

    /// Ground-truth answer vector: `true` for images that pass the filter.
    pub fn ground_truth(&self) -> Vec<bool> {
        self.candidates
            .iter()
            .map(|img| img.passes(self.threshold))
            .collect()
    }
}

/// Deterministic generator of dot images and filter HITs.
#[derive(Debug)]
pub struct DotImageGenerator {
    rng: StdRng,
    width: u32,
    height: u32,
}

impl DotImageGenerator {
    /// Creates a generator with the given seed and a 400×300 canvas.
    pub fn new(seed: u64) -> Self {
        DotImageGenerator {
            rng: StdRng::seed_from_u64(seed),
            width: 400,
            height: 300,
        }
    }

    /// Generates one image with exactly `count` dots at random positions.
    pub fn image_with_count(&mut self, count: usize) -> DotImage {
        let dots = (0..count)
            .map(|_| {
                (
                    self.rng.gen_range(0.0..self.width as f32),
                    self.rng.gen_range(0.0..self.height as f32),
                )
            })
            .collect();
        DotImage {
            width: self.width,
            height: self.height,
            dots,
        }
    }

    /// Generates one image with a dot count drawn uniformly from
    /// `min_count..=max_count`.
    pub fn image(&mut self, min_count: usize, max_count: usize) -> DotImage {
        assert!(
            min_count <= max_count,
            "min_count must not exceed max_count"
        );
        let count = self.rng.gen_range(min_count..=max_count);
        self.image_with_count(count)
    }

    /// Generates a filter HIT with the given number of candidate images
    /// (internal votes). Dot counts straddle the threshold so both vote
    /// outcomes occur.
    pub fn filter_hit(&mut self, votes: u32, threshold: usize) -> FilterHitSpec {
        let reference = self.image_with_count(threshold);
        let candidates = (0..votes)
            .map(|_| {
                let low = threshold.saturating_sub(threshold / 2).max(1);
                let high = threshold + threshold / 2 + 1;
                self.image(low, high)
            })
            .collect();
        FilterHitSpec {
            reference,
            candidates,
            threshold,
        }
    }

    /// Generates `count` filter HITs with identical difficulty.
    pub fn filter_hits(
        &mut self,
        count: usize,
        votes: u32,
        threshold: usize,
    ) -> Vec<FilterHitSpec> {
        (0..count)
            .map(|_| self.filter_hit(votes, threshold))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_count_and_filtering() {
        let mut generator = DotImageGenerator::new(1);
        let img = generator.image_with_count(12);
        assert_eq!(img.count(), 12);
        assert!(img.passes(12));
        assert!(img.passes(5));
        assert!(!img.passes(13));
        // dots stay on the canvas
        assert!(img
            .dots
            .iter()
            .all(|&(x, y)| (0.0..400.0).contains(&x) && (0.0..300.0).contains(&y)));
    }

    #[test]
    fn image_with_random_count_respects_bounds() {
        let mut generator = DotImageGenerator::new(2);
        for _ in 0..50 {
            let img = generator.image(3, 9);
            assert!((3..=9).contains(&img.count()));
        }
    }

    #[test]
    #[should_panic(expected = "min_count must not exceed")]
    fn invalid_count_range_panics() {
        let mut generator = DotImageGenerator::new(3);
        let _ = generator.image(9, 3);
    }

    #[test]
    fn filter_hit_structure() {
        let mut generator = DotImageGenerator::new(4);
        let hit = generator.filter_hit(6, 10);
        assert_eq!(hit.votes(), 6);
        assert_eq!(hit.reference.count(), 10);
        assert_eq!(hit.ground_truth().len(), 6);
        assert_eq!(hit.threshold, 10);
    }

    #[test]
    fn filter_hits_batch_has_requested_shape() {
        let mut generator = DotImageGenerator::new(5);
        let hits = generator.filter_hits(8, 4, 12);
        assert_eq!(hits.len(), 8);
        assert!(hits.iter().all(|h| h.votes() == 4));
    }

    #[test]
    fn ground_truth_contains_both_outcomes_over_many_hits() {
        // The generator straddles the threshold, so across a batch we should
        // see both pass and fail votes.
        let mut generator = DotImageGenerator::new(6);
        let hits = generator.filter_hits(30, 6, 10);
        let mut any_pass = false;
        let mut any_fail = false;
        for hit in &hits {
            for vote in hit.ground_truth() {
                if vote {
                    any_pass = true;
                } else {
                    any_fail = true;
                }
            }
        }
        assert!(any_pass && any_fail);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DotImageGenerator::new(9).filter_hit(5, 8);
        let b = DotImageGenerator::new(9).filter_hit(5, 8);
        assert_eq!(a, b);
        let c = DotImageGenerator::new(10).filter_hit(5, 8);
        assert_ne!(a, c);
    }
}

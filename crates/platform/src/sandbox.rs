//! An AMT-like requester API over the simulated market.
//!
//! [`MturkSandbox`] exposes the handful of operations a requester performs
//! against the real platform — fund the account, create HITs, run the
//! campaign, list assignments, approve or reject them — while everything
//! behind the API is the deterministic simulation provided by
//! [`CampaignRunner`]. Examples and benches interact with the sandbox the
//! same way a production integration would interact with Mechanical Turk.

use crate::campaign::CampaignRunner;
use crate::dotimage::FilterHitSpec;
use crate::hit::{Assignment, AssignmentId, AssignmentStatus, Hit, HitId, RequesterAccount};
use crowdtune_core::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Review policy applied by [`MturkSandbox::auto_review`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReviewPolicy {
    /// Approve every submitted assignment.
    ApproveAll,
    /// Approve assignments whose accuracy meets the threshold; reject the
    /// rest (the paper pays workers "when the provided answers are correct").
    AccuracyAtLeast(f64),
}

/// A simulated Mechanical Turk requester sandbox.
#[derive(Debug, Clone)]
pub struct MturkSandbox {
    runner: CampaignRunner,
    seed: u64,
    account: RequesterAccount,
    hits: Vec<Hit>,
    assignments: Vec<Assignment>,
    executed: bool,
}

impl MturkSandbox {
    /// Creates a sandbox with an initial account balance (cents) and a seed
    /// controlling all randomness.
    pub fn new(initial_balance_cents: u64, seed: u64) -> Self {
        MturkSandbox {
            runner: CampaignRunner::new(seed),
            seed,
            account: RequesterAccount::with_balance(initial_balance_cents),
            hits: Vec::new(),
            assignments: Vec::new(),
            executed: false,
        }
    }

    /// Replaces the campaign runner (custom calibration, population or
    /// market configuration).
    pub fn with_runner(mut self, runner: CampaignRunner) -> Self {
        self.runner = runner;
        self
    }

    /// The requester account.
    pub fn account(&self) -> &RequesterAccount {
        &self.account
    }

    /// Creates a HIT, reserving its maximum cost against the balance.
    pub fn create_hit(
        &mut self,
        spec: FilterHitSpec,
        reward_cents: u64,
        assignments: u32,
    ) -> Result<HitId> {
        if self.executed {
            return Err(CoreError::invalid_argument(
                "the sandbox campaign has already been executed".to_owned(),
            ));
        }
        if reward_cents == 0 || assignments == 0 {
            return Err(CoreError::invalid_argument(
                "reward and assignment count must be positive".to_owned(),
            ));
        }
        let cost = reward_cents * u64::from(assignments);
        if !self.account.reserve(cost) {
            return Err(CoreError::InsufficientBudget {
                provided: self.account.balance_cents - self.account.reserved_cents + cost,
                required: cost,
            });
        }
        let id = HitId(self.hits.len() as u64);
        self.hits.push(Hit {
            id,
            spec,
            reward_cents,
            assignments_requested: assignments,
        });
        Ok(id)
    }

    /// All created HITs.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Runs the campaign: publishes every created HIT on the simulated
    /// market and collects assignments. Returns the campaign wall-clock
    /// latency in seconds. Can only be called once.
    pub fn execute(&mut self) -> Result<f64> {
        if self.executed {
            return Err(CoreError::invalid_argument(
                "the sandbox campaign has already been executed".to_owned(),
            ));
        }
        if self.hits.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        let (assignments, latency) = self.runner.execute_hits(&self.hits, self.seed)?;
        self.assignments = assignments;
        self.executed = true;
        Ok(latency)
    }

    /// Whether the campaign has been executed.
    pub fn is_executed(&self) -> bool {
        self.executed
    }

    /// All assignments of a HIT (empty before execution).
    pub fn list_assignments(&self, hit: HitId) -> Vec<&Assignment> {
        self.assignments
            .iter()
            .filter(|a| a.hit_id == hit)
            .collect()
    }

    /// All assignments across all HITs.
    pub fn all_assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Approves an assignment, paying its HIT reward out of the reservation.
    pub fn approve_assignment(&mut self, id: AssignmentId) -> Result<()> {
        let (reward, assignment) = self.assignment_mut(id)?;
        if assignment.status != AssignmentStatus::Submitted {
            return Err(CoreError::invalid_argument(format!(
                "assignment {} has already been reviewed",
                id.0
            )));
        }
        if !self.account.pay(reward) {
            return Err(CoreError::invalid_argument(
                "account cannot cover the approved reward".to_owned(),
            ));
        }
        // Re-borrow mutably after the account operation.
        let (_, assignment) = self.assignment_mut(id)?;
        assignment.status = AssignmentStatus::Approved;
        Ok(())
    }

    /// Rejects an assignment, releasing its reserved reward.
    pub fn reject_assignment(&mut self, id: AssignmentId) -> Result<()> {
        let (reward, assignment) = self.assignment_mut(id)?;
        if assignment.status != AssignmentStatus::Submitted {
            return Err(CoreError::invalid_argument(format!(
                "assignment {} has already been reviewed",
                id.0
            )));
        }
        assignment.status = AssignmentStatus::Rejected;
        self.account.release(reward);
        Ok(())
    }

    /// Reviews every submitted assignment according to the policy. Returns
    /// `(approved, rejected)` counts.
    pub fn auto_review(&mut self, policy: ReviewPolicy) -> Result<(usize, usize)> {
        let ids: Vec<(AssignmentId, f64)> = self
            .assignments
            .iter()
            .filter(|a| a.status == AssignmentStatus::Submitted)
            .map(|a| (a.id, a.accuracy))
            .collect();
        let mut approved = 0;
        let mut rejected = 0;
        for (id, accuracy) in ids {
            let approve = match policy {
                ReviewPolicy::ApproveAll => true,
                ReviewPolicy::AccuracyAtLeast(threshold) => accuracy >= threshold,
            };
            if approve {
                self.approve_assignment(id)?;
                approved += 1;
            } else {
                self.reject_assignment(id)?;
                rejected += 1;
            }
        }
        Ok((approved, rejected))
    }

    fn assignment_mut(&mut self, id: AssignmentId) -> Result<(u64, &mut Assignment)> {
        let hit_reward: Vec<u64> = self.hits.iter().map(|h| h.reward_cents).collect();
        let assignment = self
            .assignments
            .iter_mut()
            .find(|a| a.id == id)
            .ok_or_else(|| CoreError::invalid_argument(format!("unknown assignment {}", id.0)))?;
        let reward = hit_reward
            .get(assignment.hit_id.0 as usize)
            .copied()
            .ok_or_else(|| CoreError::invalid_argument("assignment references unknown HIT"))?;
        Ok((reward, assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotimage::DotImageGenerator;

    fn sandbox_with_hits(balance: u64, hits: usize) -> MturkSandbox {
        let mut sandbox = MturkSandbox::new(balance, 42);
        let mut generator = DotImageGenerator::new(7);
        for _ in 0..hits {
            let spec = generator.filter_hit(4, 10);
            sandbox.create_hit(spec, 5, 3).unwrap();
        }
        sandbox
    }

    #[test]
    fn create_hit_reserves_funds() {
        let mut sandbox = MturkSandbox::new(40, 1);
        let mut generator = DotImageGenerator::new(1);
        let spec = generator.filter_hit(4, 10);
        sandbox.create_hit(spec.clone(), 5, 4).unwrap(); // reserves 20
        assert_eq!(sandbox.account().reserved_cents, 20);
        sandbox.create_hit(spec.clone(), 5, 4).unwrap(); // reserves 40 total
                                                         // A third HIT cannot be funded.
        assert!(sandbox.create_hit(spec.clone(), 5, 4).is_err());
        assert_eq!(sandbox.hits().len(), 2);
        // Invalid parameters are rejected.
        assert!(sandbox.create_hit(spec.clone(), 0, 4).is_err());
        assert!(sandbox.create_hit(spec, 5, 0).is_err());
    }

    #[test]
    fn execute_produces_assignments_once() {
        let mut sandbox = sandbox_with_hits(1_000, 4);
        assert!(!sandbox.is_executed());
        let latency = sandbox.execute().unwrap();
        assert!(latency > 0.0);
        assert!(sandbox.is_executed());
        assert_eq!(sandbox.all_assignments().len(), 12);
        assert_eq!(sandbox.list_assignments(HitId(0)).len(), 3);
        assert!(sandbox.list_assignments(HitId(99)).is_empty());
        // Cannot execute twice or add HITs afterwards.
        assert!(sandbox.execute().is_err());
        let mut generator = DotImageGenerator::new(2);
        assert!(sandbox
            .create_hit(generator.filter_hit(4, 10), 5, 1)
            .is_err());
    }

    #[test]
    fn execute_requires_hits() {
        let mut sandbox = MturkSandbox::new(100, 1);
        assert!(sandbox.execute().is_err());
    }

    #[test]
    fn approval_pays_and_rejection_releases() {
        let mut sandbox = sandbox_with_hits(1_000, 2);
        sandbox.execute().unwrap();
        let first = sandbox.all_assignments()[0].id;
        let second = sandbox.all_assignments()[1].id;
        let balance_before = sandbox.account().balance_cents;

        sandbox.approve_assignment(first).unwrap();
        assert_eq!(sandbox.account().balance_cents, balance_before - 5);
        assert_eq!(sandbox.account().paid_cents, 5);
        // double review is rejected
        assert!(sandbox.approve_assignment(first).is_err());

        let reserved_before = sandbox.account().reserved_cents;
        sandbox.reject_assignment(second).unwrap();
        assert_eq!(sandbox.account().reserved_cents, reserved_before - 5);
        assert!(sandbox.reject_assignment(second).is_err());
        // unknown assignment
        assert!(sandbox.approve_assignment(AssignmentId(999)).is_err());
    }

    #[test]
    fn auto_review_policies() {
        let mut sandbox = sandbox_with_hits(10_000, 5);
        sandbox.execute().unwrap();
        let total = sandbox.all_assignments().len();
        let (approved, rejected) = sandbox
            .auto_review(ReviewPolicy::AccuracyAtLeast(1.0))
            .unwrap();
        assert_eq!(approved + rejected, total);
        // Everything is reviewed now; a second pass does nothing.
        let (a2, r2) = sandbox.auto_review(ReviewPolicy::ApproveAll).unwrap();
        assert_eq!(a2 + r2, 0);
        assert_eq!(
            sandbox.account().paid_cents,
            approved as u64 * 5,
            "each approved assignment pays its 5-cent reward"
        );
    }

    #[test]
    fn approve_all_policy_pays_everyone() {
        let mut sandbox = sandbox_with_hits(10_000, 3);
        sandbox.execute().unwrap();
        let total = sandbox.all_assignments().len();
        let (approved, rejected) = sandbox.auto_review(ReviewPolicy::ApproveAll).unwrap();
        assert_eq!(approved, total);
        assert_eq!(rejected, 0);
        assert!(sandbox
            .all_assignments()
            .iter()
            .all(|a| a.status == AssignmentStatus::Approved));
    }
}

//! HIT (Human Intelligence Task) lifecycle types and the requester account.
//!
//! These mirror the objects a requester manipulates through the Mechanical
//! Turk API: a **HIT** groups a task specification with a promised reward and
//! a number of requested assignments (the repetitions of the paper's model);
//! an **assignment** records one worker's accepted-and-submitted answer; the
//! **requester account** tracks the balance out of which approved assignments
//! are paid.

use crate::dotimage::FilterHitSpec;
use serde::{Deserialize, Serialize};

/// Identifier of a HIT within a sandbox.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HitId(pub u64);

/// Identifier of an assignment within a sandbox.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AssignmentId(pub u64);

/// Review status of an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignmentStatus {
    /// Submitted by the worker, awaiting review.
    Submitted,
    /// Approved — the worker is paid the HIT reward.
    Approved,
    /// Rejected — no payment is made.
    Rejected,
}

/// A published HIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Identifier assigned at creation.
    pub id: HitId,
    /// The image-filtering task the workers perform.
    pub spec: FilterHitSpec,
    /// Reward per assignment, in cents.
    pub reward_cents: u64,
    /// How many independent assignments (answer repetitions) are requested.
    pub assignments_requested: u32,
}

impl Hit {
    /// Maximum the HIT can cost the requester (all assignments approved).
    pub fn max_cost_cents(&self) -> u64 {
        self.reward_cents * u64::from(self.assignments_requested)
    }

    /// Difficulty of the HIT, measured in internal binary votes.
    pub fn votes(&self) -> u32 {
        self.spec.votes()
    }
}

/// One worker's completed answer for a HIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Identifier assigned when the answer is recorded.
    pub id: AssignmentId,
    /// The HIT the assignment belongs to.
    pub hit_id: HitId,
    /// Identifier of the simulated worker who produced the answer.
    pub worker_id: u64,
    /// Seconds from HIT publication to acceptance (phase-1 latency).
    pub on_hold_secs: f64,
    /// Seconds from acceptance to submission (phase-2 latency).
    pub processing_secs: f64,
    /// Absolute submission time within the simulated campaign.
    pub submitted_at_secs: f64,
    /// The worker's per-image votes (`true` = keep).
    pub votes: Vec<bool>,
    /// Fraction of votes that match the ground truth.
    pub accuracy: f64,
    /// Review status.
    pub status: AssignmentStatus,
}

impl Assignment {
    /// Overall latency of the assignment (both phases).
    pub fn overall_secs(&self) -> f64 {
        self.on_hold_secs + self.processing_secs
    }

    /// Whether every vote matches the ground truth.
    pub fn is_perfect(&self) -> bool {
        (self.accuracy - 1.0).abs() < 1e-12
    }
}

/// The requester's pre-paid balance, from which approved assignments are
/// paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RequesterAccount {
    /// Remaining balance in cents.
    pub balance_cents: u64,
    /// Total amount paid out so far, in cents.
    pub paid_cents: u64,
    /// Amount currently reserved for published-but-unreviewed assignments.
    pub reserved_cents: u64,
}

impl RequesterAccount {
    /// Creates an account with an initial balance.
    pub fn with_balance(balance_cents: u64) -> Self {
        RequesterAccount {
            balance_cents,
            paid_cents: 0,
            reserved_cents: 0,
        }
    }

    /// Whether `amount` cents can still be reserved.
    pub fn can_reserve(&self, amount: u64) -> bool {
        self.balance_cents >= self.reserved_cents + amount
    }

    /// Reserves `amount` cents for future payments. Returns `false` (and
    /// changes nothing) if the balance cannot cover it.
    pub fn reserve(&mut self, amount: u64) -> bool {
        if self.can_reserve(amount) {
            self.reserved_cents += amount;
            true
        } else {
            false
        }
    }

    /// Pays out `amount` cents from the reserved pool (approving an
    /// assignment). Returns `false` if the reservation does not cover it.
    pub fn pay(&mut self, amount: u64) -> bool {
        if self.reserved_cents >= amount && self.balance_cents >= amount {
            self.reserved_cents -= amount;
            self.balance_cents -= amount;
            self.paid_cents += amount;
            true
        } else {
            false
        }
    }

    /// Releases `amount` cents of reservation without paying (rejecting an
    /// assignment or expiring a HIT).
    pub fn release(&mut self, amount: u64) {
        self.reserved_cents = self.reserved_cents.saturating_sub(amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotimage::DotImageGenerator;

    fn hit(reward: u64, assignments: u32, votes: u32) -> Hit {
        let mut generator = DotImageGenerator::new(1);
        Hit {
            id: HitId(0),
            spec: generator.filter_hit(votes, 10),
            reward_cents: reward,
            assignments_requested: assignments,
        }
    }

    #[test]
    fn hit_cost_and_difficulty() {
        let h = hit(8, 10, 6);
        assert_eq!(h.max_cost_cents(), 80);
        assert_eq!(h.votes(), 6);
    }

    #[test]
    fn assignment_latency_and_perfection() {
        let a = Assignment {
            id: AssignmentId(1),
            hit_id: HitId(0),
            worker_id: 3,
            on_hold_secs: 120.0,
            processing_secs: 60.0,
            submitted_at_secs: 180.0,
            votes: vec![true, false],
            accuracy: 1.0,
            status: AssignmentStatus::Submitted,
        };
        assert!((a.overall_secs() - 180.0).abs() < 1e-12);
        assert!(a.is_perfect());
        let b = Assignment { accuracy: 0.5, ..a };
        assert!(!b.is_perfect());
    }

    #[test]
    fn account_reserve_pay_release_cycle() {
        let mut account = RequesterAccount::with_balance(100);
        assert!(account.can_reserve(60));
        assert!(account.reserve(60));
        assert!(!account.reserve(50), "only 40 cents remain unreserved");
        assert!(account.reserve(40));

        assert!(account.pay(30));
        assert_eq!(account.balance_cents, 70);
        assert_eq!(account.paid_cents, 30);
        assert_eq!(account.reserved_cents, 70);

        account.release(20);
        assert_eq!(account.reserved_cents, 50);
        assert!(account.pay(50));
        assert_eq!(account.balance_cents, 20);
        assert!(!account.pay(10), "nothing reserved any more");
    }

    #[test]
    fn account_never_pays_more_than_reserved() {
        let mut account = RequesterAccount::with_balance(10);
        assert!(account.reserve(10));
        assert!(!account.pay(11));
        assert_eq!(account.balance_cents, 10);
        account.release(100);
        assert_eq!(account.reserved_cents, 0);
    }
}

//! Campaign execution: publishing a batch of HITs on the simulated market
//! and collecting assignments with answers, timings and accuracy.
//!
//! This is the substrate that replays the paper's Mechanical Turk experiments
//! (Section 5.2) without access to the live platform: HITs are grouped by
//! difficulty (number of internal votes), each group is run through the
//! `crowdtune-market` discrete-event simulator with an on-hold rate model
//! calibrated to the paper's measurements, and every completed repetition is
//! materialised as an [`Assignment`] whose answer comes from a sampled worker
//! profile answering the actual dot-counting task.

use crate::calibration::AmtCalibration;
use crate::dotimage::DotImageGenerator;
use crate::hit::{Assignment, AssignmentId, AssignmentStatus, Hit, HitId};
use crate::workers::{vote_accuracy, WorkerPopulation};
use crowdtune_core::error::{CoreError, Result};
use crowdtune_core::money::{Allocation, Payment};
use crowdtune_core::task::TaskSet;
use crowdtune_market::{MarketConfig, MarketSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A homogeneous slice of a campaign: `count` HITs of the same difficulty,
/// reward and repetition requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTaskSpec {
    /// How many HITs of this kind to publish.
    pub count: usize,
    /// Difficulty: number of internal binary votes per HIT.
    pub votes: u32,
    /// Dot-count threshold of the filter.
    pub threshold: usize,
    /// Reward per assignment, in cents.
    pub reward_cents: u64,
    /// Number of assignments (answer repetitions) requested per HIT.
    pub repetitions: u32,
}

/// A full campaign: a list of homogeneous slices published simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Campaign {
    /// The slices making up the campaign.
    pub specs: Vec<CampaignTaskSpec>,
    /// Seed controlling HIT generation, worker sampling and market timing.
    pub seed: u64,
}

impl Campaign {
    /// Creates a campaign from slices.
    pub fn new(specs: Vec<CampaignTaskSpec>, seed: u64) -> Self {
        Campaign { specs, seed }
    }

    /// Total number of HITs across all slices.
    pub fn hit_count(&self) -> usize {
        self.specs.iter().map(|s| s.count).sum()
    }

    /// Total reward promised if every assignment is approved, in cents.
    pub fn max_cost_cents(&self) -> u64 {
        self.specs
            .iter()
            .map(|s| s.count as u64 * s.reward_cents * u64::from(s.repetitions))
            .sum()
    }
}

/// The result of running a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CampaignOutcome {
    /// The HITs that were published (in id order).
    pub hits: Vec<Hit>,
    /// Every completed assignment.
    pub assignments: Vec<Assignment>,
    /// Wall-clock latency of the whole campaign (last submission), seconds.
    pub job_latency_secs: f64,
    /// Total reward promised across all assignments, cents.
    pub total_reward_cents: u64,
}

impl CampaignOutcome {
    /// Assignments belonging to one HIT, in submission order.
    pub fn assignments_for(&self, hit: HitId) -> Vec<&Assignment> {
        let mut assignments: Vec<&Assignment> = self
            .assignments
            .iter()
            .filter(|a| a.hit_id == hit)
            .collect();
        assignments.sort_by(|a, b| a.submitted_at_secs.total_cmp(&b.submitted_at_secs));
        assignments
    }

    /// Completion time of a HIT: the submission time of its last assignment.
    pub fn hit_completion_secs(&self, hit: HitId) -> Option<f64> {
        self.assignments
            .iter()
            .filter(|a| a.hit_id == hit)
            .map(|a| a.submitted_at_secs)
            .fold(None, |acc, t| Some(acc.map_or(t, |m: f64| m.max(t))))
    }

    /// All phase-1 (on-hold) latencies.
    pub fn phase1_latencies(&self) -> Vec<f64> {
        self.assignments.iter().map(|a| a.on_hold_secs).collect()
    }

    /// All phase-2 (processing) latencies.
    pub fn phase2_latencies(&self) -> Vec<f64> {
        self.assignments.iter().map(|a| a.processing_secs).collect()
    }

    /// Acceptance epochs (absolute, seconds) sorted ascending — the worker
    /// arrival trace of Figure 3.
    pub fn acceptance_epochs(&self) -> Vec<f64> {
        let mut epochs: Vec<f64> = self
            .assignments
            .iter()
            .map(|a| a.submitted_at_secs - a.processing_secs)
            .collect();
        epochs.sort_by(f64::total_cmp);
        epochs
    }

    /// Mean per-assignment accuracy, or `None` if there are no assignments.
    pub fn mean_accuracy(&self) -> Option<f64> {
        if self.assignments.is_empty() {
            None
        } else {
            Some(
                self.assignments.iter().map(|a| a.accuracy).sum::<f64>()
                    / self.assignments.len() as f64,
            )
        }
    }
}

/// Executes campaigns against the simulated market.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    calibration: AmtCalibration,
    population: WorkerPopulation,
    market_config: MarketConfig,
}

impl CampaignRunner {
    /// Creates a runner with the paper calibration, the default worker
    /// population and an independent-rates market seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        CampaignRunner {
            calibration: AmtCalibration::paper(),
            population: WorkerPopulation::default_population(seed),
            market_config: MarketConfig::independent(seed),
        }
    }

    /// Overrides the market calibration.
    pub fn with_calibration(mut self, calibration: AmtCalibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Overrides the worker population.
    pub fn with_population(mut self, population: WorkerPopulation) -> Self {
        self.population = population;
        self
    }

    /// Overrides the market configuration.
    pub fn with_market_config(mut self, config: MarketConfig) -> Self {
        self.market_config = config;
        self
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &AmtCalibration {
        &self.calibration
    }

    /// Builds the HIT objects for a campaign (deterministic per seed).
    pub fn materialise_hits(&self, campaign: &Campaign) -> Vec<Hit> {
        let mut generator = DotImageGenerator::new(campaign.seed);
        let mut hits = Vec::with_capacity(campaign.hit_count());
        for spec in &campaign.specs {
            for _ in 0..spec.count {
                let hit_spec = generator.filter_hit(spec.votes, spec.threshold);
                hits.push(Hit {
                    id: HitId(hits.len() as u64),
                    spec: hit_spec,
                    reward_cents: spec.reward_cents,
                    assignments_requested: spec.repetitions,
                });
            }
        }
        hits
    }

    /// Runs a campaign end to end.
    pub fn run(&self, campaign: &Campaign) -> Result<CampaignOutcome> {
        if campaign.specs.is_empty() || campaign.hit_count() == 0 {
            return Err(CoreError::EmptyTaskSet);
        }
        let hits = self.materialise_hits(campaign);
        let (assignments, job_latency) = self.execute_hits(&hits, campaign.seed)?;
        let total_reward_cents = assignments
            .iter()
            .map(|a| hits[a.hit_id.0 as usize].reward_cents)
            .sum();
        Ok(CampaignOutcome {
            hits,
            assignments,
            job_latency_secs: job_latency,
            total_reward_cents,
        })
    }

    /// Publishes a pre-built list of HITs and returns the generated
    /// assignments plus the campaign latency. Exposed so the sandbox API can
    /// reuse the execution path.
    pub fn execute_hits(&self, hits: &[Hit], seed: u64) -> Result<(Vec<Assignment>, f64)> {
        if hits.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        // Group HITs by difficulty so each group can use its own calibrated
        // on-hold rate model and processing rate. Groups are independent and
        // all start at time zero, so their traces can simply be merged.
        let mut by_votes: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (index, hit) in hits.iter().enumerate() {
            by_votes.entry(hit.votes()).or_default().push(index);
        }

        let mut answer_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut job_latency = 0.0_f64;

        for (group_index, (votes, hit_indices)) in by_votes.iter().enumerate() {
            let processing_rate = self.calibration.processing_rate(*votes);
            let rate_model = self.calibration.rate_model_for_votes(*votes)?;

            let mut task_set = TaskSet::new();
            let ty = task_set.add_type(format!("filter-{votes}-votes"), processing_rate)?;
            let mut allocation = Allocation::with_capacity(hit_indices.len());
            for &hit_index in hit_indices {
                let hit = &hits[hit_index];
                task_set.add_task(ty, hit.assignments_requested)?;
                allocation.push_task(vec![
                    Payment::units(hit.reward_cents);
                    hit.assignments_requested as usize
                ]);
            }

            let config = self
                .market_config
                .with_seed(self.market_config.seed ^ (group_index as u64 + 1).wrapping_mul(0xa5a5));
            let simulator = MarketSimulator::new(config);
            let report = simulator.run(&task_set, &allocation, &rate_model)?;
            job_latency = job_latency.max(report.job_latency());

            for record in &report.records {
                let hit = &hits[hit_indices[record.id.task]];
                let worker = self.population.sample(&mut answer_rng);
                let votes_cast = worker.answer_filter_hit(&hit.spec, &mut answer_rng);
                let accuracy = vote_accuracy(&hit.spec, &votes_cast);
                assignments.push(Assignment {
                    id: AssignmentId(assignments.len() as u64),
                    hit_id: hit.id,
                    worker_id: worker.id,
                    on_hold_secs: record.on_hold_latency(),
                    processing_secs: record.processing_latency(),
                    submitted_at_secs: record.submitted.as_secs(),
                    votes: votes_cast,
                    accuracy,
                    status: AssignmentStatus::Submitted,
                });
            }
        }
        // Reassign assignment ids in submission order so downstream review
        // order is deterministic and chronological.
        assignments.sort_by(|a, b| a.submitted_at_secs.total_cmp(&b.submitted_at_secs));
        for (index, assignment) in assignments.iter_mut().enumerate() {
            assignment.id = AssignmentId(index as u64);
        }
        Ok((assignments, job_latency))
    }

    /// Tracks a single-slice campaign over a range of rewards, returning for
    /// each reward the mean phase-1 latency — the reward-vs-latency sweep of
    /// Figure 4.
    pub fn reward_sweep(
        &self,
        rewards_cents: &[u64],
        votes: u32,
        threshold: usize,
        repetitions: u32,
        hits_per_reward: usize,
        seed: u64,
    ) -> Result<Vec<(u64, CampaignOutcome)>> {
        rewards_cents
            .iter()
            .enumerate()
            .map(|(index, &reward)| {
                let campaign = Campaign::new(
                    vec![CampaignTaskSpec {
                        count: hits_per_reward,
                        votes,
                        threshold,
                        reward_cents: reward,
                        repetitions,
                    }],
                    seed.wrapping_add(index as u64 * 7919),
                );
                Ok((reward, self.run(&campaign)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::inference::estimate_rate_random_period;

    fn small_campaign(seed: u64) -> Campaign {
        Campaign::new(
            vec![
                CampaignTaskSpec {
                    count: 3,
                    votes: 4,
                    threshold: 10,
                    reward_cents: 5,
                    repetitions: 2,
                },
                CampaignTaskSpec {
                    count: 2,
                    votes: 8,
                    threshold: 10,
                    reward_cents: 8,
                    repetitions: 3,
                },
            ],
            seed,
        )
    }

    #[test]
    fn campaign_shape_helpers() {
        let campaign = small_campaign(1);
        assert_eq!(campaign.hit_count(), 5);
        assert_eq!(campaign.max_cost_cents(), 3 * 5 * 2 + 2 * 8 * 3);
    }

    #[test]
    fn empty_campaign_is_rejected() {
        let runner = CampaignRunner::new(1);
        assert!(runner.run(&Campaign::new(vec![], 1)).is_err());
        assert!(runner.execute_hits(&[], 1).is_err());
    }

    #[test]
    fn run_produces_all_assignments_with_valid_fields() {
        let runner = CampaignRunner::new(7);
        let outcome = runner.run(&small_campaign(7)).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        // 3 hits × 2 reps + 2 hits × 3 reps = 12 assignments
        assert_eq!(outcome.assignments.len(), 12);
        assert!(outcome.job_latency_secs > 0.0);
        assert_eq!(outcome.total_reward_cents, 3 * 5 * 2 + 2 * 8 * 3);
        for a in &outcome.assignments {
            assert!(a.on_hold_secs >= 0.0);
            assert!(a.processing_secs >= 0.0);
            assert!((0.0..=1.0).contains(&a.accuracy));
            assert_eq!(a.status, AssignmentStatus::Submitted);
            let hit = &outcome.hits[a.hit_id.0 as usize];
            assert_eq!(a.votes.len(), hit.votes() as usize);
        }
        // assignment ids are chronological
        for pair in outcome.assignments.windows(2) {
            assert!(pair[0].submitted_at_secs <= pair[1].submitted_at_secs);
            assert!(pair[0].id < pair[1].id);
        }
        assert!(outcome.mean_accuracy().unwrap() > 0.5);
    }

    #[test]
    fn outcome_per_hit_queries() {
        let runner = CampaignRunner::new(11);
        let outcome = runner.run(&small_campaign(11)).unwrap();
        let first = HitId(0);
        let per_hit = outcome.assignments_for(first);
        assert_eq!(per_hit.len(), 2);
        let completion = outcome.hit_completion_secs(first).unwrap();
        assert!(completion >= per_hit[0].submitted_at_secs);
        assert_eq!(outcome.hit_completion_secs(HitId(99)), None);
        assert_eq!(outcome.phase1_latencies().len(), 12);
        assert_eq!(outcome.phase2_latencies().len(), 12);
        let epochs = outcome.acceptance_epochs();
        assert_eq!(epochs.len(), 12);
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = CampaignRunner::new(3).run(&small_campaign(3)).unwrap();
        let b = CampaignRunner::new(3).run(&small_campaign(3)).unwrap();
        assert_eq!(a, b);
        let c = CampaignRunner::new(4).run(&small_campaign(4)).unwrap();
        assert_ne!(a.job_latency_secs, c.job_latency_secs);
    }

    #[test]
    fn higher_rewards_reduce_on_hold_latency_in_expectation() {
        // Figure 4's qualitative shape: increasing the reward shortens the
        // on-hold phase.
        let runner = CampaignRunner::new(5);
        let sweep = runner.reward_sweep(&[5, 12], 4, 10, 4, 30, 123).unwrap();
        let mean = |outcome: &CampaignOutcome| {
            let v = outcome.phase1_latencies();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let cheap = mean(&sweep[0].1);
        let rich = mean(&sweep[1].1);
        assert!(
            rich < cheap,
            "mean on-hold at 12c ({rich}) should beat 5c ({cheap})"
        );
    }

    #[test]
    fn harder_hits_take_longer_to_process() {
        // Figure 5(b): more internal votes → longer processing phase.
        let runner = CampaignRunner::new(9);
        let easy = runner
            .run(&Campaign::new(
                vec![CampaignTaskSpec {
                    count: 40,
                    votes: 4,
                    threshold: 10,
                    reward_cents: 8,
                    repetitions: 2,
                }],
                100,
            ))
            .unwrap();
        let hard = runner
            .run(&Campaign::new(
                vec![CampaignTaskSpec {
                    count: 40,
                    votes: 8,
                    threshold: 10,
                    reward_cents: 8,
                    repetitions: 2,
                }],
                101,
            ))
            .unwrap();
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(hard.phase2_latencies()) > mean(easy.phase2_latencies()));
    }

    #[test]
    fn acceptance_epochs_look_poissonian() {
        // Figure 3: arrival epochs grow roughly linearly with the arrival
        // order; equivalently, the MLE of the rate from the epochs should be
        // close to the calibrated rate for the configuration.
        let runner = CampaignRunner::new(21);
        let campaign = Campaign::new(
            vec![CampaignTaskSpec {
                count: 1,
                votes: 4,
                threshold: 10,
                reward_cents: 5,
                repetitions: 60,
            }],
            55,
        );
        // With sequential repetitions and the processing phase suppressed,
        // successive acceptance epochs form a renewal process with Exp(λo)
        // gaps — i.e. the Poisson arrival trace the paper plots.
        let runner = runner.with_market_config(MarketConfig::independent(55).without_processing());
        let outcome = runner.run(&campaign).unwrap();
        let epochs = outcome.acceptance_epochs();
        let estimate = estimate_rate_random_period(&epochs).unwrap();
        let expected = runner.calibration().on_hold_rate(5.0, 4).unwrap();
        // 60 samples: allow a generous band, we only need the right order of
        // magnitude and shape.
        assert!(
            estimate.rate > expected * 0.5 && estimate.rate < expected * 2.0,
            "estimated {} vs calibrated {expected}",
            estimate.rate
        );
    }
}

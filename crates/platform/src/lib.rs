//! # crowdtune-platform
//!
//! An Amazon-Mechanical-Turk-like platform substrate for the reproduction of
//! *"Tuning Crowdsourced Human Computation"* (ICDE 2017). The paper's
//! real-platform evaluation (Section 5.2) publishes dot-counting image-filter
//! HITs on AMT; without access to the live workforce, this crate recreates
//! every layer of that experiment in simulation:
//!
//! * [`dotimage`] — the synthetic dot-counting image-filter task, with ground
//!   truth and a difficulty knob (the number of internal binary votes);
//! * [`workers`] — a worker population whose answer quality emerges from a
//!   noisy counting model;
//! * [`calibration`] — market parameters fitted to the paper's own AMT
//!   measurements (reward → uptake rate, difficulty → processing time);
//! * [`hit`] / [`sandbox`] — the HIT/assignment lifecycle and a requester API
//!   (create HITs, execute, review, pay) backed by the `crowdtune-market`
//!   discrete-event simulator;
//! * [`campaign`] — batch campaign execution and reward sweeps used by the
//!   Figure 3–5 reproduction binaries.
//!
//! ```
//! use crowdtune_platform::campaign::{Campaign, CampaignRunner, CampaignTaskSpec};
//!
//! let campaign = Campaign::new(
//!     vec![CampaignTaskSpec {
//!         count: 5,
//!         votes: 4,
//!         threshold: 10,
//!         reward_cents: 5,
//!         repetitions: 3,
//!     }],
//!     42,
//! );
//! let outcome = CampaignRunner::new(42).run(&campaign).unwrap();
//! assert_eq!(outcome.assignments.len(), 15);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod calibration;
pub mod campaign;
pub mod dotimage;
pub mod hit;
pub mod sandbox;
pub mod workers;

pub use calibration::AmtCalibration;
pub use campaign::{Campaign, CampaignOutcome, CampaignRunner, CampaignTaskSpec};
pub use dotimage::{DotImage, DotImageGenerator, FilterHitSpec};
pub use hit::{Assignment, AssignmentId, AssignmentStatus, Hit, HitId, RequesterAccount};
pub use sandbox::{MturkSandbox, ReviewPolicy};
pub use workers::{majority_vote, vote_accuracy, WorkerPopulation, WorkerProfile};

//! The crowd oracle: generates worker votes for atomic voting tasks.
//!
//! The HPU abstraction notes that human answers are error-prone. We model a
//! vote's correctness with a logistic (Bradley–Terry-like) noise model: the
//! probability of a correct pairwise comparison grows with the latent score
//! gap between the two items, and the probability of a correct filter vote
//! grows with the distance from the threshold. A `reliability` parameter
//! scales both, so tests can dial the crowd from near-random to near-perfect.

use crate::item::{Item, ItemSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the crowd's answer quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Scale of the logistic noise model; larger values mean more reliable
    /// answers for the same score gap.
    pub reliability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            reliability: 2.0,
            seed: 42,
        }
    }
}

/// A stateful vote generator.
#[derive(Debug)]
pub struct CrowdOracle {
    config: OracleConfig,
    rng: StdRng,
}

impl CrowdOracle {
    /// Creates an oracle.
    pub fn new(config: OracleConfig) -> Self {
        CrowdOracle {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Probability that a single comparison vote correctly identifies the
    /// higher-scoring of two items: `σ(reliability · |gap|)`.
    pub fn comparison_accuracy(&self, a: &Item, b: &Item) -> f64 {
        let gap = (a.latent_score - b.latent_score).abs();
        logistic(self.config.reliability * gap)
    }

    /// One pairwise comparison vote: returns `true` if the worker says `a`
    /// ranks above `b`.
    pub fn compare_vote(&mut self, a: &Item, b: &Item) -> bool {
        let truth = a.latent_score >= b.latent_score;
        let correct = self.rng.gen::<f64>() < self.comparison_accuracy(a, b);
        if correct {
            truth
        } else {
            !truth
        }
    }

    /// One filter vote: returns `true` if the worker says the item's score
    /// reaches the threshold.
    pub fn filter_vote(&mut self, item: &Item, threshold: f64) -> bool {
        let truth = item.latent_score >= threshold;
        let gap = (item.latent_score - threshold).abs();
        let accuracy = logistic(self.config.reliability * gap);
        let correct = self.rng.gen::<f64>() < accuracy;
        if correct {
            truth
        } else {
            !truth
        }
    }

    /// `repetitions` independent comparison votes; returns the number of
    /// votes for `a` ranking above `b`.
    pub fn compare_votes(&mut self, a: &Item, b: &Item, repetitions: u32) -> u32 {
        (0..repetitions).filter(|_| self.compare_vote(a, b)).count() as u32
    }

    /// `repetitions` independent filter votes; returns the number of "keep"
    /// votes.
    pub fn filter_votes(&mut self, item: &Item, threshold: f64, repetitions: u32) -> u32 {
        (0..repetitions)
            .filter(|_| self.filter_vote(item, threshold))
            .count() as u32
    }

    /// Convenience accessor used by the executor to fetch items by id.
    pub fn item<'a>(&self, items: &'a ItemSet, id: crate::item::ItemId) -> Option<&'a Item> {
        items.get(id)
    }
}

fn logistic(x: f64) -> f64 {
    // Accuracy of a binary vote is at least 1/2 (a worker guessing randomly)
    // and approaches 1 as the evidence grows.
    0.5 + 0.5 * (1.0 - (-x).exp()) / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> ItemSet {
        ItemSet::from_scores(vec![("low", 1.0), ("high", 5.0), ("mid", 3.0)])
    }

    #[test]
    fn accuracy_grows_with_score_gap() {
        let set = items();
        let oracle = CrowdOracle::new(OracleConfig::default());
        let low = set.get(crate::item::ItemId(0)).unwrap();
        let high = set.get(crate::item::ItemId(1)).unwrap();
        let mid = set.get(crate::item::ItemId(2)).unwrap();
        let easy = oracle.comparison_accuracy(low, high);
        let harder = oracle.comparison_accuracy(mid, high);
        assert!(easy > harder);
        assert!(easy <= 1.0 && harder >= 0.5);
        // identical items are a coin flip
        assert!((oracle.comparison_accuracy(low, low) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comparison_votes_favour_the_truth() {
        let set = items();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 2.0,
            seed: 7,
        });
        let low = set.get(crate::item::ItemId(0)).unwrap();
        let high = set.get(crate::item::ItemId(1)).unwrap();
        let votes_for_high = oracle.compare_votes(high, low, 1_000);
        assert!(
            votes_for_high > 900,
            "high should usually beat low, got {votes_for_high}/1000"
        );
        let votes_for_low = oracle.compare_votes(low, high, 1_000);
        assert!(votes_for_low < 100);
    }

    #[test]
    fn filter_votes_track_threshold_distance() {
        let set = items();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 3.0,
            seed: 3,
        });
        let low = set.get(crate::item::ItemId(0)).unwrap();
        let high = set.get(crate::item::ItemId(1)).unwrap();
        let keep_high = oracle.filter_votes(high, 2.0, 500);
        let keep_low = oracle.filter_votes(low, 2.0, 500);
        assert!(keep_high > 450);
        assert!(keep_low < 100);
    }

    #[test]
    fn unreliable_crowd_approaches_coin_flips() {
        let set = items();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 0.0,
            seed: 11,
        });
        let low = set.get(crate::item::ItemId(0)).unwrap();
        let high = set.get(crate::item::ItemId(1)).unwrap();
        let votes = oracle.compare_votes(high, low, 2_000);
        let fraction = f64::from(votes) / 2_000.0;
        assert!((fraction - 0.5).abs() < 0.05, "fraction {fraction}");
    }

    #[test]
    fn oracle_is_deterministic_per_seed() {
        let set = items();
        let low = set.get(crate::item::ItemId(0)).unwrap();
        let high = set.get(crate::item::ItemId(1)).unwrap();
        let run = |seed| {
            let mut oracle = CrowdOracle::new(OracleConfig {
                reliability: 1.0,
                seed,
            });
            oracle.compare_votes(high, low, 100)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn item_accessor_delegates_to_set() {
        let set = items();
        let oracle = CrowdOracle::new(OracleConfig::default());
        assert_eq!(
            oracle.item(&set, crate::item::ItemId(2)).unwrap().label,
            "mid"
        );
        assert!(oracle.item(&set, crate::item::ItemId(9)).is_none());
    }
}

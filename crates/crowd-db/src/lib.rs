//! # crowdtune-crowd-db
//!
//! A crowd-powered database substrate for the reproduction of *"Tuning
//! Crowdsourced Human Computation"* (ICDE 2017). The paper's motivating
//! examples are queries of crowd-powered databases — sorting and filtering
//! decomposed into atomic pairwise / yes-no voting tasks, each repeated for
//! reliability — whose end-to-end latency the H-Tuning algorithms minimise.
//! This crate provides those operators and the executor that wires them to
//! the tuner (`crowdtune-core`) and the marketplace simulator
//! (`crowdtune-market`):
//!
//! * [`item`] — data items with latent subjective attributes;
//! * [`oracle`] — the noisy crowd vote generator;
//! * [`operators`] — sort (pairwise comparisons), filter (yes/no screening)
//!   and max (knockout tournament), each with a planner and an aggregator;
//! * [`executor`] — plan → tune budget → simulate market → collect votes →
//!   aggregate.
//!
//! ```
//! use crowdtune_crowd_db::executor::{CrowdExecutor, ExecutorConfig};
//! use crowdtune_crowd_db::item::ItemSet;
//! use crowdtune_crowd_db::operators::CrowdSort;
//! use crowdtune_core::prelude::*;
//! use std::sync::Arc;
//!
//! let items = ItemSet::from_scores(vec![("cat", 3.0), ("dog", 7.0), ("fox", 5.0)]);
//! let executor = CrowdExecutor::new(
//!     Arc::new(LinearRate::unit_slope()),
//!     ExecutorConfig::default(),
//! );
//! let outcome = executor
//!     .run_sort(&items, CrowdSort::new(3).unwrap(), Budget::units(60))
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod executor;
pub mod item;
pub mod operators;
pub mod oracle;

pub use executor::{CrowdExecutor, ExecutionStats, ExecutorConfig, QueryOutcome};
pub use item::{Item, ItemId, ItemSet};
pub use operators::{CrowdFilter, CrowdMax, CrowdSort, VoteDifficulty, VoteKind, VotePlan};
pub use oracle::{CrowdOracle, OracleConfig};

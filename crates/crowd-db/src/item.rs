//! Data items processed by the crowd-powered operators.
//!
//! Crowd-powered databases (CrowdDB, Qurk, Deco — the systems the paper's
//! motivation builds on) store ordinary tuples whose *subjective* attributes
//! (visual appeal, relevance, dot count, ...) are only accessible by asking
//! humans. We model such an attribute as a latent score: the crowd oracle
//! sees it through noise, the operators never read it directly, and tests use
//! it as ground truth.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an item within an [`ItemSet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// A data item with a human-readable label and a latent score on the
/// subjective attribute the crowd is asked about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Identifier within the set.
    pub id: ItemId,
    /// Display label (what a worker would be shown).
    pub label: String,
    /// Latent ground-truth score. Operators never read this; the crowd
    /// oracle observes it through noise.
    pub latent_score: f64,
}

/// An ordered collection of items forming an operator's input relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ItemSet {
    items: Vec<Item>,
}

impl ItemSet {
    /// Creates an empty item set.
    pub fn new() -> Self {
        ItemSet::default()
    }

    /// Adds an item and returns its id.
    pub fn add(&mut self, label: impl Into<String>, latent_score: f64) -> ItemId {
        let id = ItemId(self.items.len() as u32);
        self.items.push(Item {
            id,
            label: label.into(),
            latent_score,
        });
        id
    }

    /// Builds a set from `(label, score)` pairs.
    pub fn from_scores<L: Into<String>>(pairs: impl IntoIterator<Item = (L, f64)>) -> Self {
        let mut set = ItemSet::new();
        for (label, score) in pairs {
            set.add(label, score);
        }
        set
    }

    /// All items in insertion order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Looks up an item by id.
    pub fn get(&self, id: ItemId) -> Option<&Item> {
        self.items.get(id.0 as usize).filter(|i| i.id == id)
    }

    /// The ids of all items, in insertion order.
    pub fn ids(&self) -> Vec<ItemId> {
        self.items.iter().map(|i| i.id).collect()
    }

    /// Ground-truth descending ranking by latent score (ties keep insertion
    /// order). Used by tests and accuracy reports, never by the operators.
    pub fn ground_truth_ranking(&self) -> Vec<ItemId> {
        let mut ids = self.ids();
        ids.sort_by(|a, b| {
            let sa = self.items[a.0 as usize].latent_score;
            let sb = self.items[b.0 as usize].latent_score;
            sb.partial_cmp(&sa).expect("scores must not be NaN")
        });
        ids
    }

    /// Ground-truth id of the maximum-score item, or `None` if empty.
    pub fn ground_truth_max(&self) -> Option<ItemId> {
        self.ground_truth_ranking().first().copied()
    }

    /// Ground-truth filter outcome: ids of items whose score reaches the
    /// threshold.
    pub fn ground_truth_filter(&self, threshold: f64) -> Vec<ItemId> {
        self.items
            .iter()
            .filter(|i| i.latent_score >= threshold)
            .map(|i| i.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ItemSet {
        ItemSet::from_scores(vec![("a", 3.0), ("b", 9.0), ("c", 1.0), ("d", 6.0)])
    }

    #[test]
    fn construction_and_lookup() {
        let set = sample();
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!(set.get(ItemId(1)).unwrap().label, "b");
        assert!(set.get(ItemId(9)).is_none());
        assert_eq!(set.ids(), vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(format!("{}", ItemId(2)), "item#2");
        assert!(ItemSet::new().is_empty());
    }

    #[test]
    fn ground_truth_ranking_is_descending_by_score() {
        let set = sample();
        assert_eq!(
            set.ground_truth_ranking(),
            vec![ItemId(1), ItemId(3), ItemId(0), ItemId(2)]
        );
        assert_eq!(set.ground_truth_max(), Some(ItemId(1)));
        assert_eq!(ItemSet::new().ground_truth_max(), None);
    }

    #[test]
    fn ground_truth_filter_uses_threshold_inclusively() {
        let set = sample();
        assert_eq!(
            set.ground_truth_filter(3.0),
            vec![ItemId(0), ItemId(1), ItemId(3)]
        );
        assert_eq!(set.ground_truth_filter(100.0), Vec::<ItemId>::new());
    }
}

//! Crowd-powered sorting via pairwise comparison votes.
//!
//! The planner issues one comparison task per item pair (the "compare all
//! pairs" strategy of human-powered sorts, which the "next votes" planner of
//! the max/sort literature refines); each pair is asked `repetitions` times.
//! Aggregation ranks items by their Copeland score — the number of pairwise
//! majorities an item wins — which is robust to occasional vote errors.

use crate::item::{ItemId, ItemSet};
use crate::operators::{VoteKind, VotePlan, VoteTallies, VotingTask};
use crowdtune_core::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The crowd sort operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrowdSort {
    /// Number of answer repetitions per comparison.
    pub repetitions: u32,
}

impl CrowdSort {
    /// Creates a sort operator asking each pair `repetitions` times.
    pub fn new(repetitions: u32) -> Result<Self> {
        if repetitions == 0 {
            return Err(CoreError::invalid_argument(
                "at least one repetition per comparison is required".to_owned(),
            ));
        }
        Ok(CrowdSort { repetitions })
    }

    /// Plans the comparison tasks for the item set (all unordered pairs, in
    /// lexicographic order).
    pub fn plan(&self, items: &ItemSet) -> Result<VotePlan> {
        if items.len() < 2 {
            return Err(CoreError::invalid_argument(
                "sorting requires at least two items".to_owned(),
            ));
        }
        let ids = items.ids();
        let mut tasks = Vec::with_capacity(ids.len() * (ids.len() - 1) / 2);
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                tasks.push(VotingTask {
                    kind: VoteKind::Comparison {
                        a: ids[i],
                        b: ids[j],
                    },
                    repetitions: self.repetitions,
                });
            }
        }
        Ok(VotePlan { tasks })
    }

    /// Aggregates the collected votes into a descending ranking (best item
    /// first) using Copeland scores; ties break towards the lower item id for
    /// determinism.
    pub fn aggregate(
        &self,
        plan: &VotePlan,
        tallies: &VoteTallies,
        items: &ItemSet,
    ) -> Result<Vec<ItemId>> {
        if tallies.yes_votes.len() != plan.tasks.len() {
            return Err(CoreError::invalid_argument(format!(
                "expected {} tallies, got {}",
                plan.tasks.len(),
                tallies.yes_votes.len()
            )));
        }
        let mut wins = vec![0u32; items.len()];
        for (index, task) in plan.tasks.iter().enumerate() {
            let VoteKind::Comparison { a, b } = task.kind else {
                return Err(CoreError::invalid_argument(
                    "sort plans contain only comparison tasks".to_owned(),
                ));
            };
            if tallies.majority(index, task.repetitions) {
                wins[a.0 as usize] += 1;
            } else {
                wins[b.0 as usize] += 1;
            }
        }
        let mut ranking = items.ids();
        ranking.sort_by(|x, y| {
            wins[y.0 as usize]
                .cmp(&wins[x.0 as usize])
                .then_with(|| x.0.cmp(&y.0))
        });
        Ok(ranking)
    }

    /// Kendall-tau-style agreement between a produced ranking and the ground
    /// truth: the fraction of item pairs ordered identically (1.0 = perfect).
    pub fn ranking_agreement(ranking: &[ItemId], ground_truth: &[ItemId]) -> f64 {
        if ranking.len() < 2 || ranking.len() != ground_truth.len() {
            return if ranking == ground_truth { 1.0 } else { 0.0 };
        }
        let position = |ids: &[ItemId], id: ItemId| ids.iter().position(|&x| x == id);
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..ranking.len() {
            for j in (i + 1)..ranking.len() {
                let a = ranking[i];
                let b = ranking[j];
                let (Some(ga), Some(gb)) = (position(ground_truth, a), position(ground_truth, b))
                else {
                    return 0.0;
                };
                total += 1;
                if ga < gb {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CrowdOracle, OracleConfig};

    fn items() -> ItemSet {
        ItemSet::from_scores(vec![("a", 1.0), ("b", 4.0), ("c", 2.0), ("d", 8.0)])
    }

    #[test]
    fn construction_validation() {
        assert!(CrowdSort::new(0).is_err());
        assert!(CrowdSort::new(3).is_ok());
    }

    #[test]
    fn plan_covers_all_pairs() {
        let sort = CrowdSort::new(2).unwrap();
        let plan = sort.plan(&items()).unwrap();
        assert_eq!(plan.len(), 6); // C(4, 2)
        assert!(plan.tasks.iter().all(|t| t.repetitions == 2));
        // planning needs at least two items
        let single = ItemSet::from_scores(vec![("x", 1.0)]);
        assert!(sort.plan(&single).is_err());
    }

    #[test]
    fn aggregate_with_perfect_votes_recovers_ground_truth() {
        let set = items();
        let sort = CrowdSort::new(1).unwrap();
        let plan = sort.plan(&set).unwrap();
        // Perfect tallies: vote "a above b" exactly when the latent score
        // says so.
        let yes_votes = plan
            .tasks
            .iter()
            .map(|t| {
                let VoteKind::Comparison { a, b } = t.kind else {
                    unreachable!()
                };
                u32::from(set.get(a).unwrap().latent_score >= set.get(b).unwrap().latent_score)
            })
            .collect();
        let tallies = VoteTallies { yes_votes };
        let ranking = sort.aggregate(&plan, &tallies, &set).unwrap();
        assert_eq!(ranking, set.ground_truth_ranking());
        assert!(
            (CrowdSort::ranking_agreement(&ranking, &set.ground_truth_ranking()) - 1.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn aggregate_validates_tally_shape() {
        let set = items();
        let sort = CrowdSort::new(1).unwrap();
        let plan = sort.plan(&set).unwrap();
        let tallies = VoteTallies { yes_votes: vec![1] };
        assert!(sort.aggregate(&plan, &tallies, &set).is_err());
    }

    #[test]
    fn reliable_crowd_sorts_well_with_repetition() {
        let set = items();
        let sort = CrowdSort::new(5).unwrap();
        let plan = sort.plan(&set).unwrap();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 2.0,
            seed: 3,
        });
        let yes_votes = plan
            .tasks
            .iter()
            .map(|t| {
                let VoteKind::Comparison { a, b } = t.kind else {
                    unreachable!()
                };
                oracle.compare_votes(set.get(a).unwrap(), set.get(b).unwrap(), t.repetitions)
            })
            .collect();
        let tallies = VoteTallies { yes_votes };
        let ranking = sort.aggregate(&plan, &tallies, &set).unwrap();
        let agreement = CrowdSort::ranking_agreement(&ranking, &set.ground_truth_ranking());
        assert!(agreement >= 0.8, "agreement {agreement}");
    }

    #[test]
    fn ranking_agreement_edge_cases() {
        let a = vec![ItemId(0), ItemId(1)];
        let b = vec![ItemId(1), ItemId(0)];
        assert!((CrowdSort::ranking_agreement(&a, &a) - 1.0).abs() < 1e-12);
        assert!((CrowdSort::ranking_agreement(&a, &b) - 0.0).abs() < 1e-12);
        // mismatched lengths
        assert_eq!(CrowdSort::ranking_agreement(&a, &a[..1]), 0.0);
        // unknown item
        let c = vec![ItemId(7), ItemId(1)];
        assert_eq!(CrowdSort::ranking_agreement(&c, &a), 0.0);
        // single-element rankings agree trivially
        assert_eq!(CrowdSort::ranking_agreement(&a[..1], &a[..1]), 1.0);
    }
}

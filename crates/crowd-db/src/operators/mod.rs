//! Crowd-powered query operators.
//!
//! The paper's motivating examples come from crowd-powered databases whose
//! query planners decompose declarative queries into **atomic voting tasks**
//! (pairwise comparisons for sorting and max, yes/no votes for filtering),
//! each repeated several times for reliability. The operators here produce
//! exactly such decompositions ([`VotePlan`]s), which the executor then tunes
//! (budget allocation), runs on the simulated market (latency) and answers
//! through the crowd oracle (votes), before the operator aggregates the votes
//! back into a relational result.

pub mod filter;
pub mod max;
pub mod sort;

pub use filter::CrowdFilter;
pub use max::CrowdMax;
pub use sort::CrowdSort;

use crate::item::ItemId;
use crowdtune_core::error::{CoreError, Result};
use crowdtune_core::task::{TaskSet, TaskTypeId};
use serde::{Deserialize, Serialize};

/// The two kinds of atomic human votes the operators issue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VoteKind {
    /// "Does item `a` rank above item `b`?" — used by sort and max.
    Comparison {
        /// First item of the pair.
        a: ItemId,
        /// Second item of the pair.
        b: ItemId,
    },
    /// "Does this item meet the threshold?" — used by filter.
    Filter {
        /// The item being screened.
        item: ItemId,
        /// The predicate threshold on the latent attribute.
        threshold: f64,
    },
}

/// One atomic voting task with its repetition requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VotingTask {
    /// What the workers are asked.
    pub kind: VoteKind,
    /// How many independent answers the planner wants.
    pub repetitions: u32,
}

/// A set of voting tasks produced by an operator's planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VotePlan {
    /// The atomic tasks, in planner order.
    pub tasks: Vec<VotingTask>,
}

/// Processing rates (difficulty) of the two vote kinds, used when converting
/// a plan into a [`TaskSet`]. Comparison votes are harder than filter votes
/// (Table 1 of the paper), so their processing rate is lower by default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoteDifficulty {
    /// Processing clock rate of a pairwise comparison vote.
    pub comparison_rate: f64,
    /// Processing clock rate of a yes/no filter vote.
    pub filter_rate: f64,
}

impl Default for VoteDifficulty {
    fn default() -> Self {
        // Mirrors Table 1's ordering: yes/no votes are processed faster than
        // sorting votes.
        VoteDifficulty {
            comparison_rate: 2.0,
            filter_rate: 3.0,
        }
    }
}

/// The outcome of converting a plan into a tunable task set: the task set
/// plus the type ids assigned to each vote kind (needed to interpret results).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedTaskSet {
    /// The task set handed to the tuner and the market simulator. Task `i`
    /// corresponds to `plan.tasks[i]`.
    pub task_set: TaskSet,
    /// Type id used for comparison votes (if any were planned).
    pub comparison_type: Option<TaskTypeId>,
    /// Type id used for filter votes (if any were planned).
    pub filter_type: Option<TaskTypeId>,
}

impl VotePlan {
    /// Number of atomic tasks in the plan.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of repetition slots (the minimum budget in units).
    pub fn total_repetitions(&self) -> u64 {
        self.tasks.iter().map(|t| u64::from(t.repetitions)).sum()
    }

    /// Converts the plan into a [`TaskSet`] whose task order matches the plan
    /// order, assigning each vote kind its own task type.
    pub fn to_task_set(&self, difficulty: VoteDifficulty) -> Result<PlannedTaskSet> {
        if self.tasks.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        let mut task_set = TaskSet::new();
        let needs_comparison = self
            .tasks
            .iter()
            .any(|t| matches!(t.kind, VoteKind::Comparison { .. }));
        let needs_filter = self
            .tasks
            .iter()
            .any(|t| matches!(t.kind, VoteKind::Filter { .. }));
        let comparison_type = if needs_comparison {
            Some(task_set.add_type("sorting vote", difficulty.comparison_rate)?)
        } else {
            None
        };
        let filter_type = if needs_filter {
            Some(task_set.add_type("yes/no vote", difficulty.filter_rate)?)
        } else {
            None
        };
        for task in &self.tasks {
            let ty = match task.kind {
                VoteKind::Comparison { .. } => {
                    comparison_type.expect("comparison type registered above")
                }
                VoteKind::Filter { .. } => filter_type.expect("filter type registered above"),
            };
            task_set.add_task(ty, task.repetitions)?;
        }
        Ok(PlannedTaskSet {
            task_set,
            comparison_type,
            filter_type,
        })
    }
}

/// Vote tallies collected for a plan: `yes_votes[i]` is the number of
/// positive answers among the `plan.tasks[i].repetitions` collected votes
/// (for comparisons, "positive" means `a` ranks above `b`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VoteTallies {
    /// Positive votes per planned task.
    pub yes_votes: Vec<u32>,
}

impl VoteTallies {
    /// Whether task `i`'s majority is positive (ties count as positive).
    pub fn majority(&self, index: usize, repetitions: u32) -> bool {
        2 * self.yes_votes[index] >= repetitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> VotePlan {
        VotePlan {
            tasks: vec![
                VotingTask {
                    kind: VoteKind::Comparison {
                        a: ItemId(0),
                        b: ItemId(1),
                    },
                    repetitions: 3,
                },
                VotingTask {
                    kind: VoteKind::Filter {
                        item: ItemId(2),
                        threshold: 5.0,
                    },
                    repetitions: 5,
                },
            ],
        }
    }

    #[test]
    fn plan_accessors() {
        let plan = small_plan();
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_repetitions(), 8);
        assert!(VotePlan::default().is_empty());
    }

    #[test]
    fn to_task_set_assigns_types_per_vote_kind() {
        let plan = small_plan();
        let planned = plan.to_task_set(VoteDifficulty::default()).unwrap();
        assert_eq!(planned.task_set.len(), 2);
        assert!(planned.comparison_type.is_some());
        assert!(planned.filter_type.is_some());
        let tasks = planned.task_set.tasks();
        assert_eq!(tasks[0].repetitions, 3);
        assert_eq!(tasks[1].repetitions, 5);
        assert_ne!(tasks[0].task_type, tasks[1].task_type);
        // Comparison votes are the slower (harder) type.
        let comparison = planned
            .task_set
            .type_by_id(planned.comparison_type.unwrap())
            .unwrap();
        let filter = planned
            .task_set
            .type_by_id(planned.filter_type.unwrap())
            .unwrap();
        assert!(comparison.processing_rate < filter.processing_rate);
    }

    #[test]
    fn to_task_set_with_single_kind_registers_one_type() {
        let plan = VotePlan {
            tasks: vec![VotingTask {
                kind: VoteKind::Comparison {
                    a: ItemId(0),
                    b: ItemId(1),
                },
                repetitions: 2,
            }],
        };
        let planned = plan.to_task_set(VoteDifficulty::default()).unwrap();
        assert!(planned.comparison_type.is_some());
        assert!(planned.filter_type.is_none());
        assert_eq!(planned.task_set.types().len(), 1);
    }

    #[test]
    fn empty_plan_is_rejected() {
        assert!(VotePlan::default()
            .to_task_set(VoteDifficulty::default())
            .is_err());
    }

    #[test]
    fn tallies_majority() {
        let tallies = VoteTallies {
            yes_votes: vec![2, 1, 3],
        };
        assert!(tallies.majority(0, 3));
        assert!(!tallies.majority(1, 3));
        assert!(tallies.majority(2, 5));
        // exact tie counts as positive
        let tie = VoteTallies { yes_votes: vec![2] };
        assert!(tie.majority(0, 4));
    }
}

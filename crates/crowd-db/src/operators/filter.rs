//! Crowd-powered filtering (CrowdScreen-style screening).
//!
//! One yes/no voting task per item, repeated `repetitions` times; an item is
//! kept when the majority of its votes say it meets the predicate threshold.

use crate::item::{ItemId, ItemSet};
use crate::operators::{VoteKind, VotePlan, VoteTallies, VotingTask};
use crowdtune_core::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The crowd filter operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdFilter {
    /// Predicate threshold on the latent attribute.
    pub threshold: f64,
    /// Number of answer repetitions per item.
    pub repetitions: u32,
}

impl CrowdFilter {
    /// Creates a filter operator.
    pub fn new(threshold: f64, repetitions: u32) -> Result<Self> {
        if repetitions == 0 {
            return Err(CoreError::invalid_argument(
                "at least one repetition per item is required".to_owned(),
            ));
        }
        if !threshold.is_finite() {
            return Err(CoreError::invalid_argument(
                "the filter threshold must be finite".to_owned(),
            ));
        }
        Ok(CrowdFilter {
            threshold,
            repetitions,
        })
    }

    /// Plans one filter task per item.
    pub fn plan(&self, items: &ItemSet) -> Result<VotePlan> {
        if items.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        Ok(VotePlan {
            tasks: items
                .ids()
                .into_iter()
                .map(|item| VotingTask {
                    kind: VoteKind::Filter {
                        item,
                        threshold: self.threshold,
                    },
                    repetitions: self.repetitions,
                })
                .collect(),
        })
    }

    /// Aggregates votes into the set of kept item ids (majority keep).
    pub fn aggregate(&self, plan: &VotePlan, tallies: &VoteTallies) -> Result<Vec<ItemId>> {
        if tallies.yes_votes.len() != plan.tasks.len() {
            return Err(CoreError::invalid_argument(format!(
                "expected {} tallies, got {}",
                plan.tasks.len(),
                tallies.yes_votes.len()
            )));
        }
        let mut kept = Vec::new();
        for (index, task) in plan.tasks.iter().enumerate() {
            let VoteKind::Filter { item, .. } = task.kind else {
                return Err(CoreError::invalid_argument(
                    "filter plans contain only filter tasks".to_owned(),
                ));
            };
            if tallies.majority(index, task.repetitions) {
                kept.push(item);
            }
        }
        Ok(kept)
    }

    /// Precision/recall of a produced keep-set against the ground truth.
    pub fn precision_recall(kept: &[ItemId], ground_truth: &[ItemId]) -> (f64, f64) {
        if kept.is_empty() {
            return (1.0, if ground_truth.is_empty() { 1.0 } else { 0.0 });
        }
        let truth: std::collections::BTreeSet<ItemId> = ground_truth.iter().copied().collect();
        let true_positives = kept.iter().filter(|id| truth.contains(id)).count() as f64;
        let precision = true_positives / kept.len() as f64;
        let recall = if truth.is_empty() {
            1.0
        } else {
            true_positives / truth.len() as f64
        };
        (precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CrowdOracle, OracleConfig};

    fn items() -> ItemSet {
        ItemSet::from_scores(vec![
            ("a", 1.0),
            ("b", 7.0),
            ("c", 3.0),
            ("d", 9.0),
            ("e", 5.0),
        ])
    }

    #[test]
    fn construction_validation() {
        assert!(CrowdFilter::new(5.0, 0).is_err());
        assert!(CrowdFilter::new(f64::NAN, 3).is_err());
        assert!(CrowdFilter::new(5.0, 3).is_ok());
    }

    #[test]
    fn plan_has_one_task_per_item() {
        let filter = CrowdFilter::new(4.0, 3).unwrap();
        let plan = filter.plan(&items()).unwrap();
        assert_eq!(plan.len(), 5);
        assert!(plan.tasks.iter().all(|t| t.repetitions == 3));
        assert!(filter.plan(&ItemSet::new()).is_err());
    }

    #[test]
    fn aggregate_majority_keep() {
        let filter = CrowdFilter::new(4.0, 3).unwrap();
        let set = items();
        let plan = filter.plan(&set).unwrap();
        // votes: a=0/3, b=3/3, c=1/3, d=2/3, e=2/3
        let tallies = VoteTallies {
            yes_votes: vec![0, 3, 1, 2, 2],
        };
        let kept = filter.aggregate(&plan, &tallies).unwrap();
        assert_eq!(kept, vec![ItemId(1), ItemId(3), ItemId(4)]);
        // wrong tally shape
        let bad = VoteTallies { yes_votes: vec![1] };
        assert!(filter.aggregate(&plan, &bad).is_err());
    }

    #[test]
    fn reliable_crowd_reaches_high_precision_and_recall() {
        let set = items();
        let filter = CrowdFilter::new(4.0, 7).unwrap();
        let plan = filter.plan(&set).unwrap();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 2.5,
            seed: 13,
        });
        let yes_votes = plan
            .tasks
            .iter()
            .map(|t| {
                let VoteKind::Filter { item, threshold } = t.kind else {
                    unreachable!()
                };
                oracle.filter_votes(set.get(item).unwrap(), threshold, t.repetitions)
            })
            .collect();
        let kept = filter.aggregate(&plan, &VoteTallies { yes_votes }).unwrap();
        let truth = set.ground_truth_filter(4.0);
        let (precision, recall) = CrowdFilter::precision_recall(&kept, &truth);
        assert!(precision >= 0.66, "precision {precision}");
        assert!(recall >= 0.66, "recall {recall}");
    }

    #[test]
    fn precision_recall_edge_cases() {
        let truth = vec![ItemId(0), ItemId(1)];
        assert_eq!(CrowdFilter::precision_recall(&[], &truth), (1.0, 0.0));
        assert_eq!(CrowdFilter::precision_recall(&[], &[]), (1.0, 1.0));
        let kept = vec![ItemId(0), ItemId(2)];
        let (p, r) = CrowdFilter::precision_recall(&kept, &truth);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        let (p, r) = CrowdFilter::precision_recall(&kept, &[]);
        assert!((p - 0.0).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
    }
}

//! Crowd-powered max discovery via a knockout tournament.
//!
//! Following the "dynamic max discovery" line of work the paper cites, the
//! operator pairs up the surviving items each round, asks the crowd to vote
//! on every pair `repetitions` times, advances the majority winners (plus a
//! bye when the count is odd) and repeats until one item remains. Each round
//! is an independent batch of parallel comparison tasks, so each round can be
//! budget-tuned with the paper's algorithms before being published.

use crate::item::{ItemId, ItemSet};
use crate::operators::{VoteKind, VotePlan, VoteTallies, VotingTask};
use crowdtune_core::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The crowd max operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrowdMax {
    /// Number of answer repetitions per pairwise match.
    pub repetitions: u32,
}

impl CrowdMax {
    /// Creates a max operator.
    pub fn new(repetitions: u32) -> Result<Self> {
        if repetitions == 0 {
            return Err(CoreError::invalid_argument(
                "at least one repetition per match is required".to_owned(),
            ));
        }
        Ok(CrowdMax { repetitions })
    }

    /// Plans one knockout round over the surviving candidates: consecutive
    /// candidates are paired; an odd trailing candidate gets a bye. Returns
    /// the plan plus the id that received the bye (if any).
    pub fn plan_round(&self, survivors: &[ItemId]) -> Result<(VotePlan, Option<ItemId>)> {
        if survivors.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        if survivors.len() == 1 {
            return Ok((VotePlan::default(), Some(survivors[0])));
        }
        let mut tasks = Vec::with_capacity(survivors.len() / 2);
        for pair in survivors.chunks(2) {
            if pair.len() == 2 {
                tasks.push(VotingTask {
                    kind: VoteKind::Comparison {
                        a: pair[0],
                        b: pair[1],
                    },
                    repetitions: self.repetitions,
                });
            }
        }
        let bye = if survivors.len() % 2 == 1 {
            Some(*survivors.last().expect("non-empty"))
        } else {
            None
        };
        Ok((VotePlan { tasks }, bye))
    }

    /// Determines the winners of a planned round from the collected votes.
    pub fn round_winners(
        &self,
        plan: &VotePlan,
        tallies: &VoteTallies,
        bye: Option<ItemId>,
    ) -> Result<Vec<ItemId>> {
        if tallies.yes_votes.len() != plan.tasks.len() {
            return Err(CoreError::invalid_argument(format!(
                "expected {} tallies, got {}",
                plan.tasks.len(),
                tallies.yes_votes.len()
            )));
        }
        let mut winners = Vec::with_capacity(plan.tasks.len() + 1);
        for (index, task) in plan.tasks.iter().enumerate() {
            let VoteKind::Comparison { a, b } = task.kind else {
                return Err(CoreError::invalid_argument(
                    "max plans contain only comparison tasks".to_owned(),
                ));
            };
            winners.push(if tallies.majority(index, task.repetitions) {
                a
            } else {
                b
            });
        }
        if let Some(bye) = bye {
            winners.push(bye);
        }
        Ok(winners)
    }

    /// Number of knockout rounds required for `n` items.
    pub fn rounds_required(n: usize) -> u32 {
        if n <= 1 {
            0
        } else {
            (n as f64).log2().ceil() as u32
        }
    }

    /// Total number of pairwise matches a full tournament over `n` items
    /// plays (always `n − 1`).
    pub fn total_matches(n: usize) -> usize {
        n.saturating_sub(1)
    }

    /// Runs the whole tournament against a vote source closure (used by the
    /// executor, which routes each round through the tuner and the market;
    /// and by tests, which answer directly from an oracle). The closure
    /// receives the round's plan and must return its tallies.
    pub fn run_tournament<F>(&self, items: &ItemSet, mut vote_source: F) -> Result<ItemId>
    where
        F: FnMut(&VotePlan) -> Result<VoteTallies>,
    {
        if items.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        let mut survivors = items.ids();
        while survivors.len() > 1 {
            let (plan, bye) = self.plan_round(&survivors)?;
            let tallies = vote_source(&plan)?;
            survivors = self.round_winners(&plan, &tallies, bye)?;
        }
        Ok(survivors[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CrowdOracle, OracleConfig};

    fn items(n: usize) -> ItemSet {
        ItemSet::from_scores((0..n).map(|i| (format!("item{i}"), i as f64)))
    }

    #[test]
    fn construction_validation() {
        assert!(CrowdMax::new(0).is_err());
        assert!(CrowdMax::new(3).is_ok());
    }

    #[test]
    fn plan_round_pairs_and_byes() {
        let max = CrowdMax::new(1).unwrap();
        let set = items(5);
        let (plan, bye) = max.plan_round(&set.ids()).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(bye, Some(ItemId(4)));
        let (plan, bye) = max.plan_round(&set.ids()[..4]).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(bye, None);
        let (plan, bye) = max.plan_round(&[ItemId(3)]).unwrap();
        assert!(plan.is_empty());
        assert_eq!(bye, Some(ItemId(3)));
        assert!(max.plan_round(&[]).is_err());
    }

    #[test]
    fn round_winners_respect_majorities_and_byes() {
        let max = CrowdMax::new(3).unwrap();
        let set = items(5);
        let (plan, bye) = max.plan_round(&set.ids()).unwrap();
        // first pair: a wins (2/3); second pair: b wins (1/3)
        let tallies = VoteTallies {
            yes_votes: vec![2, 1],
        };
        let winners = max.round_winners(&plan, &tallies, bye).unwrap();
        assert_eq!(winners, vec![ItemId(0), ItemId(3), ItemId(4)]);
        assert!(max
            .round_winners(&plan, &VoteTallies { yes_votes: vec![1] }, bye)
            .is_err());
    }

    #[test]
    fn rounds_and_match_counts() {
        assert_eq!(CrowdMax::rounds_required(1), 0);
        assert_eq!(CrowdMax::rounds_required(2), 1);
        assert_eq!(CrowdMax::rounds_required(5), 3);
        assert_eq!(CrowdMax::rounds_required(8), 3);
        assert_eq!(CrowdMax::total_matches(8), 7);
        assert_eq!(CrowdMax::total_matches(0), 0);
    }

    #[test]
    fn perfect_votes_find_the_true_max() {
        let set = items(9);
        let max = CrowdMax::new(1).unwrap();
        let winner = max
            .run_tournament(&set, |plan| {
                let yes_votes = plan
                    .tasks
                    .iter()
                    .map(|t| {
                        let VoteKind::Comparison { a, b } = t.kind else {
                            unreachable!()
                        };
                        u32::from(
                            set.get(a).unwrap().latent_score >= set.get(b).unwrap().latent_score,
                        )
                    })
                    .collect();
                Ok(VoteTallies { yes_votes })
            })
            .unwrap();
        assert_eq!(Some(winner), set.ground_truth_max());
    }

    #[test]
    fn reliable_crowd_usually_finds_the_max() {
        let set = ItemSet::from_scores(vec![
            ("weak", 1.0),
            ("mid", 3.0),
            ("strong", 9.0),
            ("other", 2.0),
        ]);
        let max = CrowdMax::new(5).unwrap();
        let mut oracle = CrowdOracle::new(OracleConfig {
            reliability: 2.0,
            seed: 21,
        });
        let winner = max
            .run_tournament(&set, |plan| {
                let yes_votes = plan
                    .tasks
                    .iter()
                    .map(|t| {
                        let VoteKind::Comparison { a, b } = t.kind else {
                            unreachable!()
                        };
                        oracle.compare_votes(
                            set.get(a).unwrap(),
                            set.get(b).unwrap(),
                            t.repetitions,
                        )
                    })
                    .collect();
                Ok(VoteTallies { yes_votes })
            })
            .unwrap();
        assert_eq!(Some(winner), set.ground_truth_max());
    }

    #[test]
    fn tournament_on_empty_set_is_rejected() {
        let max = CrowdMax::new(1).unwrap();
        assert!(max
            .run_tournament(&ItemSet::new(), |_| Ok(VoteTallies::default()))
            .is_err());
    }
}

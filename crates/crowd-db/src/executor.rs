//! The crowd query executor: plan → tune → publish → collect → aggregate.
//!
//! This is where the paper's contribution plugs into the database: the
//! operator's [`VotePlan`] becomes an H-Tuning
//! [`TaskSet`](crowdtune_core::task::TaskSet), the budget is
//! allocated with the scenario-appropriate algorithm, the plan is published
//! on the simulated marketplace to measure wall-clock latency, and the
//! crowd oracle supplies the votes the operator finally aggregates.

use crate::item::{ItemId, ItemSet};
use crate::operators::{
    CrowdFilter, CrowdMax, CrowdSort, VoteDifficulty, VoteKind, VotePlan, VoteTallies,
};
use crate::oracle::{CrowdOracle, OracleConfig};
use crowdtune_core::error::{CoreError, Result};
use crowdtune_core::latency::JobLatencyEstimator;
use crowdtune_core::latency::PhaseSelection;
use crowdtune_core::money::Budget;
use crowdtune_core::rate::RateModel;
use crowdtune_core::tuner::{StrategyChoice, Tuner};
use crowdtune_market::{MarketConfig, MarketSimulator};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Processing-rate difficulty of the two vote kinds.
    pub difficulty: VoteDifficulty,
    /// Market simulation configuration.
    pub market: MarketConfig,
    /// Crowd answer-quality configuration.
    pub oracle: OracleConfig,
    /// Which tuning strategy to use (Auto picks EA / RA / HA per scenario).
    pub strategy: StrategyChoice,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            difficulty: VoteDifficulty::default(),
            market: MarketConfig::default(),
            oracle: OracleConfig::default(),
            strategy: StrategyChoice::Auto,
        }
    }
}

/// Statistics of one published-and-collected plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecutionStats {
    /// Payment units actually allocated (≤ the budget).
    pub spent_units: u64,
    /// Analytic expected overall latency of the allocation.
    pub expected_latency: f64,
    /// Simulated wall-clock latency of the run.
    pub simulated_latency: f64,
}

/// The outcome of a crowd query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome<T> {
    /// The relational result (ranking, keep-set or max item).
    pub result: T,
    /// Name of the tuning strategy that allocated the budget.
    pub strategy: String,
    /// Aggregate statistics over all published batches of the query.
    pub stats: ExecutionStats,
}

/// Executes crowd-powered operators against the simulated marketplace.
#[derive(Clone)]
pub struct CrowdExecutor {
    rate_model: Arc<dyn RateModel>,
    config: ExecutorConfig,
}

impl CrowdExecutor {
    /// Creates an executor for the given market condition.
    pub fn new(rate_model: Arc<dyn RateModel>, config: ExecutorConfig) -> Self {
        CrowdExecutor { rate_model, config }
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Publishes one plan with the given budget: tunes the allocation, runs
    /// the market simulation and collects the crowd's votes.
    pub fn execute_plan(
        &self,
        plan: &VotePlan,
        items: &ItemSet,
        budget: Budget,
        oracle: &mut CrowdOracle,
    ) -> Result<(VoteTallies, ExecutionStats, String)> {
        let planned = plan.to_task_set(self.config.difficulty)?;
        let tuner = Tuner::new(self.rate_model.clone()).with_strategy(self.config.strategy);
        let problem = tuner.problem(planned.task_set.clone(), budget)?;
        let tuning = tuner.tune_problem(&problem)?;

        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let expected_latency =
            estimator.analytic_expected_latency(&tuning.allocation, PhaseSelection::Both)?;

        let simulator = MarketSimulator::new(self.config.market);
        let report = simulator.run(problem.task_set(), &tuning.allocation, &self.rate_model)?;

        // Collect the crowd's answers for every planned task.
        let mut yes_votes = Vec::with_capacity(plan.tasks.len());
        for task in &plan.tasks {
            let votes = match task.kind {
                VoteKind::Comparison { a, b } => {
                    let item_a = items
                        .get(a)
                        .ok_or_else(|| CoreError::invalid_argument(format!("unknown item {a}")))?;
                    let item_b = items
                        .get(b)
                        .ok_or_else(|| CoreError::invalid_argument(format!("unknown item {b}")))?;
                    oracle.compare_votes(item_a, item_b, task.repetitions)
                }
                VoteKind::Filter { item, threshold } => {
                    let item = items.get(item).ok_or_else(|| {
                        CoreError::invalid_argument(format!("unknown item {item}"))
                    })?;
                    oracle.filter_votes(item, threshold, task.repetitions)
                }
            };
            yes_votes.push(votes);
        }

        let stats = ExecutionStats {
            spent_units: tuning.allocation.total_spent(),
            expected_latency,
            simulated_latency: report.job_latency(),
        };
        Ok((VoteTallies { yes_votes }, stats, tuning.strategy))
    }

    /// Runs a crowd sort with the given budget.
    pub fn run_sort(
        &self,
        items: &ItemSet,
        sort: CrowdSort,
        budget: Budget,
    ) -> Result<QueryOutcome<Vec<ItemId>>> {
        let plan = sort.plan(items)?;
        let mut oracle = CrowdOracle::new(self.config.oracle);
        let (tallies, stats, strategy) = self.execute_plan(&plan, items, budget, &mut oracle)?;
        let ranking = sort.aggregate(&plan, &tallies, items)?;
        Ok(QueryOutcome {
            result: ranking,
            strategy,
            stats,
        })
    }

    /// Runs a crowd filter with the given budget.
    pub fn run_filter(
        &self,
        items: &ItemSet,
        filter: CrowdFilter,
        budget: Budget,
    ) -> Result<QueryOutcome<Vec<ItemId>>> {
        let plan = filter.plan(items)?;
        let mut oracle = CrowdOracle::new(self.config.oracle);
        let (tallies, stats, strategy) = self.execute_plan(&plan, items, budget, &mut oracle)?;
        let kept = filter.aggregate(&plan, &tallies)?;
        Ok(QueryOutcome {
            result: kept,
            strategy,
            stats,
        })
    }

    /// Runs a crowd max tournament, splitting the budget over the knockout
    /// rounds proportionally to the number of matches in each round. Rounds
    /// run sequentially, so their latencies add up.
    pub fn run_max(
        &self,
        items: &ItemSet,
        max: CrowdMax,
        budget: Budget,
    ) -> Result<QueryOutcome<ItemId>> {
        if items.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        let total_matches = CrowdMax::total_matches(items.len()) as u64;
        if total_matches == 0 {
            // A single item is trivially the max; nothing is published.
            return Ok(QueryOutcome {
                result: items.ids()[0],
                strategy: "none".to_owned(),
                stats: ExecutionStats::default(),
            });
        }
        let budget_units = budget.as_units();
        let min_required = total_matches * u64::from(max.repetitions);
        if budget_units < min_required {
            return Err(CoreError::InsufficientBudget {
                provided: budget_units,
                required: min_required,
            });
        }

        let mut oracle = CrowdOracle::new(self.config.oracle);
        let mut survivors = items.ids();
        let mut spent = 0u64;
        let mut expected_latency = 0.0;
        let mut simulated_latency = 0.0;
        let mut strategy = String::from("EA");
        let mut remaining_budget = budget_units;
        let mut remaining_matches = total_matches;

        while survivors.len() > 1 {
            let (plan, bye) = max.plan_round(&survivors)?;
            let matches = plan.len() as u64;
            // Proportional share of what is left, but never below the
            // feasibility floor of one unit per repetition.
            let share = (remaining_budget * matches / remaining_matches.max(1))
                .max(matches * u64::from(max.repetitions));
            let (tallies, stats, used_strategy) =
                self.execute_plan(&plan, items, Budget::units(share), &mut oracle)?;
            survivors = max.round_winners(&plan, &tallies, bye)?;
            spent += stats.spent_units;
            expected_latency += stats.expected_latency;
            simulated_latency += stats.simulated_latency;
            strategy = used_strategy;
            remaining_budget = remaining_budget.saturating_sub(stats.spent_units);
            remaining_matches = remaining_matches.saturating_sub(matches);
        }

        Ok(QueryOutcome {
            result: survivors[0],
            strategy,
            stats: ExecutionStats {
                spent_units: spent,
                expected_latency,
                simulated_latency,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    fn executor(seed: u64) -> CrowdExecutor {
        let config = ExecutorConfig {
            oracle: OracleConfig {
                reliability: 2.5,
                seed,
            },
            market: MarketConfig::independent(seed),
            ..ExecutorConfig::default()
        };
        CrowdExecutor::new(Arc::new(LinearRate::unit_slope()), config)
    }

    fn items() -> ItemSet {
        ItemSet::from_scores(vec![("a", 1.0), ("b", 8.0), ("c", 4.0), ("d", 6.0)])
    }

    #[test]
    fn sort_query_end_to_end() {
        let executor = executor(3);
        let outcome = executor
            .run_sort(&items(), CrowdSort::new(5).unwrap(), Budget::units(200))
            .unwrap();
        assert_eq!(outcome.result.len(), 4);
        assert!(outcome.stats.spent_units <= 200);
        assert!(outcome.stats.simulated_latency > 0.0);
        assert!(outcome.stats.expected_latency > 0.0);
        // All comparison tasks share a type and repetition count, so the
        // tuner classifies this as Scenario I.
        assert_eq!(outcome.strategy, "EA");
        let agreement =
            CrowdSort::ranking_agreement(&outcome.result, &items().ground_truth_ranking());
        assert!(agreement >= 0.8, "agreement {agreement}");
    }

    #[test]
    fn filter_query_end_to_end() {
        let executor = executor(5);
        let outcome = executor
            .run_filter(
                &items(),
                CrowdFilter::new(5.0, 5).unwrap(),
                Budget::units(120),
            )
            .unwrap();
        let truth = items().ground_truth_filter(5.0);
        let (precision, recall) = CrowdFilter::precision_recall(&outcome.result, &truth);
        assert!(precision >= 0.5 && recall >= 0.5);
        assert!(outcome.stats.spent_units <= 120);
    }

    #[test]
    fn max_query_runs_all_rounds_and_respects_budget() {
        let executor = executor(9);
        let set = ItemSet::from_scores((0..8).map(|i| (format!("i{i}"), i as f64 * 2.0)));
        let outcome = executor
            .run_max(&set, CrowdMax::new(3).unwrap(), Budget::units(300))
            .unwrap();
        assert_eq!(Some(outcome.result), set.ground_truth_max());
        assert!(outcome.stats.spent_units <= 300);
        // Sequential rounds accumulate latency: at least two rounds' worth.
        assert!(outcome.stats.simulated_latency > 0.0);
    }

    #[test]
    fn max_with_single_item_is_trivial() {
        let executor = executor(1);
        let set = ItemSet::from_scores(vec![("only", 1.0)]);
        let outcome = executor
            .run_max(&set, CrowdMax::new(3).unwrap(), Budget::units(10))
            .unwrap();
        assert_eq!(outcome.result, ItemId(0));
        assert_eq!(outcome.stats.spent_units, 0);
    }

    #[test]
    fn insufficient_budget_is_rejected() {
        let executor = executor(1);
        // sort of 4 items: 6 pairs × 5 reps = 30 units minimum
        assert!(executor
            .run_sort(&items(), CrowdSort::new(5).unwrap(), Budget::units(29))
            .is_err());
        // max of 4 items: 3 matches × 3 reps = 9 units minimum
        assert!(executor
            .run_max(&items(), CrowdMax::new(3).unwrap(), Budget::units(8))
            .is_err());
        assert!(executor
            .run_max(&ItemSet::new(), CrowdMax::new(3).unwrap(), Budget::units(8))
            .is_err());
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let a = executor(7)
            .run_sort(&items(), CrowdSort::new(3).unwrap(), Budget::units(100))
            .unwrap();
        let b = executor(7)
            .run_sort(&items(), CrowdSort::new(3).unwrap(), Budget::units(100))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_query_uses_heterogeneous_strategy() {
        // Combining comparison and filter votes in one plan produces a
        // Scenario III instance and the tuner should pick HA.
        let executor = executor(13);
        let set = items();
        let sort_plan = CrowdSort::new(2).unwrap().plan(&set).unwrap();
        let filter_plan = CrowdFilter::new(5.0, 4).unwrap().plan(&set).unwrap();
        let mut combined = sort_plan;
        combined.tasks.extend(filter_plan.tasks);
        let mut oracle = CrowdOracle::new(OracleConfig::default());
        let (tallies, stats, strategy) = executor
            .execute_plan(&combined, &set, Budget::units(200), &mut oracle)
            .unwrap();
        assert_eq!(tallies.yes_votes.len(), combined.tasks.len());
        assert!(stats.spent_units <= 200);
        assert_eq!(strategy, "HA");
    }
}

//! # crowdtune-chaos
//!
//! Injectable fault harness for the serving stack — the proof half of the
//! fault-tolerance layer. Every fault here plugs into a hook the production
//! code exposes anyway (so the fault-free hot path pays nothing it was not
//! already paying):
//!
//! * [`ChaosWriteFault`] implements the store's
//!   [`WriteFault`] injection point and can make
//!   appends fail, fail N times, report a full disk, or crawl — driving the
//!   writer's retry/reopen/impairment machinery and the `Degraded` health
//!   state.
//! * [`ChaosRate`] wraps any [`RateModel`] and, when armed, panics inside the
//!   worker's solve (exercising per-job `catch_unwind` containment) or kills
//!   the worker thread outright via the [`WorkerDeath`] marker (exercising
//!   supervisor respawn and the typed `WorkerLost` observer error).
//!
//! Faults are **armed explicitly and disarm themselves** after firing (except
//! the persistent modes, which stay on until [`ChaosWriteFault::heal`]), so a
//! chaos schedule interleaves cleanly with a correctness-checked workload:
//! every non-faulted job must still produce bit-identical plans.
//!
//! `examples/chaos_recovery.rs` drives the full schedule end to end and is
//! wired into CI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crowdtune_core::rate::{RateModel, RateSpec};
pub use crowdtune_serve::{WorkerDeath, WriteFault};

/// What [`ChaosWriteFault`] does to the next store append(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// Pass-through: the store behaves as if no fault layer were installed.
    Clear,
    /// Fail the next `n` appends, then pass through again.
    FailNext(u32),
    /// Fail every append until [`ChaosWriteFault::heal`].
    FailAll,
    /// Report a full disk (`ErrorKind::StorageFull`) until healed.
    DiskFull,
    /// Sleep this long before every (successful) append until healed —
    /// models a device that answers, slowly.
    Slow(Duration),
}

/// Injectable store-write fault: installed via
/// [`StoreOptions::write_fault`](crowdtune_serve::StoreOptions), armed and
/// healed at runtime from the test harness. Disarmed it is a single relaxed
/// atomic-free mutex lock per append on the background writer thread —
/// nothing on the serve path.
#[derive(Debug)]
pub struct ChaosWriteFault {
    mode: Mutex<FaultMode>,
    injected: AtomicU64,
}

impl Default for ChaosWriteFault {
    fn default() -> Self {
        Self::new()
    }
}

impl ChaosWriteFault {
    /// A disarmed fault layer (pass-through until armed).
    pub fn new() -> Self {
        ChaosWriteFault {
            mode: Mutex::new(FaultMode::Clear),
            injected: AtomicU64::new(0),
        }
    }

    fn set(&self, mode: FaultMode) {
        *self.mode.lock().expect("chaos fault mode poisoned") = mode;
    }

    /// Disarm: appends pass through again (the store's next success flips
    /// the service back to `Healthy`).
    pub fn heal(&self) {
        self.set(FaultMode::Clear);
    }

    /// Fail the next `n` appends with a generic I/O error, then self-heal —
    /// a transient blip the retry/backoff path should absorb invisibly.
    pub fn fail_next(&self, n: u32) {
        self.set(FaultMode::FailNext(n));
    }

    /// Fail every append until [`ChaosWriteFault::heal`] — a persistent
    /// outage that must impair the write path and degrade health.
    pub fn fail_all(&self) {
        self.set(FaultMode::FailAll);
    }

    /// Report `StorageFull` on every append until healed.
    pub fn disk_full(&self) {
        self.set(FaultMode::DiskFull);
    }

    /// Delay every append by `pause` (appends still succeed) until healed.
    pub fn slow(&self, pause: Duration) {
        self.set(FaultMode::Slow(pause));
    }

    /// How many faults have actually been injected (errors returned; slow
    /// appends count too) — asserts that a chaos schedule really fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Acquire)
    }
}

impl WriteFault for ChaosWriteFault {
    fn before_write(&self, _stream: &str, _bytes: &[u8]) -> std::io::Result<()> {
        let mut mode = self.mode.lock().expect("chaos fault mode poisoned");
        match *mode {
            FaultMode::Clear => Ok(()),
            FaultMode::FailNext(n) => {
                *mode = if n > 1 {
                    FaultMode::FailNext(n - 1)
                } else {
                    FaultMode::Clear
                };
                drop(mode);
                self.injected.fetch_add(1, Ordering::AcqRel);
                Err(std::io::Error::other("chaos: injected write failure"))
            }
            FaultMode::FailAll => {
                drop(mode);
                self.injected.fetch_add(1, Ordering::AcqRel);
                Err(std::io::Error::other("chaos: injected write outage"))
            }
            FaultMode::DiskFull => {
                drop(mode);
                self.injected.fetch_add(1, Ordering::AcqRel);
                Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "chaos: injected disk-full",
                ))
            }
            FaultMode::Slow(pause) => {
                drop(mode);
                self.injected.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(pause);
                Ok(())
            }
        }
    }
}

const RATE_CLEAR: u8 = 0;
const RATE_PANIC: u8 = 1;
const RATE_DIE: u8 = 2;

/// A [`RateModel`] wrapper that can be armed to blow up inside the worker's
/// solve — exactly once per arming, so a single submission takes the hit and
/// the rest of the workload is untouched.
///
/// Delegation contract: [`to_spec`](RateModel::to_spec),
/// [`describe`](RateModel::describe) and
/// [`curve_fingerprint`](RateModel::curve_fingerprint) forward to the inner
/// model *without* consulting the armed state. That keeps the submit thread
/// safe (journaling samples `to_spec`, never the armed curve) and means an
/// armed `ChaosRate` shares plan/family keys with its inner model — give
/// armed jobs a distinct inner curve if key collisions with healthy jobs
/// would confuse an assertion, and remember a plan-cache hit skips the solve
/// entirely (an armed panic only fires on non-cache-hit paths).
pub struct ChaosRate {
    inner: Arc<dyn RateModel>,
    mode: AtomicU8,
}

impl std::fmt::Debug for ChaosRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosRate")
            .field("inner", &self.inner.describe())
            .field("mode", &self.mode.load(Ordering::Acquire))
            .finish()
    }
}

impl ChaosRate {
    /// Wraps `inner`, disarmed: behaves exactly like `inner` until armed.
    pub fn new(inner: Arc<dyn RateModel>) -> Self {
        ChaosRate {
            inner,
            mode: AtomicU8::new(RATE_CLEAR),
        }
    }

    /// Arm a one-shot `panic!` in the next solve that evaluates this curve
    /// (contained by the worker's `catch_unwind`; the job fails with
    /// `WorkerPanic`).
    pub fn arm_panic(&self) {
        self.mode.store(RATE_PANIC, Ordering::Release);
    }

    /// Arm a one-shot worker death: the next evaluating solve panics with
    /// the [`WorkerDeath`] marker, killing its worker thread (the job fails
    /// with `WorkerLost`; the supervisor respawns the thread).
    pub fn arm_worker_death(&self) {
        self.mode.store(RATE_DIE, Ordering::Release);
    }

    /// Whether an armed fault is still waiting for a solve to trip it.
    pub fn armed(&self) -> bool {
        self.mode.load(Ordering::Acquire) != RATE_CLEAR
    }
}

impl RateModel for ChaosRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        // One-shot: swap to Clear first, so the unwound stack can never
        // re-trip the fault (and a respawned worker serving the retry sees a
        // healthy curve).
        match self.mode.swap(RATE_CLEAR, Ordering::AcqRel) {
            RATE_PANIC => panic!("chaos: injected rate-model panic"),
            RATE_DIE => std::panic::panic_any(WorkerDeath),
            _ => self.inner.on_hold_rate(payment_units),
        }
    }

    fn to_spec(&self) -> Option<RateSpec> {
        self.inner.to_spec()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn curve_fingerprint(&self) -> u64 {
        self.inner.curve_fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    #[test]
    fn write_fault_modes_fire_and_disarm() {
        let fault = ChaosWriteFault::new();
        assert!(fault.before_write("plans", b"x").is_ok());
        assert_eq!(fault.injected(), 0);

        fault.fail_next(2);
        assert!(fault.before_write("plans", b"x").is_err());
        assert!(fault.before_write("plans", b"x").is_err());
        assert!(fault.before_write("plans", b"x").is_ok(), "self-heals");
        assert_eq!(fault.injected(), 2);

        fault.fail_all();
        assert!(fault.before_write("journal", b"x").is_err());
        assert!(fault.before_write("journal", b"x").is_err(), "persistent");
        fault.heal();
        assert!(fault.before_write("journal", b"x").is_ok());

        fault.disk_full();
        let err = fault.before_write("families", b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        fault.heal();

        fault.slow(Duration::from_millis(1));
        let before = std::time::Instant::now();
        assert!(fault.before_write("plans", b"x").is_ok());
        assert!(before.elapsed() >= Duration::from_millis(1));
        assert_eq!(fault.injected(), 6);
    }

    #[test]
    fn chaos_rate_delegates_and_fires_once() {
        let inner = Arc::new(LinearRate::unit_slope());
        let rate = ChaosRate::new(inner.clone());
        assert_eq!(
            rate.on_hold_rate(3.0).to_bits(),
            inner.on_hold_rate(3.0).to_bits()
        );
        assert_eq!(rate.curve_fingerprint(), inner.curve_fingerprint());
        assert_eq!(rate.describe(), inner.describe());
        assert!(rate.to_spec().is_some(), "journaling path stays safe");

        rate.arm_panic();
        assert!(rate.armed());
        let unwound =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rate.on_hold_rate(3.0)));
        assert!(unwound.is_err());
        assert!(!rate.armed(), "one-shot: the fault disarmed itself");
        assert_eq!(
            rate.on_hold_rate(3.0).to_bits(),
            inner.on_hold_rate(3.0).to_bits()
        );

        rate.arm_worker_death();
        let unwound =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rate.on_hold_rate(3.0)));
        let payload = unwound.unwrap_err();
        assert!(
            payload.downcast_ref::<WorkerDeath>().is_some(),
            "worker-death arming panics with the typed marker"
        );
    }
}

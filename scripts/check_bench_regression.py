#!/usr/bin/env python3
"""Bench regression guard driven by a per-metric tolerance table.

Compares a freshly measured bench JSON (quick mode, emitted by the CI bench
smoke steps) against the committed baseline and fails when any guarded
metric drops below its per-metric tolerance floor.

Raw nanoseconds are not comparable across runner generations, so every
guarded metric is an **in-run speedup ratio**: both sides of the ratio are
measured in the same process on the same machine, which normalises CPU speed
away. A real slowdown of the guarded hot path shows up as a drop in the
ratio.

Suites (see SUITES below):

* ``dp`` — the separable DP scan (BENCH_dp.json): per-budget rows, guarding
  ``speedup_vs_reference`` at 25% tolerance. Quick mode uses few samples, so
  small wobbles are expected; 25% is far outside the observed noise (<10%)
  while still catching an accidental O(n)-per-candidate regression (2x+).
* ``family`` — cross-job plan-family reuse (BENCH_family.json): guarding the
  cross-budget medians. The solve-only speedup (~30x: table read/extension
  vs cold RA solve) is tight and gets the standard 25% tolerance; the
  end-to-end speedup (~2.7x) includes the latency-estimate attach and is
  noisier in quick mode, so it gets a looser 60% floor that still catches
  "family layer stopped reusing" (which costs the full ~2.7x).
* ``gateway`` — the HTTP front-end (BENCH_gateway.json): guarding
  ``inprocess_vs_http_p50_ratio``, the in-run ratio of the in-process p50
  submit latency to the HTTP p50 latency of the same requests (~0.02-0.04:
  the wire costs ~25-50x an in-process cache hit). Both sides are measured
  in one process, so machine speed cancels; the ratio is scheduler-noisy
  (and systematically higher in quick mode, which runs fewer concurrent
  clients), so it gets a loose 3x floor — still far above the 5-10x ratio
  collapse of a real gateway regression (losing keep-alive, an O(n)
  registry scan, a per-request allocation storm). Two observability guards
  ride along: ``telemetry_off_vs_on_p50_ratio`` (~1.0, floor at 1.20x drop)
  is the in-run cost of per-job tracing + histogram recording on the warm
  cache-hit submit path — the design budget is <5% overhead, the guard
  tolerance is wider because the ~4µs medians of two separate service
  instances wobble more than that in quick mode, but an instrumentation
  regression (extra allocation, a lock on the hot path) costs far more than
  20% at that scale; ``tracing_off_vs_on_p50_ratio`` (~1.0, same 1.20x
  floor) is the analogous guard for causal span recording — the warm submit
  p50 with tracing disabled over tracing enabled, proving the
  mostly-unsampled span path stays off the hot path;
  ``fault_layer_off_vs_on_p50_ratio`` (~1.0, same 1.20x
  floor) is the analogous guard for the chaos fault-injection layer — the
  warm submit p50 of a durable service with the write-fault hook installed
  but disarmed vs one without it, proving fault-injection support stays off
  the fault-free hot path; and per-endpoint ``p99_vs_p50_ratio`` rows (tail
  health of each GET surface plus the submit path) guarded with a
  **ceiling** — the fresh tail/median ratio may grow at most 6x over the
  baseline, loose because single-client quick-mode p99 is one sample, but a
  real tail regression (a lock convoy in the metrics render, an O(n²)
  rendering path) blows the ratio up by orders of magnitude. Two reactor
  guards cover the event-driven front end: ``idle_herd_held_ratio`` (~1.0,
  floor) is the fraction of the parked idle keep-alive herd still registered
  after the open-loop pass — a drop means the reactor started culling or
  leaking live connections; ``open_loop_p50_vs_closed_p50_ratio`` (~1x,
  **ceiling** at 6x growth — loose because the quick-mode scheduled-send
  p50 is scheduler-noisy on shared runners) is the open-loop submit p50
  (scheduled-send clock, herd parked) over the closed-loop p50 — both
  in-run, so machine speed cancels; blow-up means parked connections
  started taxing the request path (an O(connections) scan per event,
  timer-heap collapse), which costs 10x+ at herd scale.
* ``market`` — cross-market routing (BENCH_market.json): guarding
  ``router_vs_best_single_improvement``, the deterministic factor by which
  the routed split beats the best single-market tune on the smoke's crossing
  curves (~1.32; 5% tolerance catches any change in the DP frontier or the
  knapsack assembly — the value is exact arithmetic, so any drift is a
  semantic change), and ``warm_quote_vs_cold_route_ratio`` (~100x: a warm
  quote is pure family-table prefix reads vs the cold route's table builds
  and plan serves). The ratio is in-run so machine speed cancels, but the
  warm side is a microsecond-scale minimum and scheduler-noisy, so it gets
  a loose 5x floor — still far above the collapse of a real regression
  (losing frontier reuse costs the full ~100x).

Usage: check_bench_regression.py <suite> <baseline.json> <fresh.json>
"""

import json
import sys

# suite -> {"rows": (list key, row key, [(metric, tolerance[, "ceiling"])...]) | None,
#           "scalars": [(top-level metric, tolerance[, "ceiling"])...]}
# Default direction is "floor": fail when fresh < baseline / tolerance.
# "ceiling" inverts it: fail when fresh > baseline * tolerance (for metrics
# where *growth* is the regression, e.g. tail-latency ratios).
SUITES = {
    "dp": {
        "rows": ("results", "budget", [("speedup_vs_reference", 1.25)]),
        "scalars": [],
    },
    "family": {
        "rows": None,
        "scalars": [
            ("median_family_hit_speedup_solve_only", 1.25),
            ("median_family_hit_speedup_end_to_end", 1.60),
        ],
    },
    "gateway": {
        "rows": ("endpoints", "endpoint", [("p99_vs_p50_ratio", 6.00, "ceiling")]),
        "scalars": [
            ("inprocess_vs_http_p50_ratio", 3.00),
            ("telemetry_off_vs_on_p50_ratio", 1.20),
            ("tracing_off_vs_on_p50_ratio", 1.20),
            ("fault_layer_off_vs_on_p50_ratio", 1.20),
            ("idle_herd_held_ratio", 1.10),
            ("open_loop_p50_vs_closed_p50_ratio", 6.00, "ceiling"),
        ],
    },
    "market": {
        "rows": None,
        "scalars": [
            ("router_vs_best_single_improvement", 1.05),
            ("warm_quote_vs_cold_route_ratio", 5.00),
        ],
    },
}


def load(path):
    with open(path) as handle:
        return json.load(handle)


def check(label, baseline_value, fresh_value, tolerance, failures, direction="floor"):
    if direction == "ceiling":
        bound = baseline_value * tolerance
        ok = fresh_value <= bound
        bound_kind = "ceiling"
    else:
        bound = baseline_value / tolerance
        ok = fresh_value >= bound
        bound_kind = "floor"
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"{label}: baseline {baseline_value:.2f}x, fresh {fresh_value:.2f}x "
        f"({bound_kind} {bound:.2f}x, tolerance {tolerance:.2f}x) -> {verdict}"
    )
    if not ok:
        failures.append(label)


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in SUITES:
        suites = ", ".join(sorted(SUITES))
        sys.exit(f"usage: {sys.argv[0]} <{suites}> <baseline.json> <fresh.json>")
    suite = SUITES[sys.argv[1]]
    baseline = load(sys.argv[2])
    fresh = load(sys.argv[3])

    failures = []
    checked = 0
    if suite["rows"] is not None:
        list_key, row_key, metrics = suite["rows"]
        base_rows = {row[row_key]: row for row in baseline[list_key]}
        fresh_rows = {row[row_key]: row for row in fresh[list_key]}
        shared = sorted(set(base_rows) & set(fresh_rows))
        if not shared:
            sys.exit("no common rows between baseline and fresh results")
        for key in shared:
            for metric, tolerance, *direction in metrics:
                if base_rows[key].get(metric) is None or fresh_rows[key].get(metric) is None:
                    continue
                check(
                    f"{row_key} {key} {metric}",
                    base_rows[key][metric],
                    fresh_rows[key][metric],
                    tolerance,
                    failures,
                    *direction,
                )
                checked += 1
    for metric, tolerance, *direction in suite["scalars"]:
        check(metric, baseline[metric], fresh[metric], tolerance, failures, *direction)
        checked += 1

    if checked == 0:
        sys.exit("nothing to check: metric table matched no data")
    if failures:
        sys.exit(f"bench suite '{sys.argv[1]}' regressed beyond tolerance: {failures}")
    print(f"bench suite '{sys.argv[1]}' regression guard passed ({checked} metrics)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Prometheus text-exposition (v0.0.4) format checker.

Validates a scraped exposition file structurally — the contract a real
Prometheus scraper relies on — without any third-party client library:

* every sample line parses as ``name{labels} value``;
* family names are unique: one ``# TYPE`` per family, no family split
  across the file, ``# TYPE``/``# HELP`` precede the family's samples;
* ``# TYPE`` values are one of counter/gauge/histogram;
* counter samples are non-negative and finite;
* histogram children are well-formed: cumulative ``_bucket`` counts are
  non-decreasing as ``le`` increases, the ``le="+Inf"`` bucket is present
  and exactly equals ``_count``, and ``_sum``/``_count`` exist for every
  child label set;
* no duplicate sample lines (same name + label set twice).

Extra names passed via ``--require NAME`` must appear as families (CI uses
this to assert the crowdtune job/gateway metrics actually rode the scrape).

Usage: check_prom_exposition.py <exposition.txt> [--require NAME]...
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(name, types):
    """Maps a sample name to its family: histogram samples append
    _bucket/_sum/_count to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    return name


def parse_labels(text):
    if not text:
        return ()
    labels = []
    rest = text
    while rest:
        match = LABEL_RE.match(rest)
        if not match:
            return None
        labels.append((match.group(1), match.group(2)))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return tuple(labels)


def main():
    args = sys.argv[1:]
    if not args:
        sys.exit(f"usage: {sys.argv[0]} <exposition.txt> [--require NAME]...")
    path = args[0]
    required = [args[i + 1] for i, a in enumerate(args) if a == "--require"]
    with open(path) as handle:
        lines = handle.read().splitlines()

    errors = []
    types = {}   # family -> type
    helps = set()
    closed = set()   # families whose block has ended (another family seen after)
    samples = {}  # (name, labels) -> value
    order = []    # (name, labels) in file order
    last_family = None

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for family {name}")
            if name in closed:
                errors.append(f"line {lineno}: family {name} split across the file")
            if kind not in VALID_TYPES:
                errors.append(f"line {lineno}: invalid type {kind!r} for {name}")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed HELP line: {line!r}")
                continue
            name = parts[2]
            if name in helps:
                errors.append(f"line {lineno}: duplicate HELP for family {name}")
            helps.add(name)
            continue
        if line.startswith("#"):
            continue  # comment
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "")
        if labels is None:
            errors.append(f"line {lineno}: unparseable label set: {line!r}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value: {line!r}")
            continue
        family = base_family(name, types)
        if family not in types:
            errors.append(f"line {lineno}: sample {name} has no preceding TYPE line")
        if last_family is not None and family != last_family:
            closed.add(last_family)
            if family in closed:
                errors.append(f"line {lineno}: family {family} split across the file")
        last_family = family
        key = (name, labels)
        if key in samples:
            errors.append(f"line {lineno}: duplicate sample {name}{dict(labels)}")
        samples[key] = value
        order.append(key)
        if types.get(family) == "counter" and (value < 0 or not math.isfinite(value)):
            errors.append(f"line {lineno}: counter {name} has invalid value {value}")

    # Histogram contract per child label set.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        # Group buckets by their non-`le` labels.
        children = {}
        for (name, labels), value in samples.items():
            if name != f"{family}_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"{family}: bucket sample without an le label")
                continue
            rest = tuple(kv for kv in labels if kv[0] != "le")
            children.setdefault(rest, []).append((le, value))
        for rest, buckets in children.items():
            label_text = dict(rest) if rest else "{}"
            bounds = []
            inf = None
            for le, value in buckets:
                if le == "+Inf":
                    inf = value
                else:
                    try:
                        bounds.append((float(le), value))
                    except ValueError:
                        errors.append(f"{family}{label_text}: bad le {le!r}")
            if inf is None:
                errors.append(f"{family}{label_text}: no le=\"+Inf\" bucket")
                continue
            bounds.sort(key=lambda item: item[0])
            last = 0.0
            for bound, cum in bounds:
                if cum < last:
                    errors.append(
                        f"{family}{label_text}: bucket le={bound} count {cum} "
                        f"decreased (previous {last})"
                    )
                last = cum
            if bounds and inf < bounds[-1][1]:
                errors.append(
                    f"{family}{label_text}: +Inf bucket {inf} below "
                    f"le={bounds[-1][0]} count {bounds[-1][1]}"
                )
            count = samples.get((f"{family}_count", rest))
            if count is None:
                errors.append(f"{family}{label_text}: missing _count")
            elif count != inf:
                errors.append(
                    f"{family}{label_text}: le=\"+Inf\" bucket {inf} != _count {count}"
                )
            if (f"{family}_sum", rest) not in samples:
                errors.append(f"{family}{label_text}: missing _sum")

    for name in required:
        if name not in types:
            errors.append(f"required family {name} is absent from the exposition")

    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        sys.exit(f"{len(errors)} exposition-format violation(s) in {path}")
    histograms = sum(1 for kind in types.values() if kind == "histogram")
    print(
        f"exposition OK: {len(types)} families ({histograms} histograms), "
        f"{len(samples)} samples, {len(required)} required families present"
    )


if __name__ == "__main__":
    main()

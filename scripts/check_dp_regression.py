#!/usr/bin/env python3
"""DP-scan bench regression guard.

Compares a freshly measured BENCH_dp.json (quick mode, emitted by the CI
bench-smoke step) against the committed baseline and fails on a >25%
regression.

Raw nanoseconds are not comparable across runner generations, so the guard
compares the *speedup of the separable path over the in-run reference DP*
(`speedup_vs_reference`): both sides of that ratio are measured in the same
process on the same machine, which normalises CPU speed away. A real
slowdown of the separable scan (the hot path this repo keeps optimising)
shows up as a drop in that ratio.

Tolerance: the fresh ratio may be at most 25% below the baseline ratio
(`fresh >= baseline / 1.25`) per budget present in both files. Quick mode
uses few samples, so small wobbles are expected; 25% is far outside the
observed noise (<10%) while still catching an accidental O(n)-per-candidate
regression (which costs 2x+).

Usage: check_dp_regression.py <baseline.json> <fresh.json>
"""

import json
import sys

TOLERANCE = 1.25


def load(path):
    with open(path) as handle:
        data = json.load(handle)
    return {row["budget"]: row for row in data["results"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <baseline.json> <fresh.json>")
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit("no common budgets between baseline and fresh results")

    failures = []
    for budget in shared:
        base_ratio = baseline[budget]["speedup_vs_reference"]
        fresh_ratio = fresh[budget]["speedup_vs_reference"]
        floor = base_ratio / TOLERANCE
        verdict = "ok" if fresh_ratio >= floor else "REGRESSION"
        print(
            f"budget {budget}: baseline separable-vs-reference {base_ratio:.2f}x, "
            f"fresh {fresh_ratio:.2f}x (floor {floor:.2f}x) -> {verdict}"
        )
        if fresh_ratio < floor:
            failures.append(budget)

    if failures:
        sys.exit(
            f"separable DP scan regressed beyond {TOLERANCE:.2f}x tolerance "
            f"at budgets {failures}"
        )
    print(f"dp_scan regression guard passed for budgets {shared}")


if __name__ == "__main__":
    main()
